"""Tests for the switched-capacitance power model."""

import pytest

from repro.circuits.examples import c17
from repro.core import SwitchingActivityEstimator
from repro.power import (
    PowerReport,
    Technology,
    fanout_capacitances,
    power_from_activities,
)


class TestTechnology:
    def test_defaults(self):
        tech = Technology()
        assert tech.vdd > 0 and tech.clock_hz > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Technology(vdd=0)
        with pytest.raises(ValueError):
            Technology(gate_input_cap=-1e-15)


class TestCapacitances:
    def test_fanout_scaling(self):
        circuit = c17()
        caps = fanout_capacitances(circuit)
        # Line 11 feeds two gates; line 10 feeds one.
        assert caps["11"] > caps["10"]

    def test_output_pin_added(self):
        circuit = c17()
        tech = Technology()
        caps = fanout_capacitances(circuit, tech)
        # 22 is a primary output with no internal fanout.
        assert caps["22"] == pytest.approx(tech.wire_cap + tech.output_pin_cap)

    def test_all_lines_covered(self):
        circuit = c17()
        assert set(fanout_capacitances(circuit)) == set(circuit.lines)


class TestPower:
    def test_linear_in_activity(self):
        circuit = c17()
        half = power_from_activities(circuit, {ln: 0.5 for ln in circuit.lines})
        quarter = power_from_activities(circuit, {ln: 0.25 for ln in circuit.lines})
        assert half.total_watts == pytest.approx(2 * quarter.total_watts)

    def test_quadratic_in_vdd(self):
        circuit = c17()
        acts = {ln: 0.5 for ln in circuit.lines}
        p1 = power_from_activities(circuit, acts, Technology(vdd=1.0))
        p2 = power_from_activities(circuit, acts, Technology(vdd=2.0))
        assert p2.total_watts == pytest.approx(4 * p1.total_watts)

    def test_missing_line_rejected(self):
        circuit = c17()
        with pytest.raises(KeyError):
            power_from_activities(circuit, {"22": 0.5})

    def test_bad_activity_rejected(self):
        circuit = c17()
        acts = {ln: 0.5 for ln in circuit.lines}
        acts["22"] = 1.5
        with pytest.raises(ValueError):
            power_from_activities(circuit, acts)

    def test_end_to_end_with_estimator(self):
        circuit = c17()
        estimate = SwitchingActivityEstimator(circuit).estimate()
        report = power_from_activities(circuit, estimate.activities)
        assert isinstance(report, PowerReport)
        assert report.total_watts > 0
        top = report.top_consumers(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_custom_capacitances(self):
        circuit = c17()
        acts = {ln: 0.5 for ln in circuit.lines}
        caps = {ln: 1e-15 for ln in circuit.lines}
        report = power_from_activities(circuit, acts, capacitances=caps)
        tech = Technology()
        expected = 0.5 * tech.vdd**2 * tech.clock_hz * 1e-15 * 0.5 * len(circuit.lines)
        assert report.total_watts == pytest.approx(expected)
