"""Profile store: round-trip, ref resolution, corruption hardening."""

import json

import pytest

from repro.errors import PerfProfileError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.perf.store import (
    STORE_DIR_ENV,
    PerfStore,
    default_store_dir,
    load_profiles_file,
    validate_profile,
    write_history,
)

from .conftest import make_profile


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        store = PerfStore(tmp_path / "store")
        store.append(make_profile(sha="a" * 40))
        store.append(make_profile(sha="b" * 40))
        profiles = store.profiles()
        assert [p["git"]["sha"][0] for p in profiles] == ["a", "b"]

    def test_empty_store_reads_empty(self, tmp_path):
        assert PerfStore(tmp_path / "nowhere").profiles() == []

    def test_env_var_overrides_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "via-env"))
        assert default_store_dir() == tmp_path / "via-env"
        store = PerfStore()
        store.append(make_profile())
        assert (tmp_path / "via-env" / "profiles.jsonl").is_file()

    def test_fingerprint_filter(self, tmp_path):
        store = PerfStore(tmp_path)
        local = make_profile(sha="a" * 40)
        foreign = make_profile(sha="b" * 40)
        foreign["fingerprint"]["digest"] = "0123456789abcdef"
        store.append(local)
        store.append(foreign)
        mine = store.profiles(fingerprint_digest="feedfacefeedface")
        assert [p["git"]["sha"][0] for p in mine] == ["a"]

    def test_append_rejects_invalid(self, tmp_path):
        store = PerfStore(tmp_path)
        with pytest.raises(PerfProfileError):
            store.append({"schema": "nope"})
        assert not store.path.exists()


class TestResolve:
    def test_latest_and_sha_prefix(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_profile(sha="a" * 40, note="old"))
        store.append(make_profile(sha="b" * 40, note="new"))
        assert store.resolve("latest")["note"] == "new"
        assert store.resolve("a" * 7)["note"] == "old"

    def test_newest_match_wins(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_profile(sha="a" * 40, note="first"))
        store.append(make_profile(sha="a" * 40, note="second"))
        assert store.resolve("a" * 7)["note"] == "second"

    def test_file_ref_takes_last_profile(self, tmp_path):
        history = tmp_path / "PERF_HISTORY.json"
        write_history(
            history,
            [make_profile(sha="a" * 40), make_profile(sha="b" * 40, note="hit")],
        )
        assert PerfStore(tmp_path).resolve(str(history))["note"] == "hit"

    def test_unresolvable_ref_raises(self, tmp_path):
        store = PerfStore(tmp_path)
        with pytest.raises(PerfProfileError, match="no profiles"):
            store.resolve("latest")
        store.append(make_profile(sha="a" * 40))
        with pytest.raises(PerfProfileError, match="matches ref"):
            store.resolve("ffff")


class TestCorruptionHardening:
    def _store_with_damage(self, tmp_path, damage):
        store = PerfStore(tmp_path)
        store.append(make_profile(sha="a" * 40))
        store.append(make_profile(sha="b" * 40))
        damage(store.path)
        return store

    def test_byte_chopped_tail_is_skipped(self, tmp_path):
        def chop(path):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 40])  # mid-JSON truncation

        store = self._store_with_damage(tmp_path, chop)
        with pytest.warns(UserWarning, match="corrupt profile entry"):
            profiles = store.profiles()
        assert [p["git"]["sha"][0] for p in profiles] == ["a"]

    def test_garbage_line_is_skipped(self, tmp_path):
        def garble(path):
            lines = path.read_text().splitlines()
            lines.insert(1, "\x00\xff not json at all")
            path.write_text("\n".join(lines) + "\n")

        store = self._store_with_damage(tmp_path, garble)
        with pytest.warns(UserWarning):
            profiles = store.profiles()
        assert len(profiles) == 2  # both real profiles survive

    def test_corrupt_counter_increments_when_enabled(self, tmp_path):
        def chop(path):
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 40])

        store = self._store_with_damage(tmp_path, chop)
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            with pytest.warns(UserWarning):
                store.profiles()
        finally:
            set_metrics(previous)
        assert registry.snapshot()["counters"]["perf.store.corrupt"] == 1

    def test_schema_drift_counts_as_corrupt(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_profile(sha="a" * 40))
        stale = make_profile(sha="b" * 40)
        stale["schema"] = "repro.perf/v0"
        with open(store.path, "a") as fh:
            fh.write(json.dumps(stale) + "\n")
        with pytest.warns(UserWarning, match="schema"):
            profiles = store.profiles()
        assert len(profiles) == 1


class TestHistoryDocument:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "PERF_HISTORY.json"
        write_history(path, [make_profile(sha="a" * 40)])
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.perf/v1"
        loaded = load_profiles_file(path)
        assert len(loaded) == 1 and loaded[0]["git"]["sha"] == "a" * 40

    def test_load_single_profile_document(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(make_profile()))
        assert len(load_profiles_file(path)) == 1

    def test_load_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "w") as fh:
            for sha in ("a" * 40, "b" * 40):
                fh.write(json.dumps(make_profile(sha=sha)) + "\n")
        assert len(load_profiles_file(path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PerfProfileError, match="cannot read"):
            load_profiles_file(tmp_path / "nope.json")


class TestValidateProfile:
    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("schema"), "schema"),
            (lambda p: p.update(schema_version=99), "schema_version"),
            (lambda p: p["git"].pop("sha"), "git.sha"),
            (lambda p: p["git"].update(dirty="yes"), "git.dirty"),
            (lambda p: p["fingerprint"].pop("digest"), "fingerprint"),
            (lambda p: p.update(measurements={}), "measurements"),
            (
                lambda p: p["measurements"]["c17"].update(bad=[1, "x"]),
                "neither",
            ),
            (lambda p: p.update(obs="not a dict"), "obs"),
        ],
    )
    def test_rejections(self, mutate, match):
        profile = make_profile()
        mutate(profile)
        with pytest.raises(PerfProfileError, match=match):
            validate_profile(profile)

    def test_valid_profile_returned_unchanged(self, profile):
        assert validate_profile(profile) is profile
