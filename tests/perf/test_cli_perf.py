"""End-to-end ``repro perf record/log/diff`` against a fresh store."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.fingerprint import machine_fingerprint

from .conftest import make_profile

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "store")


def test_record_twice_then_diff_exits_zero(capsys, store):
    assert main(["perf", "record", "--quick", "--store", store]) == 0
    assert main(["perf", "record", "--quick", "--store", store]) == 0
    out = capsys.readouterr().out
    assert out.count("recorded profile") == 2

    assert main(["perf", "diff", "latest", "latest", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "-> ok" in out


def test_log_renders_trajectory_from_fresh_process(capsys, store):
    assert main(
        ["perf", "record", "--quick", "--store", store, "--note", "one"]
    ) == 0
    assert main(
        ["perf", "record", "--quick", "--store", store, "--note", "two"]
    ) == 0
    capsys.readouterr()

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "perf", "log", "--store", store],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "(one)" in proc.stdout and "(two)" in proc.stdout
    assert "c17" in proc.stdout
    assert "repeat_estimate_min_seconds" in proc.stdout
    assert "batched_scenarios_per_sec[K=64]" in proc.stdout
    # Two recorded versions -> two value columns after circuit/metric.
    header = next(
        line for line in proc.stdout.splitlines()
        if line.startswith("circuit")
    )
    assert len(header.split()) == 4


def test_log_metric_and_circuit_filters(capsys, store):
    assert main(["perf", "record", "--quick", "--store", store]) == 0
    capsys.readouterr()
    assert main(
        [
            "perf", "log", "--store", store,
            "--metric", "mean_activity", "--circuit", "c17",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "mean_activity" in out
    assert "repeat_estimate_min_seconds" not in out


def test_log_filters_foreign_machines(capsys, tmp_path):
    from repro.perf.store import PerfStore

    store = tmp_path / "store"
    mine = make_profile(sha="a" * 40, note="mine")
    mine["fingerprint"] = machine_fingerprint()
    foreign = make_profile(sha="b" * 40, note="foreign")
    PerfStore(store).append(mine)
    PerfStore(store).append(foreign)

    assert main(["perf", "log", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "(mine)" in out and "(foreign)" not in out

    assert main(["perf", "log", "--store", str(store), "--all-machines"]) == 0
    out = capsys.readouterr().out
    assert "(mine)" in out and "(foreign)" in out


class TestDiffExitCodes:
    """The 0/1/2 contract on synthetic profile files."""

    def _write(self, tmp_path, name, profile):
        path = tmp_path / name
        path.write_text(json.dumps(profile))
        return str(path)

    def test_identical_exits_zero(self, capsys, tmp_path, store):
        a = self._write(tmp_path, "a.json", make_profile(sha="a" * 40))
        b = self._write(tmp_path, "b.json", make_profile(sha="b" * 40))
        assert main(["perf", "diff", a, b, "--store", store]) == 0

    def test_slowdown_exits_one(self, capsys, tmp_path, store):
        a = self._write(tmp_path, "a.json", make_profile(sha="a" * 40))
        slow = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.020,
            repeat_estimate_seconds_samples=[0.020, 0.021, 0.022],
        )
        b = self._write(tmp_path, "b.json", slow)
        assert main(["perf", "diff", a, b, "--store", store]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_accuracy_drift_exits_two(self, capsys, tmp_path, store):
        a = self._write(tmp_path, "a.json", make_profile(sha="a" * 40))
        drift = make_profile(sha="b" * 40, max_abs_error=1e-3)
        b = self._write(tmp_path, "b.json", drift)
        assert main(["perf", "diff", a, b, "--store", store]) == 2
        assert "ACCURACY DRIFT" in capsys.readouterr().out

    def test_cross_machine_exits_two_unless_forced(
        self, capsys, tmp_path, store
    ):
        a = self._write(tmp_path, "a.json", make_profile(sha="a" * 40))
        other = make_profile(sha="b" * 40)
        other["fingerprint"]["digest"] = "0123456789abcdef"
        b = self._write(tmp_path, "b.json", other)
        assert main(["perf", "diff", a, b, "--store", store]) == 2
        assert "fingerprints differ" in capsys.readouterr().err
        assert main(["perf", "diff", a, b, "--store", store, "--force"]) == 0

    def test_unresolvable_ref_exits_two(self, capsys, store):
        assert main(["perf", "diff", "latest", "latest", "--store", store]) == 2
        assert "repro perf diff:" in capsys.readouterr().err


class TestIngestion:
    def _propagation_report(self):
        return {
            "benchmark": "propagation",
            "schema_version": 4,
            "results": [
                {
                    "circuit": "c17",
                    "gates": 6,
                    "method": "single-bn",
                    "kernel": "auto",
                    "repeat_estimate_min_seconds": 0.0006,
                    "mean_activity": 0.470170,
                    "max_abs_diff_vs_dense": 0.0,
                }
            ],
        }

    def test_record_from_propagation_report(self, capsys, tmp_path, store):
        report = tmp_path / "BENCH_propagation.json"
        report.write_text(json.dumps(self._propagation_report()))
        assert main(
            [
                "perf", "record", "--store", store,
                "--from-propagation", str(report), "--note", "ingested",
            ]
        ) == 0
        assert "recorded profile" in capsys.readouterr().out

        from repro.perf.store import PerfStore

        (profile,) = PerfStore(store).profiles()
        assert profile["note"] == "ingested"
        block = profile["measurements"]["c17"]
        assert block["repeat_estimate_min_seconds"] == 0.0006

    def test_baseline_document_written_and_appended(
        self, capsys, tmp_path, store
    ):
        report = tmp_path / "BENCH_propagation.json"
        report.write_text(json.dumps(self._propagation_report()))
        baseline = tmp_path / "PERF_HISTORY.json"
        for _ in range(2):
            assert main(
                [
                    "perf", "record", "--store", store,
                    "--from-propagation", str(report),
                    "--baseline", str(baseline),
                ]
            ) == 0
        document = json.loads(baseline.read_text())
        assert document["schema"] == "repro.perf/v1"
        assert len(document["profiles"]) == 2

    def test_unreadable_report_exits_one(self, capsys, store):
        assert main(
            [
                "perf", "record", "--store", store,
                "--from-propagation", "/nonexistent/report.json",
            ]
        ) == 1
        assert "repro: error:" in capsys.readouterr().err
