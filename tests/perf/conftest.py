"""Shared fixtures: synthetic ``repro.perf/v1`` profiles.

Diff/store/render tests run on hand-built profiles (fast,
deterministic); only the CLI end-to-end tests record real ones.
"""

import copy

import pytest

from repro.perf.store import PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION

BASE_FINGERPRINT = {
    "cpu_model": "Synthetic CPU",
    "cpu_count": 4,
    "blas": "openblas",
    "numpy": "2.0.0",
    "python": "3.12.0",
    "machine": "x86_64",
    "hostname_hash": "abc123def456",
    "digest": "feedfacefeedface",
}


def make_profile(sha="a" * 40, note="", **measurement_overrides):
    """One synthetic profile with a single well-formed c17 block."""
    block = {
        "gates": 6,
        "repeat_estimate_min_seconds": 0.010,
        "repeat_estimate_seconds_samples": [0.010, 0.011, 0.012],
        "batched_scenarios_per_sec": {"64": 20000.0},
        "max_abs_error": 1e-15,
        "mean_activity": 0.470170,
    }
    block.update(measurement_overrides)
    return {
        "schema": PROFILE_SCHEMA,
        "schema_version": PROFILE_SCHEMA_VERSION,
        "recorded_at": "2026-08-08T00:00:00Z",
        "note": note,
        "git": {"sha": sha, "short": sha[:10], "dirty": False},
        "fingerprint": copy.deepcopy(BASE_FINGERPRINT),
        "measurements": {"c17": block},
    }


@pytest.fixture
def profile():
    return make_profile()


@pytest.fixture
def profile_pair():
    """Two identical-measurement profiles at different SHAs."""
    return make_profile(sha="a" * 40), make_profile(sha="b" * 40)
