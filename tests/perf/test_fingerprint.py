"""Machine fingerprint: stability, digest scope, cross-machine guard."""

import os

import pytest

from repro.errors import PerfDiffError
from repro.perf.diff import compare_profiles
from repro.perf.fingerprint import (
    fingerprint_digest,
    fingerprints_compatible,
    machine_fingerprint,
)

from .conftest import make_profile


class TestFingerprint:
    def test_stable_within_a_process(self):
        a = machine_fingerprint()
        b = machine_fingerprint()
        assert a["digest"] == b["digest"]
        assert fingerprints_compatible(a, b)

    def test_required_fields_present(self):
        fp = machine_fingerprint()
        for field in (
            "cpu_model", "cpu_count", "blas", "numpy", "python",
            "machine", "hostname_hash", "digest",
        ):
            assert field in fp, field
        assert fp["cpu_count"] >= 1
        assert len(fp["digest"]) == 16

    def test_cpu_count_changes_digest(self, monkeypatch):
        before = machine_fingerprint()
        monkeypatch.setattr(os, "cpu_count", lambda: before["cpu_count"] + 63)
        after = machine_fingerprint()
        assert after["cpu_count"] == before["cpu_count"] + 63
        assert after["digest"] != before["digest"]
        assert not fingerprints_compatible(before, after)

    def test_hostname_excluded_from_digest(self):
        fp = machine_fingerprint()
        other = dict(fp, hostname_hash="0" * 12)
        assert fingerprint_digest(other) == fp["digest"]

    def test_missing_digest_never_compatible(self):
        assert not fingerprints_compatible({}, {})
        assert not fingerprints_compatible({"digest": ""}, {"digest": ""})


class TestCrossMachineGuard:
    def test_diff_refuses_different_machines(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(sha="b" * 40)
        new["fingerprint"]["cpu_count"] = 64
        new["fingerprint"]["digest"] = "0123456789abcdef"
        with pytest.raises(PerfDiffError, match="fingerprints differ"):
            compare_profiles(old, new)

    def test_force_overrides_the_guard(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(sha="b" * 40)
        new["fingerprint"]["digest"] = "0123456789abcdef"
        records = compare_profiles(old, new, force=True)
        assert records
        assert all(r["status"] in ("ok", "skipped") for r in records)
