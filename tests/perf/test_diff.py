"""The statistical gate: noise band, floor, dispersion, exit codes."""

import pytest

from repro.errors import PerfDiffError
from repro.perf.diff import compare_bench_documents, compare_profiles, exit_code

from .conftest import make_profile


def _statuses(records):
    return {(r["key"], r["metric"]): r["status"] for r in records}


class TestIdenticalProfiles:
    def test_identical_is_clean(self, profile_pair):
        old, new = profile_pair
        records = compare_profiles(old, new)
        assert exit_code(records) == 0
        assert all(r["status"] in ("ok", "skipped") for r in records)

    def test_same_profile_object(self, profile):
        assert exit_code(compare_profiles(profile, profile)) == 0


class TestTimeGate:
    def test_two_x_slowdown_exits_one(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.020,
            repeat_estimate_seconds_samples=[0.020, 0.021, 0.022],
        )
        records = compare_profiles(old, new)
        assert _statuses(records)[("c17", "repeat_estimate_min_seconds")] == (
            "regression"
        )
        assert exit_code(records) == 1

    def test_within_band_is_ok(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.0115,  # +15% < 25% band
            repeat_estimate_seconds_samples=[0.0115, 0.0116, 0.0117],
        )
        assert exit_code(compare_profiles(old, new)) == 0

    def test_dispersion_widens_the_band(self):
        # A noisy recording (median 60% above min) must tolerate a
        # delta the configured band alone would flag.
        old = make_profile(
            sha="a" * 40,
            repeat_estimate_min_seconds=0.010,
            repeat_estimate_seconds_samples=[0.010, 0.016, 0.018],
        )
        new = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.014,  # +40%: band 0.25 + disp 0.6
            repeat_estimate_seconds_samples=[0.014, 0.015, 0.015],
        )
        records = compare_profiles(old, new)
        status = _statuses(records)[("c17", "repeat_estimate_min_seconds")]
        assert status == "ok"
        (time_record,) = [
            r for r in records if r["metric"] == "repeat_estimate_min_seconds"
        ]
        assert time_record["band"] == pytest.approx(0.85)

    def test_sub_floor_rows_are_skipped(self):
        old = make_profile(
            sha="a" * 40,
            repeat_estimate_min_seconds=0.0002,
            repeat_estimate_seconds_samples=[0.0002, 0.0002],
        )
        new = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.0009,  # 4.5x, but timer noise
            repeat_estimate_seconds_samples=[0.0009, 0.0009],
        )
        records = compare_profiles(old, new, floor_seconds=0.001)
        assert _statuses(records)[("c17", "repeat_estimate_min_seconds")] == (
            "skipped"
        )
        assert exit_code(records) == 0


class TestRateGate:
    def test_rate_drop_exits_one(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(
            sha="b" * 40, batched_scenarios_per_sec={"64": 10000.0}
        )
        records = compare_profiles(old, new)
        assert _statuses(records)[("c17[K=64]", "batched_scenarios_per_sec")] == (
            "regression"
        )
        assert exit_code(records) == 1

    def test_rate_gain_is_ok(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(
            sha="b" * 40, batched_scenarios_per_sec={"64": 40000.0}
        )
        assert exit_code(compare_profiles(old, new)) == 0


class TestAccuracyGate:
    def test_error_drift_exits_two(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(sha="b" * 40, max_abs_error=1e-3)
        records = compare_profiles(old, new)
        assert _statuses(records)[("c17", "max_abs_error")] == "accuracy"
        assert exit_code(records) == 2

    def test_error_within_atol_is_ok(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(sha="b" * 40, max_abs_error=5e-7)
        assert exit_code(compare_profiles(old, new)) == 0

    def test_mean_activity_drift_exits_two(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(sha="b" * 40, mean_activity=0.471170)
        assert exit_code(compare_profiles(old, new)) == 2

    def test_accuracy_outranks_perf(self):
        old = make_profile(sha="a" * 40)
        new = make_profile(
            sha="b" * 40,
            repeat_estimate_min_seconds=0.050,
            repeat_estimate_seconds_samples=[0.050, 0.051],
            max_abs_error=1e-3,
        )
        assert exit_code(compare_profiles(old, new)) == 2

    def test_error_shrinking_is_never_flagged(self):
        old = make_profile(sha="a" * 40, max_abs_error=1e-3)
        new = make_profile(sha="b" * 40, max_abs_error=1e-15)
        assert exit_code(compare_profiles(old, new)) == 0


class TestCoverage:
    def test_missing_circuit_is_nonfailing(self):
        old = make_profile(sha="a" * 40)
        old["measurements"]["alu"] = {"repeat_estimate_min_seconds": 0.004}
        new = make_profile(sha="b" * 40)  # c17 only (a quick recording)
        records = compare_profiles(old, new)
        assert _statuses(records)[("alu", "*")] == "missing"
        assert exit_code(records) == 0

    def test_no_common_measurements_raises(self):
        old = make_profile(sha="a" * 40)
        old["measurements"] = {"alu": {"gates": 74}}
        new = make_profile(sha="b" * 40)
        with pytest.raises(PerfDiffError, match="no comparable"):
            compare_profiles(old, new)


class TestBenchDocumentCompare:
    def test_mismatched_kinds_raise(self):
        with pytest.raises(PerfDiffError, match="kinds differ"):
            compare_bench_documents(
                {"benchmark": "propagation", "results": []},
                {"benchmark": "throughput", "results": []},
            )

    def test_missing_rows_raise(self):
        old = {
            "benchmark": "propagation",
            "results": [
                {"circuit": "c17", "repeat_estimate_min_seconds": 0.5},
                {"circuit": "alu", "repeat_estimate_min_seconds": 0.5},
            ],
        }
        new = {
            "benchmark": "propagation",
            "results": [{"circuit": "c17", "repeat_estimate_min_seconds": 0.5}],
        }
        with pytest.raises(PerfDiffError, match="missing"):
            compare_bench_documents(old, new)

    def test_tuple_keys_and_regression(self):
        old = {
            "benchmark": "throughput",
            "results": [
                {
                    "circuit": "c17",
                    "batch_size": 64,
                    "batched_scenarios_per_sec": 1000.0,
                }
            ],
        }
        new = {
            "benchmark": "throughput",
            "results": [
                {
                    "circuit": "c17",
                    "batch_size": 64,
                    "batched_scenarios_per_sec": 400.0,
                }
            ],
        }
        (record,) = compare_bench_documents(old, new)
        assert record["key"] == ("c17", 64)
        assert record["status"] == "regression"
