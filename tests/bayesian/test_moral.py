"""Tests for moralization helpers."""


from repro.bayesian.moral import moral_graph, moral_graph_with_fill_report
from repro.core.lidag import build_lidag
from repro.circuits.examples import paper_circuit

from tests.bayesian.util import sprinkler_bn


class TestMoralGraph:
    def test_marries_parents(self):
        moral = moral_graph(sprinkler_bn())
        assert moral.has_edge("sprinkler", "rain")

    def test_keeps_skeleton(self):
        bn = sprinkler_bn()
        moral = moral_graph(bn)
        for u, v in bn.edges:
            assert moral.has_edge(u, v)

    def test_undirected(self):
        moral = moral_graph(sprinkler_bn())
        assert not moral.is_directed()

    def test_fill_report_lists_only_marriages(self):
        bn = build_lidag(paper_circuit())
        moral, marriages = moral_graph_with_fill_report(bn)
        expected = {
            frozenset(p) for p in [("1", "2"), ("3", "4"), ("5", "6"), ("7", "8")]
        }
        assert {frozenset(m) for m in marriages} == expected
        # The marriages are in the graph and were not DAG edges.
        dag_edges = {frozenset(e) for e in bn.edges}
        for marriage in marriages:
            assert moral.has_edge(*marriage)
            assert frozenset(marriage) not in dag_edges

    def test_no_marriages_for_chains(self):
        import numpy as np

        from repro.bayesian import BayesianNetwork, TabularCPD

        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))
        bn.add_cpd(TabularCPD("b", 2, np.full((2, 2), 0.5), ["a"]))
        bn.add_cpd(TabularCPD("c", 2, np.full((2, 2), 0.5), ["b"]))
        _, marriages = moral_graph_with_fill_report(bn)
        assert marriages == []
