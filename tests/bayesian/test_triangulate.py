"""Tests for triangulation, elimination orders and clique extraction."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian.triangulate import (
    elimination_cliques,
    find_elimination_order,
    is_chordal,
    max_clique_state_space,
    treewidth_of_order,
    triangulate,
)


def cycle_graph(n):
    g = nx.Graph()
    g.add_edges_from((f"v{i}", f"v{(i + 1) % n}") for i in range(n))
    return g


def random_graph(n, p, seed):
    return nx.relabel_nodes(
        nx.gnp_random_graph(n, p, seed=seed), {i: f"v{i}" for i in range(n)}
    )


class TestEliminationOrder:
    def test_order_covers_all_nodes(self):
        g = cycle_graph(6)
        order = find_elimination_order(g)
        assert sorted(order) == sorted(g.nodes)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            find_elimination_order(cycle_graph(4), heuristic="magic")

    def test_min_fill_on_tree_adds_nothing(self):
        tree = nx.Graph([("a", "b"), ("b", "c"), ("b", "d")])
        order = find_elimination_order(tree, "min_fill")
        _, _, fills = triangulate(tree, order=order)
        assert fills == []

    def test_deterministic(self):
        g = random_graph(10, 0.4, seed=1)
        assert find_elimination_order(g) == find_elimination_order(g)

    def test_min_degree_heuristic(self):
        g = cycle_graph(5)
        order = find_elimination_order(g, "min_degree")
        assert sorted(order) == sorted(g.nodes)


class TestTriangulate:
    @pytest.mark.parametrize("n", [4, 5, 6, 9])
    def test_cycle_becomes_chordal(self, n):
        chordal, _, fills = triangulate(cycle_graph(n))
        assert is_chordal(chordal)
        assert len(fills) == n - 3  # optimal for a cycle

    def test_invalid_order_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError, match="permutation"):
            triangulate(g, order=["v0"])

    def test_input_not_mutated(self):
        g = cycle_graph(5)
        before = set(g.edges)
        triangulate(g)
        assert set(g.edges) == before

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 12), st.integers(0, 1000))
    def test_random_graphs_become_chordal(self, n, seed):
        g = random_graph(n, 0.35, seed)
        for heuristic in ("min_fill", "min_degree"):
            chordal, order, _ = triangulate(g, heuristic=heuristic)
            assert is_chordal(chordal)
            assert sorted(order) == sorted(g.nodes)

    def test_paper_figure3_fill_in(self):
        """The moral graph of the paper's Figure 2 needs exactly one
        fill-in, breaking the 4-6-7-8 square (the paper adds X4--X7)."""
        moral = nx.Graph()
        moral.add_edges_from(
            [
                ("1", "5"), ("2", "5"), ("1", "2"),
                ("3", "6"), ("4", "6"), ("3", "4"),
                ("5", "7"), ("6", "7"), ("5", "6"),
                ("4", "8"),
                ("7", "9"), ("8", "9"), ("7", "8"),
            ]
        )
        chordal, _, fills = triangulate(moral)
        assert is_chordal(chordal)
        assert len(fills) == 1
        assert set(fills[0]) in ({"4", "7"}, {"6", "8"})


class TestCliques:
    def test_cliques_are_maximal_and_cover(self):
        g = cycle_graph(6)
        chordal, order, _ = triangulate(g)
        cliques = elimination_cliques(chordal, order)
        covered = set().union(*cliques)
        assert covered == set(g.nodes)
        for i, a in enumerate(cliques):
            for j, b in enumerate(cliques):
                if i != j:
                    assert not a <= b

    def test_cliques_match_networkx_on_chordal(self):
        g = random_graph(9, 0.4, seed=3)
        chordal, order, _ = triangulate(g)
        ours = {frozenset(c) for c in elimination_cliques(chordal, order)}
        reference = {frozenset(c) for c in nx.find_cliques(chordal)}
        assert ours == reference

    def test_every_original_edge_in_some_clique(self):
        g = random_graph(8, 0.45, seed=7)
        chordal, order, _ = triangulate(g)
        cliques = elimination_cliques(chordal, order)
        for u, v in g.edges:
            assert any({u, v} <= c for c in cliques)


class TestMetrics:
    def test_treewidth_of_cycle(self):
        g = cycle_graph(6)
        order = find_elimination_order(g)
        assert treewidth_of_order(g, order) == 2

    def test_max_clique_state_space(self):
        cliques = [frozenset({"a", "b"}), frozenset({"c"})]
        assert max_clique_state_space(cliques, {"a": 4, "b": 4, "c": 2}) == 16

    def test_min_fill_not_worse_than_min_degree_on_average(self):
        # Aggregate sanity: over a bag of random graphs min-fill should
        # produce no larger total width than min-degree.
        total_fill, total_degree = 0, 0
        for seed in range(12):
            g = random_graph(12, 0.3, seed)
            total_fill += treewidth_of_order(g, find_elimination_order(g, "min_fill"))
            total_degree += treewidth_of_order(
                g, find_elimination_order(g, "min_degree")
            )
        assert total_fill <= total_degree + 2
