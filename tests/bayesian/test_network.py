"""Tests for the BayesianNetwork container."""

import numpy as np
import pytest

from repro.bayesian import BayesianNetwork, TabularCPD

from tests.bayesian.util import random_bn, sprinkler_bn


class TestConstruction:
    def test_duplicate_cpd_rejected(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))
        with pytest.raises(ValueError, match="already"):
            bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))

    def test_cycle_rejected_and_rolled_back(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD("a", 2, np.full((2, 2), 0.5), ["b"]))
        with pytest.raises(ValueError, match="cycle"):
            bn.add_cpd(TabularCPD("b", 2, np.full((2, 2), 0.5), ["a"]))
        # The failed node must not linger in the graph.
        assert "b" in bn.nodes  # b exists as a's declared parent
        assert bn.edges == [("b", "a")]

    def test_validate_missing_cpd(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD("a", 2, np.full((2, 2), 0.5), ["b"]))
        with pytest.raises(ValueError, match="no CPD"):
            bn.validate()

    def test_validate_cardinality_mismatch(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("b", [0.3, 0.3, 0.4]))
        bn.add_cpd(TabularCPD("a", 2, np.full((2, 2), 0.5), ["b"]))
        with pytest.raises(ValueError, match="states"):
            bn.validate()


class TestStructureQueries:
    def test_parents_children(self):
        bn = sprinkler_bn()
        assert set(bn.parents("wet")) == {"sprinkler", "rain"}
        assert set(bn.children("cloudy")) == {"sprinkler", "rain"}
        assert bn.roots() == ["cloudy"]

    def test_topological_order(self):
        bn = sprinkler_bn()
        order = bn.topological_order()
        assert order.index("cloudy") < order.index("sprinkler") < order.index("wet")

    def test_markov_blanket(self):
        bn = sprinkler_bn()
        # sprinkler's blanket: parent cloudy, child wet, co-parent rain.
        assert bn.markov_blanket("sprinkler") == {"cloudy", "wet", "rain"}

    def test_cardinality(self):
        bn = sprinkler_bn()
        assert bn.cardinality("wet") == 2

    def test_to_digraph_is_copy(self):
        bn = sprinkler_bn()
        g = bn.to_digraph()
        g.remove_node("wet")
        assert "wet" in bn.nodes


class TestDistribution:
    def test_joint_sums_to_one(self):
        bn = sprinkler_bn()
        assert bn.joint_factor().total() == pytest.approx(1.0)

    def test_joint_probability_matches_factor(self):
        bn = sprinkler_bn()
        joint = bn.joint_factor()
        assignment = {"cloudy": 1, "sprinkler": 0, "rain": 1, "wet": 1}
        assert bn.joint_probability(assignment) == pytest.approx(
            joint.probability(assignment)
        )

    def test_chain_rule_on_random_networks(self):
        for seed in range(3):
            bn = random_bn(6, seed=seed)
            joint = bn.joint_factor()
            assert joint.total() == pytest.approx(1.0)
            rng = np.random.default_rng(seed)
            assignment = {n: int(rng.integers(2)) for n in bn.nodes}
            assert bn.joint_probability(assignment) == pytest.approx(
                joint.probability(assignment)
            )

    def test_brute_force_marginal(self):
        bn = sprinkler_bn()
        marginal = bn.brute_force_marginal("cloudy")
        assert marginal == pytest.approx([0.5, 0.5])

    def test_brute_force_marginal_with_evidence(self):
        bn = sprinkler_bn()
        posterior = bn.brute_force_marginal("rain", {"wet": 1})
        # Wet grass raises the rain probability above its prior of 0.5.
        assert posterior[1] > 0.5
        assert posterior.sum() == pytest.approx(1.0)
