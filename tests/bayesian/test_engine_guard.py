"""Reentrancy guard: one PropagationEngine, one thread at a time.

The engine's belief/message buffers are preallocated and mutated in
place, so two threads propagating through one engine silently corrupt
each other's results.  The guard turns that silent corruption into a
typed :class:`~repro.errors.ConcurrentPropagationError`; the serving
layer's engine pool is the sanctioned way to run concurrent queries
(pinned by the bitwise regression test below).
"""

import pickle
import threading

import numpy as np
import pytest

from repro.bayesian import JunctionTree
from repro.core.backend import compile_model
from repro.core.inputs import IndependentInputs
from repro.errors import ConcurrentPropagationError, PropagationError

from tests.bayesian.util import sprinkler_bn


def _calibrated_engine():
    jt = JunctionTree.from_network(sprinkler_bn())
    jt.calibrate()
    return jt._engine


class TestGuard:
    def test_concurrent_entry_raises_typed_error(self):
        """A second thread entering mid-propagation gets the typed error."""
        engine = _calibrated_engine()
        entered = threading.Event()
        release = threading.Event()
        original = engine._absorb_from_parent

        def stalled(*args, **kwargs):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(*args, **kwargs)

        engine._absorb_from_parent = stalled
        engine.mark_all_dirty()
        failures = []

        def propagate():
            try:
                engine.propagate()
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        thread = threading.Thread(target=propagate)
        thread.start()
        try:
            assert entered.wait(timeout=10.0)
            with pytest.raises(ConcurrentPropagationError):
                engine.propagate()
            with pytest.raises(ConcurrentPropagationError):
                engine.marginals(["cloudy"])
        finally:
            release.set()
            thread.join(timeout=10.0)
        assert not failures
        # The guard is released afterwards: serial re-entry works.
        engine.marginals(["cloudy"])

    def test_error_is_a_propagation_error(self):
        assert issubclass(ConcurrentPropagationError, PropagationError)

    def test_serial_reuse_is_unaffected(self):
        engine = _calibrated_engine()
        first = engine.marginals(["cloudy", "wet"])
        second = engine.marginals(["cloudy", "wet"])
        for node in first:
            assert np.array_equal(first[node], second[node])

    def test_engine_survives_pickling_with_fresh_guard(self):
        """The guard lock is dropped on pickle and recreated on load
        (compiled artifacts round-trip through the compile cache)."""
        engine = _calibrated_engine()
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._guard is not engine._guard
        out = clone.marginals(["cloudy"])
        assert np.array_equal(out["cloudy"], engine.marginals(["cloudy"])["cloudy"])


class TestEnginePoolBitwise:
    """Two threads hammering one compiled artifact through the serving
    engine pool must be bitwise-equal to running the same scenarios
    serially on a fresh compile -- the regression the guard exposed."""

    def test_two_threads_match_serial(self):
        from repro.circuits.examples import c17
        from repro.serve.pool import EnginePool

        circuit = c17()
        scenarios = [IndependentInputs(0.05 + 0.09 * i) for i in range(10)]

        serial_model = compile_model(circuit, backend="junction-tree")
        serial = []
        for scenario in scenarios:
            serial_model.estimator.reset_propagation()
            serial.append(serial_model.query(scenario))

        pool = EnginePool(
            compile_model(circuit, backend="junction-tree"), capacity=2
        )
        results = [None] * len(scenarios)
        failures = []

        def worker(offset):
            try:
                for i in range(offset, len(scenarios), 2):
                    replica = pool.checkout(timeout=30.0)
                    try:
                        replica.estimator.reset_propagation()
                        results[i] = replica.query(scenarios[i])
                    finally:
                        pool.checkin(replica)
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures
        for expect, got in zip(serial, results):
            assert got is not None
            for line, dist in expect.distributions.items():
                assert np.array_equal(dist, got.distributions[line])
