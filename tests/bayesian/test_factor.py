"""Unit and property tests for the discrete factor algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian.factor import Factor, factor_product


def small_factor(variables, seed=0):
    rng = np.random.default_rng(seed)
    shape = tuple(2 + (i % 2) for i in range(len(variables)))
    return Factor(variables, rng.random(shape) + 0.05)


@st.composite
def factors(draw, var_pool=("a", "b", "c", "d")):
    n = draw(st.integers(0, len(var_pool)))
    variables = draw(
        st.lists(st.sampled_from(var_pool), min_size=n, max_size=n, unique=True)
    )
    cards = {"a": 2, "b": 3, "c": 2, "d": 2}
    shape = tuple(cards[v] for v in variables)
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return Factor(variables, rng.random(shape) + 0.01)


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            Factor(("a", "b"), np.ones(4))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Factor(("a", "a"), np.ones((2, 2)))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Factor(("a",), np.array([0.5, -0.1]))

    def test_unit_factor(self):
        unit = Factor.unit()
        assert unit.variables == ()
        assert unit.total() == 1.0

    def test_uniform(self):
        f = Factor.uniform(("a", "b"), (2, 3))
        assert f.values.shape == (2, 3)
        assert f.total() == 6.0

    def test_indicator(self):
        f = Factor.indicator("a", 4, 2)
        assert list(f.values) == [0, 0, 1, 0]

    def test_indicator_out_of_range(self):
        with pytest.raises(ValueError):
            Factor.indicator("a", 4, 4)

    def test_from_distribution(self):
        f = Factor.from_distribution("a", [0.25, 0.75])
        assert f.probability({"a": 1}) == 0.75

    def test_cardinality_queries(self):
        f = Factor(("a", "b"), np.ones((2, 3)))
        assert f.cardinality("b") == 3
        assert f.cardinalities == {"a": 2, "b": 3}
        assert f.size == 6
        assert "a" in f and "z" not in f


class TestProduct:
    def test_disjoint_scopes(self):
        fa = Factor.from_distribution("a", [0.3, 0.7])
        fb = Factor.from_distribution("b", [0.4, 0.6])
        prod = fa.product(fb)
        assert prod.probability({"a": 1, "b": 0}) == pytest.approx(0.7 * 0.4)

    def test_shared_scope(self):
        fa = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        fb = Factor(("b",), np.array([10.0, 100.0]))
        prod = fa.product(fb)
        assert prod.probability({"a": 1, "b": 1}) == 400.0

    def test_product_with_unit_is_identity(self):
        f = small_factor(("a", "b"))
        prod = f.product(Factor.unit())
        assert prod.allclose(f)

    @given(factors(), factors())
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, f, g):
        assert f.product(g).allclose(g.product(f))

    @given(factors(), factors(), factors())
    @settings(max_examples=30, deadline=None)
    def test_associative(self, f, g, h):
        lhs = f.product(g).product(h)
        rhs = f.product(g.product(h))
        assert lhs.allclose(rhs, atol=1e-9)

    def test_scalar_multiplication(self):
        f = Factor.from_distribution("a", [0.5, 0.5])
        doubled = 2 * f
        assert doubled.total() == pytest.approx(2.0)


class TestMarginalize:
    def test_sum_out(self):
        f = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        m = f.marginalize(["b"])
        assert m.variables == ("a",)
        assert list(m.values) == [3.0, 7.0]

    def test_marginal_onto(self):
        f = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        m = f.marginal_onto(["b"])
        assert m.variables == ("b",)
        assert list(m.values) == [4.0, 6.0]

    def test_absent_variable_raises(self):
        f = small_factor(("a",))
        with pytest.raises(KeyError):
            f.marginalize(["z"])
        with pytest.raises(KeyError):
            f.marginal_onto(["z"])

    @given(factors())
    @settings(max_examples=50, deadline=None)
    def test_total_preserved(self, f):
        if not f.variables:
            return
        m = f.marginalize([f.variables[0]])
        assert m.total() == pytest.approx(f.total())

    @given(factors(), factors())
    @settings(max_examples=40, deadline=None)
    def test_distributes_over_product(self, f, g):
        # sum_x (f * g) == f * sum_x g  when x only appears in g.
        only_g = [v for v in g.variables if v not in f.variables]
        if not only_g:
            return
        x = only_g[0]
        lhs = f.product(g).marginalize([x])
        rhs = f.product(g.marginalize([x]))
        assert lhs.allclose(rhs, atol=1e-9)


class TestDivide:
    def test_elementwise(self):
        f = Factor(("a",), np.array([2.0, 9.0]))
        g = Factor(("a",), np.array([2.0, 3.0]))
        assert list(f.divide(g).values) == [1.0, 3.0]

    def test_zero_over_zero_is_zero(self):
        f = Factor(("a",), np.array([0.0, 4.0]))
        g = Factor(("a",), np.array([0.0, 2.0]))
        assert list(f.divide(g).values) == [0.0, 2.0]

    def test_nonzero_over_zero_raises(self):
        f = Factor(("a",), np.array([1.0, 4.0]))
        g = Factor(("a",), np.array([0.0, 2.0]))
        with pytest.raises(ZeroDivisionError):
            f.divide(g)

    @given(factors())
    @settings(max_examples=40, deadline=None)
    def test_multiply_then_divide_roundtrips(self, f):
        if not f.variables:
            return
        rng = np.random.default_rng(1)
        g = Factor(f.variables, rng.random(f.values.shape) + 0.01)
        # (f * g) / g == f on g's support (strictly positive here).
        assert f.product(g).divide(g).allclose(f, atol=1e-9)


class TestReduce:
    def test_reduce_removes_variable(self):
        f = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        r = f.reduce({"a": 1})
        assert r.variables == ("b",)
        assert list(r.values) == [3.0, 4.0]

    def test_reduce_multiple(self):
        f = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        r = f.reduce({"a": 0, "b": 1})
        assert r.variables == ()
        assert float(r.values) == 2.0

    def test_reduce_out_of_range(self):
        f = small_factor(("a",))
        with pytest.raises(ValueError):
            f.reduce({"a": 99})

    def test_reduce_ignores_foreign_variables(self):
        f = small_factor(("a",))
        r = f.reduce({"z": 0})
        assert r.allclose(f)


class TestNormalizePermute:
    def test_normalize(self):
        f = Factor(("a",), np.array([1.0, 3.0]))
        n = f.normalize()
        assert list(n.values) == [0.25, 0.75]

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Factor(("a",), np.zeros(2)).normalize()

    def test_permute(self):
        f = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        p = f.permute(("b", "a"))
        assert p.variables == ("b", "a")
        assert p.probability({"a": 1, "b": 0}) == f.probability({"a": 1, "b": 0})

    def test_permute_invalid(self):
        f = small_factor(("a", "b"))
        with pytest.raises(ValueError):
            f.permute(("a", "z"))

    @given(factors())
    @settings(max_examples=30, deadline=None)
    def test_permute_roundtrip(self, f):
        if len(f.variables) < 2:
            return
        reversed_order = tuple(reversed(f.variables))
        assert f.permute(reversed_order).permute(f.variables).allclose(f)


class TestFactorProduct:
    def test_empty_product_is_unit(self):
        assert factor_product([]).total() == 1.0

    def test_chain(self):
        fs = [Factor.from_distribution(v, [0.5, 0.5]) for v in "abc"]
        prod = factor_product(fs)
        assert prod.size == 8
        assert prod.total() == pytest.approx(1.0)
