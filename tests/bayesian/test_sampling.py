"""Statistical tests for the sampling engines.

Tolerances are sized for ~5 sigma so the suite stays deterministic in
practice while still catching real bugs.
"""

import numpy as np
import pytest

from repro.bayesian.sampling import (
    forward_sample,
    likelihood_weighting,
    sample_marginal,
)

from tests.bayesian.util import random_bn, sprinkler_bn


class TestForwardSampling:
    def test_shapes_and_dtypes(self):
        bn = sprinkler_bn()
        samples = forward_sample(bn, 100, np.random.default_rng(0))
        assert set(samples) == set(bn.nodes)
        for arr in samples.values():
            assert arr.shape == (100,)
            assert arr.dtype == np.int64
            assert arr.min() >= 0 and arr.max() <= 1

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            forward_sample(sprinkler_bn(), 0)

    def test_root_marginal_converges(self):
        bn = sprinkler_bn()
        marginal = sample_marginal(bn, "cloudy", 40_000, np.random.default_rng(1))
        assert marginal[1] == pytest.approx(0.5, abs=0.02)

    def test_leaf_marginal_converges(self):
        bn = sprinkler_bn()
        exact = bn.brute_force_marginal("wet")
        marginal = sample_marginal(bn, "wet", 40_000, np.random.default_rng(2))
        assert marginal[1] == pytest.approx(exact[1], abs=0.02)

    def test_deterministic_relationship_respected(self):
        from repro.bayesian import BayesianNetwork, TabularCPD

        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))
        bn.add_cpd(TabularCPD.deterministic("b", 2, ["a"], [2], lambda a: 1 - a))
        samples = forward_sample(bn, 500, np.random.default_rng(3))
        assert np.all(samples["b"] == 1 - samples["a"])

    def test_random_network_marginals(self):
        bn = random_bn(6, seed=4)
        rng = np.random.default_rng(5)
        for node in ("v0", "v5"):
            exact = bn.brute_force_marginal(node)
            estimate = sample_marginal(bn, node, 40_000, rng)
            assert np.allclose(estimate, exact, atol=0.02)


class TestLikelihoodWeighting:
    def test_matches_exact_posterior(self):
        bn = sprinkler_bn()
        exact = bn.brute_force_marginal("rain", {"wet": 1})
        estimate = likelihood_weighting(
            bn, ["rain"], {"wet": 1}, 60_000, np.random.default_rng(6)
        )["rain"]
        assert np.allclose(estimate, exact, atol=0.02)

    def test_evidence_on_root(self):
        bn = sprinkler_bn()
        exact = bn.brute_force_marginal("wet", {"cloudy": 0})
        estimate = likelihood_weighting(
            bn, ["wet"], {"cloudy": 0}, 60_000, np.random.default_rng(7)
        )["wet"]
        assert np.allclose(estimate, exact, atol=0.02)

    def test_multiple_targets(self):
        bn = sprinkler_bn()
        result = likelihood_weighting(
            bn, ["rain", "sprinkler"], {"wet": 1}, 20_000, np.random.default_rng(8)
        )
        assert set(result) == {"rain", "sprinkler"}
        for probs in result.values():
            assert probs.sum() == pytest.approx(1.0)
