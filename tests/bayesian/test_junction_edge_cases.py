"""Edge-case and failure-injection tests for the junction tree."""

import numpy as np
import pytest

from repro.bayesian import BayesianNetwork, JunctionTree, TabularCPD
from repro.bayesian.junction import CliqueBudgetExceeded

from tests.bayesian.util import random_bn, sprinkler_bn


class TestImpossibleEvidence:
    def test_zero_probability_evidence(self):
        """Observing a deterministically excluded state yields evidence
        probability zero and a clean error on normalization."""
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [1.0, 0.0]))  # a is always 0
        bn.add_cpd(TabularCPD.deterministic("b", 2, ["a"], [2], lambda a: a))
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"b": 1})  # impossible
        jt.calibrate()
        assert jt.probability_of_evidence() == pytest.approx(0.0)
        with pytest.raises(ZeroDivisionError):
            jt.marginal("a")

    def test_near_impossible_evidence_still_normalizes(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [1 - 1e-9, 1e-9]))
        bn.add_cpd(TabularCPD.deterministic("b", 2, ["a"], [2], lambda a: a))
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"b": 1})
        assert jt.marginal("a")[1] == pytest.approx(1.0)


class TestBudget:
    def test_budget_raised_before_allocation(self):
        bn = random_bn(12, seed=0, max_parents=4)
        with pytest.raises(CliqueBudgetExceeded):
            JunctionTree.from_network(bn, max_clique_states=4)

    def test_generous_budget_passes(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn, max_clique_states=10**9)
        assert jt.marginal("wet").sum() == pytest.approx(1.0)


class TestRepeatedOperations:
    def test_calibrate_is_idempotent(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        jt.calibrate()
        first = jt.marginal("wet").copy()
        jt.calibrate()
        assert np.allclose(jt.marginal("wet"), first, atol=1e-12)

    def test_evidence_replaced_not_accumulated_on_clear(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"wet": 1})
        jt.set_evidence({"cloudy": 0})
        # Both pieces of evidence are active (update semantics).
        expected = bn.brute_force_marginal("rain", {"wet": 1, "cloudy": 0})
        assert np.allclose(jt.marginal("rain"), expected, atol=1e-10)
        jt.clear_evidence()
        assert np.allclose(jt.marginal("rain"), [0.5, 0.5], atol=1e-10)

    def test_many_update_cycles_stay_exact(self):
        """Repeated update_cpds must not accumulate drift (the cached
        per-clique CPD products are rebuilt for touched cliques)."""
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        for p in np.linspace(0.05, 0.95, 7):
            jt.update_cpds([TabularCPD.prior("cloudy", [1 - p, p])])
            jt.calibrate()
            reference = BayesianNetwork()
            reference.add_cpd(TabularCPD.prior("cloudy", [1 - p, p]))
            for node in ("sprinkler", "rain", "wet"):
                reference.add_cpd(sprinkler_bn().cpd(node))
            expected = reference.brute_force_marginal("wet")
            assert np.allclose(jt.marginal("wet"), expected, atol=1e-10)


class TestSingleNodeNetwork:
    def test_trivial_network(self):
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [0.3, 0.7]))
        jt = JunctionTree.from_network(bn)
        assert jt.marginal("a") == pytest.approx([0.3, 0.7])
        assert jt.check_running_intersection()
        assert len(jt.cliques) == 1
