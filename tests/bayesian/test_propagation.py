"""Tests for the compiled propagation engine.

The engine must be numerically indistinguishable from the Factor-based
reference path (``engine=False``) and from fresh recompilation after
dirty-clique updates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian import BayesianNetwork, JunctionTree, TabularCPD
from repro.bayesian.propagation import PropagationSchedule

from tests.bayesian.util import random_bn, sprinkler_bn


class TestScheduleStructure:
    def test_messages_exist_both_directions(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        schedule = PropagationSchedule(
            jt.cliques, jt.tree.edges, jt._cardinalities
        )
        for u, v in jt.tree.edges:
            assert (u, v) in schedule.messages
            assert (v, u) in schedule.messages
            assert schedule.messages[(u, v)].sep_vars == tuple(
                sorted(jt.cliques[u] & jt.cliques[v])
            )

    def test_canonical_orders_are_sorted(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        schedule = PropagationSchedule(
            jt.cliques, jt.tree.edges, jt._cardinalities
        )
        for order in schedule.orders:
            assert list(order) == sorted(order)

    def test_every_variable_has_a_home(self):
        bn = random_bn(8, seed=3, max_parents=3)
        jt = JunctionTree.from_network(bn)
        schedule = PropagationSchedule(
            jt.cliques, jt.tree.edges, jt._cardinalities
        )
        for node in bn.nodes:
            idx, axis = schedule.variable_axis[node]
            assert schedule.orders[idx][axis] == node


class TestEngineMatchesReference:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 400))
    def test_marginals_match_legacy_path(self, seed):
        bn = random_bn(9, seed=seed, max_parents=3)
        fast = JunctionTree.from_network(bn, engine=True)
        slow = JunctionTree.from_network(bn, engine=False)
        fast.calibrate()
        slow.calibrate()
        for node in bn.nodes:
            assert np.allclose(
                fast.marginal(node), slow.marginal(node), atol=1e-12
            )

    def test_batched_marginals_match_single_reads(self):
        bn = random_bn(10, seed=7, max_parents=3)
        jt = JunctionTree.from_network(bn)
        batched = jt.marginals(list(bn.nodes))
        for node in bn.nodes:
            assert np.allclose(batched[node], jt.marginal(node), atol=1e-15)

    def test_evidence_matches_legacy_path(self):
        bn = sprinkler_bn()
        fast = JunctionTree.from_network(bn, engine=True)
        slow = JunctionTree.from_network(bn, engine=False)
        for tree in (fast, slow):
            tree.set_evidence({"wet": 1})
        for node in ("cloudy", "rain", "sprinkler"):
            assert np.allclose(
                fast.marginal(node), slow.marginal(node), atol=1e-12
            )
        assert fast.probability_of_evidence() == pytest.approx(
            slow.probability_of_evidence(), abs=1e-12
        )

    def test_separators_agree_after_calibration(self):
        bn = random_bn(8, seed=11, max_parents=3)
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        assert jt.check_calibration()


class TestDirtyRepropagation:
    def test_update_cpds_matches_fresh_compile(self):
        """A CPD sweep over a calibrated tree must track a fresh
        compile to 1e-12 at every step."""
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        for p in np.linspace(0.05, 0.95, 9):
            jt.update_cpds([TabularCPD.prior("cloudy", [1 - p, p])])
            jt.calibrate()
            fresh_bn = BayesianNetwork()
            fresh_bn.add_cpd(TabularCPD.prior("cloudy", [1 - p, p]))
            for node in ("sprinkler", "rain", "wet"):
                fresh_bn.add_cpd(sprinkler_bn().cpd(node))
            fresh = JunctionTree.from_network(fresh_bn)
            fresh.calibrate()
            for node in fresh_bn.nodes:
                assert np.allclose(
                    jt.marginal(node), fresh.marginal(node), atol=1e-12
                )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_random_network_sweeps(self, seed):
        bn = random_bn(8, seed=seed, max_parents=3)
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        roots = [n for n in bn.nodes if not bn.parents(n)]
        rng = np.random.default_rng(seed)
        for _ in range(4):
            new_cpds = []
            for root in roots:
                k = bn.cardinality(root)
                probs = rng.dirichlet(np.ones(k))
                new_cpds.append(TabularCPD.prior(root, probs))
            jt.update_cpds(new_cpds)
            jt.calibrate()
            fresh = JunctionTree.from_network(bn)
            fresh.calibrate()
            for node in bn.nodes:
                assert np.allclose(
                    jt.marginal(node), fresh.marginal(node), atol=1e-12
                )

    def test_zero_probability_resurrection(self):
        """Moving a prior off an exact zero must rebuild the affected
        beliefs (the zero slices cannot be rescaled)."""
        bn = BayesianNetwork()
        bn.add_cpd(TabularCPD.prior("a", [1.0, 0.0]))
        bn.add_cpd(TabularCPD.deterministic("b", 2, ["a"], [2], lambda a: a))
        bn.add_cpd(TabularCPD.deterministic("c", 2, ["b"], [2], lambda b: 1 - b))
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        assert jt.marginal("c") == pytest.approx([0.0, 1.0])
        jt.update_cpds([TabularCPD.prior("a", [0.25, 0.75])])
        jt.calibrate()
        assert jt.marginal("b") == pytest.approx([0.25, 0.75])
        assert jt.marginal("c") == pytest.approx([0.75, 0.25])

    def test_evidence_cycle_dirty_tracking(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()  # engine built; subsequent updates take the dirty path
        jt.set_evidence({"wet": 1})
        expected = bn.brute_force_marginal("rain", {"wet": 1})
        assert np.allclose(jt.marginal("rain"), expected, atol=1e-10)
        jt.set_evidence({"cloudy": 0})
        expected = bn.brute_force_marginal("rain", {"wet": 1, "cloudy": 0})
        assert np.allclose(jt.marginal("rain"), expected, atol=1e-10)
        jt.clear_evidence()
        assert np.allclose(jt.marginal("rain"), [0.5, 0.5], atol=1e-10)

    def test_clean_propagate_is_noop(self):
        bn = random_bn(8, seed=5, max_parents=3)
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        first = {n: jt.marginal(n).copy() for n in bn.nodes}
        jt.calibrate()  # nothing dirty: must not move any number
        for node in bn.nodes:
            assert np.array_equal(jt.marginal(node), first[node])
