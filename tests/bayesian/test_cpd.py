"""Tests for tabular CPDs."""

import numpy as np
import pytest

from repro.bayesian.cpd import TabularCPD


class TestConstruction:
    def test_prior(self):
        cpd = TabularCPD.prior("a", [0.2, 0.8])
        assert cpd.parents == ()
        assert cpd.cardinality == 2
        assert cpd.probability(1, {}) == 0.8

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TabularCPD("a", 2, np.array([0.5, 0.6]))

    def test_conditional_rows_checked(self):
        bad = np.array([[0.5, 0.5], [0.7, 0.7]])
        with pytest.raises(ValueError, match="sum to 1"):
            TabularCPD("a", 2, bad, ["p"])

    def test_shape_must_match_parents(self):
        with pytest.raises(ValueError, match="axes"):
            TabularCPD("a", 2, np.array([0.5, 0.5]), ["p"])

    def test_cardinality_must_match_last_axis(self):
        with pytest.raises(ValueError, match="last axis"):
            TabularCPD("a", 3, np.array([0.5, 0.5]))


class TestDeterministic:
    def test_xor_like_function(self):
        cpd = TabularCPD.deterministic(
            "y", 2, ["a", "b"], [2, 2], lambda a, b: a ^ b
        )
        assert cpd.is_deterministic()
        assert cpd.probability(1, {"a": 1, "b": 0}) == 1.0
        assert cpd.probability(1, {"a": 1, "b": 1}) == 0.0

    def test_no_parents(self):
        cpd = TabularCPD.deterministic("y", 3, [], [], lambda: 2)
        assert cpd.probability(2, {}) == 1.0

    def test_function_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            TabularCPD.deterministic("y", 2, ["a"], [2], lambda a: a + 5)

    def test_mixed_cardinalities(self):
        cpd = TabularCPD.deterministic(
            "y", 4, ["a", "b"], [2, 3], lambda a, b: min(a + b, 3)
        )
        assert cpd.probability(3, {"a": 1, "b": 2}) == 1.0
        assert cpd.probability(0, {"a": 0, "b": 0}) == 1.0


class TestQueries:
    def test_to_factor_axis_order(self):
        table = np.array([[0.1, 0.9], [0.4, 0.6]])
        cpd = TabularCPD("y", 2, table, ["x"])
        factor = cpd.to_factor()
        assert factor.variables == ("x", "y")
        assert factor.probability({"x": 1, "y": 0}) == 0.4

    def test_is_deterministic_false_for_soft(self):
        cpd = TabularCPD.prior("a", [0.2, 0.8])
        assert not cpd.is_deterministic()

    def test_repr(self):
        cpd = TabularCPD("y", 2, np.array([[0.1, 0.9], [0.4, 0.6]]), ["x"])
        assert "y" in repr(cpd) and "x" in repr(cpd)
