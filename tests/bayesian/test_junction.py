"""Tests for junction-tree construction and message passing.

The junction tree is cross-checked against two independent exact
engines: variable elimination and brute-force joint enumeration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesian import (
    BayesianNetwork,
    JunctionTree,
    TabularCPD,
    variable_elimination,
)
from repro.bayesian.junction import JunctionTreeError

from tests.bayesian.util import random_bn, sprinkler_bn


class TestStructure:
    def test_running_intersection(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        assert jt.check_running_intersection()

    def test_every_family_covered(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        for node in bn.nodes:
            family = set(bn.parents(node)) | {node}
            assert any(family <= c for c in jt.cliques)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500))
    def test_random_networks_structural_invariants(self, seed):
        bn = random_bn(10, seed=seed, max_parents=3)
        jt = JunctionTree.from_network(bn)
        assert jt.check_running_intersection()
        # Tree: |E| = |V| - #components.
        import networkx as nx

        n_components = nx.number_connected_components(jt.tree)
        assert jt.tree.number_of_edges() == jt.tree.number_of_nodes() - n_components

    def test_stats(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        stats = jt.stats()
        assert stats["cliques"] >= 1
        assert stats["max_clique_states"] >= 4

    def test_disconnected_network(self):
        bn = BayesianNetwork("disc")
        bn.add_cpd(TabularCPD.prior("a", [0.3, 0.7]))
        bn.add_cpd(TabularCPD.prior("b", [0.6, 0.4]))
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        assert jt.marginal("a") == pytest.approx([0.3, 0.7])
        assert jt.marginal("b") == pytest.approx([0.6, 0.4])


class TestMarginals:
    def test_sprinkler_prior_marginals(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        for node in bn.nodes:
            expected = bn.brute_force_marginal(node)
            assert jt.marginal(node) == pytest.approx(list(expected), abs=1e-10)

    def test_marginal_autocalibrates(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        # No explicit calibrate() call.
        assert jt.marginal("cloudy") == pytest.approx([0.5, 0.5])

    def test_unknown_variable(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        with pytest.raises(KeyError):
            jt.marginal("nope")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_matches_variable_elimination(self, seed):
        bn = random_bn(9, seed=seed, max_parents=3)
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        assert jt.check_calibration()
        for node in bn.nodes:
            expected = variable_elimination(bn, [node]).values
            assert np.allclose(jt.marginal(node), expected, atol=1e-10)

    def test_three_state_variables(self):
        bn = BayesianNetwork("ternary")
        bn.add_cpd(TabularCPD.prior("a", [0.2, 0.3, 0.5]))
        table = np.array([[0.1, 0.9], [0.5, 0.5], [0.8, 0.2]])
        bn.add_cpd(TabularCPD("b", 2, table, ["a"]))
        jt = JunctionTree.from_network(bn)
        expected = bn.brute_force_marginal("b")
        assert jt.marginal("b") == pytest.approx(list(expected))


class TestEvidence:
    def test_posterior_under_evidence(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"wet": 1})
        jt.calibrate()
        expected = bn.brute_force_marginal("rain", {"wet": 1})
        assert jt.marginal("rain") == pytest.approx(list(expected), abs=1e-10)

    def test_probability_of_evidence(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"wet": 1})
        joint = bn.joint_factor()
        expected = joint.marginal_onto(["wet"]).values[1]
        assert jt.probability_of_evidence() == pytest.approx(float(expected))

    def test_no_evidence_mass_is_one(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        assert jt.probability_of_evidence() == pytest.approx(1.0)

    def test_clear_evidence(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        jt.set_evidence({"wet": 1})
        jt.calibrate()
        posterior = jt.marginal("rain")
        jt.clear_evidence()
        jt.calibrate()
        assert jt.marginal("rain") == pytest.approx([0.5, 0.5])
        assert not np.allclose(posterior, [0.5, 0.5])

    def test_invalid_evidence(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        with pytest.raises(KeyError):
            jt.set_evidence({"nope": 0})
        with pytest.raises(ValueError):
            jt.set_evidence({"wet": 7})

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_evidence_matches_ve_on_random_networks(self, seed):
        bn = random_bn(8, seed=seed, max_parents=2)
        jt = JunctionTree.from_network(bn)
        evidence = {"v2": 1, "v5": 0}
        jt.set_evidence(evidence)
        jt.calibrate()
        for node in ("v0", "v7"):
            expected = variable_elimination(bn, [node], evidence).values
            assert np.allclose(jt.marginal(node), expected, atol=1e-9)


class TestJointMarginal:
    def test_in_clique_joint(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        joint = jt.joint_marginal(["sprinkler", "rain"])
        expected = bn.joint_factor().marginal_onto(["sprinkler", "rain"])
        assert joint.allclose(expected.normalize(), atol=1e-10)

    def test_out_of_clique_raises(self):
        # cloudy and wet are never in a common clique for this topology
        # under min-fill; if they happen to be, skip.
        jt = JunctionTree.from_network(sprinkler_bn())
        if any({"cloudy", "wet"} <= c for c in jt.cliques):
            pytest.skip("triangulation put them together")
        with pytest.raises(JunctionTreeError):
            jt.joint_marginal(["cloudy", "wet"])


class TestUpdateCpds:
    def test_fast_repropagation_matches_recompile(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        new_prior = TabularCPD.prior("cloudy", [0.9, 0.1])
        jt.update_cpds([new_prior])
        jt.calibrate()

        bn2 = sprinkler_bn()
        bn2._cpds["cloudy"] = new_prior
        expected = bn2.brute_force_marginal("wet")
        assert jt.marginal("wet") == pytest.approx(list(expected), abs=1e-10)

    def test_structure_change_rejected(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        bad = TabularCPD("cloudy", 2, np.full((2, 2), 0.5), ["rain"])
        with pytest.raises(ValueError, match="parents"):
            jt.update_cpds([bad])

    def test_cardinality_change_rejected(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        bad = TabularCPD.prior("cloudy", [0.2, 0.3, 0.5])
        with pytest.raises(ValueError, match="cardinality"):
            jt.update_cpds([bad])

    def test_unknown_node_rejected(self):
        jt = JunctionTree.from_network(sprinkler_bn())
        with pytest.raises(KeyError):
            jt.update_cpds([TabularCPD.prior("ghost", [0.5, 0.5])])

    def test_evidence_survives_cpd_update(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"wet": 1})
        jt.update_cpds([TabularCPD.prior("cloudy", [0.9, 0.1])])
        jt.calibrate()
        bn2 = sprinkler_bn()
        bn2._cpds["cloudy"] = TabularCPD.prior("cloudy", [0.9, 0.1])
        expected = bn2.brute_force_marginal("rain", {"wet": 1})
        assert jt.marginal("rain") == pytest.approx(list(expected), abs=1e-10)


class TestDeterministicCpds:
    """Zero-probability entries (deterministic gates) stress the 0/0
    division convention in Hugin updates."""

    def test_deterministic_chain(self):
        bn = BayesianNetwork("det")
        bn.add_cpd(TabularCPD.prior("a", [0.25, 0.75]))
        bn.add_cpd(
            TabularCPD.deterministic("b", 2, ["a"], [2], lambda a: 1 - a)
        )
        bn.add_cpd(
            TabularCPD.deterministic("c", 2, ["b"], [2], lambda b: b)
        )
        jt = JunctionTree.from_network(bn)
        assert jt.marginal("c") == pytest.approx([0.75, 0.25])

    def test_deterministic_xor_tree(self):
        bn = BayesianNetwork("xor")
        bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))
        bn.add_cpd(TabularCPD.prior("b", [0.3, 0.7]))
        bn.add_cpd(
            TabularCPD.deterministic("y", 2, ["a", "b"], [2, 2], lambda a, b: a ^ b)
        )
        jt = JunctionTree.from_network(bn)
        expected = 0.5 * 0.7 + 0.5 * 0.3
        assert jt.marginal("y")[1] == pytest.approx(expected)

    def test_evidence_on_deterministic_output(self):
        bn = BayesianNetwork("det-ev")
        bn.add_cpd(TabularCPD.prior("a", [0.5, 0.5]))
        bn.add_cpd(
            TabularCPD.deterministic("y", 2, ["a"], [2], lambda a: a)
        )
        jt = JunctionTree.from_network(bn)
        jt.set_evidence({"y": 1})
        assert jt.marginal("a") == pytest.approx([0.0, 1.0])
