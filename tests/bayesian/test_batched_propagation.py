"""Tests for the batched (leading-K-axis) propagation engine.

The batched engine's contract is *bitwise* agreement with K
independent single-query propagations over the same potentials: every
kernel (einsum collect, masked-divide distribute, marginal reduction,
normalization) operates elementwise or reduces each batch slice with
the same pairwise order numpy uses on an unbatched array.  These tests
pin that contract at the engine level, plus the batch-aware failure
modes (per-scenario zero beliefs) and the skip-unchanged-potential
fast path.
"""

import numpy as np
import pytest

from repro.bayesian import BayesianNetwork, JunctionTree, TabularCPD
from repro.bayesian.propagation import PropagationEngine
from repro.errors import ZeroBeliefError

from tests.bayesian.util import random_bn, sprinkler_bn


def _batched_engine_for(jt: JunctionTree, stacks, k=None):
    """A batched engine over ``jt``'s schedule with per-clique stacks."""
    schedule = jt._ensure_schedule()
    if k is None:
        k = len(next(iter(stacks.values())))
    engine = PropagationEngine(schedule, batch_size=k)
    jt.calibrate()  # materialize _cpd_products
    for idx in range(len(jt.cliques)):
        if idx in stacks:
            engine.set_potential_batch(idx, stacks[idx])
        else:
            base = jt._cpd_products[idx].permute(schedule.orders[idx]).values
            engine.set_potential_batch(
                idx, np.broadcast_to(base, (k,) + base.shape).copy()
            )
    return engine


def _single_run(jt: JunctionTree, overrides):
    """Fresh single engine over the same schedule with ``overrides``."""
    schedule = jt._ensure_schedule()
    engine = PropagationEngine(schedule)
    for idx in range(len(jt.cliques)):
        if idx in overrides:
            values = overrides[idx]
        else:
            values = jt._cpd_products[idx].permute(schedule.orders[idx]).values
        engine._install_psi(idx, np.array(values, dtype=np.float64))
    engine.propagate()
    return engine


class TestBatchedBitwise:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_batched_rows_match_independent_single_runs(self, k):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        schedule = jt._ensure_schedule()
        # Vary the clique holding "cloudy" per scenario by scaling the
        # cloudy axis of its CPD-product table.
        idx, axis = schedule.variable_axis["cloudy"]
        base = jt._cpd_products[idx].permute(schedule.orders[idx]).values
        shape = [1] * base.ndim
        shape[axis] = base.shape[axis]
        tables = []
        for i in range(k):
            p = 0.1 + 0.8 * i / max(k - 1, 1)
            scale = np.array([2.0 * p, 2.0 * (1.0 - p)]).reshape(shape)
            tables.append(base * scale)
        stack = np.stack(tables)

        engine = _batched_engine_for(jt, {idx: stack})
        engine.propagate()
        nodes = list(bn.nodes)
        batched = engine.marginals(nodes)

        for i in range(k):
            single = _single_run(jt, {idx: tables[i]})
            expect = single.marginals(nodes)
            for node in nodes:
                assert np.array_equal(batched[node][i], expect[node]), (
                    f"scenario {i}, node {node}"
                )

    def test_random_network_k1_matches_single(self):
        bn = random_bn(9, seed=21, max_parents=3)
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        engine = _batched_engine_for(jt, {}, k=1)
        engine.propagate()
        nodes = list(bn.nodes)
        batched = engine.marginals(nodes)
        single = _single_run(jt, {})
        expect = single.marginals(nodes)
        for node in nodes:
            assert batched[node].shape == (1,) + expect[node].shape
            assert np.array_equal(batched[node][0], expect[node])

    def test_scenarios_propagated_counter_scales_with_batch(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        engine = _batched_engine_for(jt, {}, k=4)
        engine.propagate()
        assert engine.counters.scenarios_propagated == 4
        single = _single_run(jt, {})
        assert engine.counters.flops == 4 * single.counters.flops


class TestZeroBeliefIsolation:
    def _engine_with_zero_scenario(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        schedule = jt._ensure_schedule()
        idx, _ = schedule.variable_axis["cloudy"]
        base = jt._cpd_products[idx].permute(schedule.orders[idx]).values
        stack = np.stack([base, np.zeros_like(base), base * 0.5])
        engine = _batched_engine_for(jt, {idx: stack})
        engine.propagate()
        return jt, engine, idx

    def test_strict_mode_names_the_offending_scenarios(self):
        _, engine, _ = self._engine_with_zero_scenario()
        with pytest.raises(ZeroBeliefError) as excinfo:
            engine.marginals(["cloudy"])
        assert excinfo.value.batch_indices == (1,)

    def test_skip_zero_isolates_batch_mates(self):
        jt, engine, idx = self._engine_with_zero_scenario()
        out = engine.marginals(["cloudy", "wet"], skip_zero=True)
        assert np.isnan(out["cloudy"][1]).all()
        assert np.isnan(out["wet"][1]).all()
        # Unaffected scenarios are bitwise-identical to solo runs.
        schedule = jt._ensure_schedule()
        base = jt._cpd_products[idx].permute(schedule.orders[idx]).values
        for i, table in ((0, base), (2, base * 0.5)):
            single = _single_run(jt, {idx: table})
            expect = single.marginals(["cloudy", "wet"])
            assert np.array_equal(out["cloudy"][i], expect["cloudy"])
            assert np.array_equal(out["wet"][i], expect["wet"])


class TestSkipUnchangedPotential:
    def test_reinstalling_equal_potential_is_a_no_op(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        engine = jt._engine
        assert engine is not None and not engine.dirty
        before = engine.counters.potentials_unchanged
        # Re-push every clique's current potential: array-equal values
        # must leave the engine clean and only bump the skip counter.
        schedule = jt._ensure_schedule()
        for idx in range(len(jt.cliques)):
            engine.set_potential(idx, jt._cpd_products[idx].permute(schedule.orders[idx]))
        assert engine.counters.potentials_unchanged == before + len(jt.cliques)
        assert not engine.dirty
        propagations = engine.counters.propagations
        engine.propagate()
        assert engine.counters.propagations == propagations  # early-out

    def test_update_cpds_with_identical_values_skips_repropagation(self):
        bn = sprinkler_bn()
        jt = JunctionTree.from_network(bn)
        jt.calibrate()
        engine = jt._engine
        skipped = engine.counters.cliques_skipped
        reprop = engine.counters.cliques_repropagated
        jt.update_cpds([TabularCPD.prior("cloudy", [0.5, 0.5])])  # same values
        jt.calibrate()
        assert engine.counters.cliques_repropagated == reprop
        assert engine.counters.cliques_skipped == skipped
        assert engine.counters.potentials_unchanged >= 1
