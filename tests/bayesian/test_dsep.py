"""Tests for d-separation, checked against enumerated independence."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.bayesian.dsep import (
    all_d_separations,
    ancestral_subgraph,
    d_separated,
    moralize_graph,
)

from tests.bayesian.util import random_bn, sprinkler_bn


def chain():
    g = nx.DiGraph()
    g.add_edges_from([("a", "b"), ("b", "c")])
    return g


def collider():
    g = nx.DiGraph()
    g.add_edges_from([("a", "c"), ("b", "c"), ("c", "d")])
    return g


class TestBasicPatterns:
    def test_chain_blocked_by_middle(self):
        g = chain()
        assert not d_separated(g, {"a"}, {"c"})
        assert d_separated(g, {"a"}, {"c"}, {"b"})

    def test_fork(self):
        g = nx.DiGraph()
        g.add_edges_from([("b", "a"), ("b", "c")])
        assert not d_separated(g, {"a"}, {"c"})
        assert d_separated(g, {"a"}, {"c"}, {"b"})

    def test_collider_marginally_blocked(self):
        g = collider()
        assert d_separated(g, {"a"}, {"b"})

    def test_collider_opened_by_conditioning(self):
        g = collider()
        assert not d_separated(g, {"a"}, {"b"}, {"c"})

    def test_collider_opened_by_descendant(self):
        g = collider()
        assert not d_separated(g, {"a"}, {"b"}, {"d"})

    def test_sprinkler_pattern(self):
        dag = sprinkler_bn().to_digraph()
        # sprinkler and rain are dependent through cloudy...
        assert not d_separated(dag, {"sprinkler"}, {"rain"})
        # ...independent given cloudy...
        assert d_separated(dag, {"sprinkler"}, {"rain"}, {"cloudy"})
        # ...and dependent again when also conditioning on wet (collider).
        assert not d_separated(dag, {"sprinkler"}, {"rain"}, {"cloudy", "wet"})


class TestValidation:
    def test_overlapping_sets_rejected(self):
        g = chain()
        with pytest.raises(ValueError, match="disjoint"):
            d_separated(g, {"a"}, {"a"})

    def test_unknown_node_rejected(self):
        g = chain()
        with pytest.raises(ValueError, match="unknown"):
            d_separated(g, {"a"}, {"zzz"})

    def test_empty_set_trivially_separated(self):
        assert d_separated(chain(), set(), {"a"})


class TestHelpers:
    def test_ancestral_subgraph(self):
        g = collider()
        sub = ancestral_subgraph(g, {"c"})
        assert set(sub.nodes) == {"a", "b", "c"}

    def test_moralize_marries_parents(self):
        g = collider()
        moral = moralize_graph(g)
        assert moral.has_edge("a", "b")
        assert moral.has_edge("c", "d")


class TestSoundnessAgainstEnumeration:
    """Every d-separation must be a true independence in the joint
    distribution (the I-map property).  We verify on random networks by
    enumerating the joint."""

    @pytest.mark.parametrize("seed", range(4))
    def test_dsep_implies_independence(self, seed):
        bn = random_bn(5, seed=seed, max_parents=2)
        joint = bn.joint_factor()
        dag = bn.to_digraph()
        for x, y, z in all_d_separations(dag, max_conditioning=2):
            assert _independent_in_joint(joint, x, y, sorted(z)), (
                f"d-sep claims {x} ⟂ {y} | {sorted(z)} but the joint disagrees"
            )


def _independent_in_joint(joint, x, y, z, atol=1e-9):
    """Brute-force conditional-independence check in an enumerated joint."""
    pxyz = joint.marginal_onto([x, y] + z).permute([x, y] + z)
    for z_states in itertools.product(*(range(pxyz.cardinality(v)) for v in z)):
        sub = pxyz.values[(slice(None), slice(None)) + z_states]
        total = sub.sum()
        if total < atol:
            continue
        cond = sub / total
        outer = cond.sum(axis=1)[:, None] * cond.sum(axis=0)[None, :]
        if not np.allclose(cond, outer, atol=1e-8):
            return False
    return True
