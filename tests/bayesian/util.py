"""Shared helpers for Bayesian-engine tests."""

import numpy as np

from repro.bayesian import BayesianNetwork, TabularCPD


def random_bn(
    n_nodes: int,
    seed: int = 0,
    max_parents: int = 2,
    cardinality: int = 2,
    name: str = "rand",
) -> BayesianNetwork:
    """A random DAG-structured network with strictly positive CPDs."""
    rng = np.random.default_rng(seed)
    bn = BayesianNetwork(name)
    names = [f"v{i}" for i in range(n_nodes)]
    for i, node in enumerate(names):
        k = int(rng.integers(0, min(max_parents, i) + 1))
        parents = list(rng.choice(names[:i], size=k, replace=False)) if k else []
        shape = tuple([cardinality] * k + [cardinality])
        table = rng.random(shape) + 0.1
        table /= table.sum(axis=-1, keepdims=True)
        bn.add_cpd(TabularCPD(node, cardinality, table, parents))
    return bn


def sprinkler_bn() -> BayesianNetwork:
    """The classic cloudy/sprinkler/rain/wet-grass network."""
    bn = BayesianNetwork("sprinkler")
    bn.add_cpd(TabularCPD.prior("cloudy", [0.5, 0.5]))
    bn.add_cpd(
        TabularCPD("sprinkler", 2, np.array([[0.5, 0.5], [0.9, 0.1]]), ["cloudy"])
    )
    bn.add_cpd(TabularCPD("rain", 2, np.array([[0.8, 0.2], [0.2, 0.8]]), ["cloudy"]))
    bn.add_cpd(
        TabularCPD(
            "wet",
            2,
            np.array(
                [
                    [[1.0, 0.0], [0.1, 0.9]],
                    [[0.1, 0.9], [0.01, 0.99]],
                ]
            ),
            ["sprinkler", "rain"],
        )
    )
    return bn
