"""Tests for the variable-elimination engine."""

import numpy as np
import pytest

from repro.bayesian import variable_elimination
from repro.bayesian.elimination import posterior_marginals

from tests.bayesian.util import random_bn, sprinkler_bn


class TestBasic:
    def test_root_marginal(self):
        bn = sprinkler_bn()
        result = variable_elimination(bn, ["cloudy"])
        assert result.values == pytest.approx([0.5, 0.5])

    def test_leaf_marginal_matches_brute_force(self):
        bn = sprinkler_bn()
        result = variable_elimination(bn, ["wet"])
        expected = bn.brute_force_marginal("wet")
        assert np.allclose(result.values, expected)

    def test_joint_target(self):
        bn = sprinkler_bn()
        result = variable_elimination(bn, ["sprinkler", "rain"])
        expected = bn.joint_factor().marginal_onto(["sprinkler", "rain"]).normalize()
        assert result.allclose(expected)
        assert result.variables == ("sprinkler", "rain")

    def test_target_order_respected(self):
        bn = sprinkler_bn()
        ab = variable_elimination(bn, ["sprinkler", "rain"])
        ba = variable_elimination(bn, ["rain", "sprinkler"])
        assert ab.permute(("rain", "sprinkler")).allclose(ba)


class TestEvidence:
    def test_posterior(self):
        bn = sprinkler_bn()
        result = variable_elimination(bn, ["rain"], {"wet": 1})
        expected = bn.brute_force_marginal("rain", {"wet": 1})
        assert np.allclose(result.values, expected)

    def test_evidence_on_root(self):
        bn = sprinkler_bn()
        result = variable_elimination(bn, ["wet"], {"cloudy": 1})
        expected = bn.brute_force_marginal("wet", {"cloudy": 1})
        assert np.allclose(result.values, expected)


class TestValidation:
    def test_no_targets(self):
        with pytest.raises(ValueError):
            variable_elimination(sprinkler_bn(), [])

    def test_observed_target(self):
        with pytest.raises(ValueError, match="observed"):
            variable_elimination(sprinkler_bn(), ["wet"], {"wet": 1})

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            variable_elimination(sprinkler_bn(), ["nope"])

    def test_explicit_order_must_cover(self):
        bn = sprinkler_bn()
        with pytest.raises(ValueError, match="cover"):
            variable_elimination(bn, ["wet"], elimination_order=["cloudy"])

    def test_explicit_order_works(self):
        bn = sprinkler_bn()
        result = variable_elimination(
            bn, ["wet"], elimination_order=["rain", "sprinkler", "cloudy"]
        )
        expected = bn.brute_force_marginal("wet")
        assert np.allclose(result.values, expected)


class TestRandomCrossChecks:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        bn = random_bn(7, seed=seed, max_parents=3)
        for node in bn.nodes:
            result = variable_elimination(bn, [node])
            expected = bn.brute_force_marginal(node)
            assert np.allclose(result.values, expected, atol=1e-10)

    def test_posterior_marginals_helper(self):
        bn = sprinkler_bn()
        marginals = posterior_marginals(bn, evidence={"wet": 1})
        assert set(marginals) == {"cloudy", "sprinkler", "rain"}
        expected = bn.brute_force_marginal("rain", {"wet": 1})
        assert np.allclose(marginals["rain"].values, expected)
