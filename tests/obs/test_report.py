"""Tests for the versioned JSON report and its validators."""

import copy
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    build_report,
    check_span_containment,
    render_report,
    validate_report,
)
from repro.obs.trace import Tracer


def _sample_report():
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry(enabled=True)
    with tracer.span("run", circuit="c17"):
        with tracer.span("compile"):
            pass
        with tracer.span("propagate"):
            metrics.counter("engine.messages").inc(30)
    metrics.gauge("jt.max_clique_states").set_max(64)
    metrics.histogram("compile.clique_states").observe(16.0)
    return build_report(tracer=tracer, metrics=metrics, meta={"circuit": "c17"})


class TestBuildAndValidate:
    def test_build_shape(self):
        report = _sample_report()
        assert report["schema"] == SCHEMA
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["meta"] == {"circuit": "c17"}
        assert report["spans"][0]["name"] == "run"
        assert report["metrics"]["counters"]["engine.messages"] == 30

    def test_validate_returns_report(self):
        report = _sample_report()
        assert validate_report(report) is report

    def test_json_round_trip(self):
        report = _sample_report()
        revived = json.loads(json.dumps(report))
        assert validate_report(revived) == report
        check_span_containment(revived)

    def test_containment_holds(self):
        check_span_containment(_sample_report())

    def test_empty_run_is_valid(self):
        report = build_report(
            tracer=Tracer(enabled=True), metrics=MetricsRegistry(enabled=True)
        )
        validate_report(report)
        assert report["spans"] == []


class TestValidationFailures:
    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.update(schema="other/v9"), "schema is"),
            (lambda r: r.update(schema_version=99), "schema_version"),
            (lambda r: r.update(meta=None), "meta"),
            (lambda r: r.update(spans={}), "spans"),
            (lambda r: r["spans"][0].pop("duration"), "missing 'duration'"),
            (lambda r: r["spans"][0].update(duration=-1.0), "negative"),
            (
                lambda r: r["spans"][0]["children"][0].update(name=7),
                r"children\[0\].name",
            ),
            (lambda r: r["metrics"].pop("gauges"), "metrics.gauges"),
            (
                lambda r: r["metrics"]["counters"].update({"bad": "x"}),
                "not numeric",
            ),
            (
                lambda r: r["metrics"]["histograms"].update({"h": {"count": 1}}),
                "wrong keys",
            ),
        ],
    )
    def test_drift_raises(self, mutate, message):
        report = _sample_report()
        mutate(report)
        with pytest.raises(ValueError, match=message):
            validate_report(report)

    def test_containment_violation_raises(self):
        report = _sample_report()
        bad = copy.deepcopy(report)
        child = bad["spans"][0]["children"][0]
        child["start"] = bad["spans"][0]["start"] - 1.0
        with pytest.raises(ValueError, match="starts before"):
            check_span_containment(bad)
        bad = copy.deepcopy(report)
        child = bad["spans"][0]["children"][0]
        child["duration"] = bad["spans"][0]["duration"] + 1.0
        with pytest.raises(ValueError, match="ends after"):
            check_span_containment(bad)


class TestRendering:
    def test_render_mentions_everything(self):
        text = render_report(_sample_report())
        assert "circuit=c17" in text
        assert "run" in text and "compile" in text and "propagate" in text
        assert "engine.messages" in text
        assert "jt.max_clique_states" in text
        assert "compile.clique_states" in text
        assert "ms" in text

    def test_render_empty_report(self):
        report = build_report(
            tracer=Tracer(enabled=True), metrics=MetricsRegistry(enabled=True)
        )
        assert render_report(report).strip() == ""
