"""Tests for the tracing-span half of the observability layer."""

import threading
import time

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)


@pytest.fixture
def tracer():
    """Fresh enabled tracer installed as the process global, restored after."""
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


class TestSpanNesting:
    def test_single_root(self, tracer):
        with tracer.span("root", circuit="c17") as span:
            pass
        assert span.name == "root"
        assert span.attributes == {"circuit": "c17"}
        assert tracer.roots == [span]

    def test_children_nest_under_innermost(self, tracer):
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["mid", "sibling"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_sequential_roots(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_duration_measured(self, tracer):
        with tracer.span("sleepy") as span:
            time.sleep(0.01)
        assert span.duration >= 0.005
        assert span.end >= span.start

    def test_current_span(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("open") as span:
            assert tracer.current_span() is span
        assert tracer.current_span() is None

    def test_annotate_after_open(self, tracer):
        with tracer.span("work") as span:
            span.annotate(fill_ins=3)
        assert span.attributes["fill_ins"] == 3

    def test_find_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert tracer.find("missing") == []

    def test_reset_drops_roots(self, tracer):
        with tracer.span("old"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestExceptionSafety:
    def test_span_closes_and_annotates_on_raise(self, tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("fallible"):
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.attributes["error"] == "RuntimeError"
        assert span.end > 0

    def test_stack_unwinds_after_raise(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError()
        # A new span after the raise is a fresh root, not a stale child.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "after"]


class TestDisabledPath:
    def test_disabled_tracer_retains_nothing(self, tracer):
        tracer.disable()
        with tracer.span("hot", attr=1):
            pass
        assert tracer.roots == []
        assert tracer.current_span() is None

    def test_disabled_span_still_times(self, tracer):
        tracer.disable()
        with tracer.span("timed") as span:
            time.sleep(0.01)
        assert span.duration >= 0.005
        assert not isinstance(span, Span)

    def test_disabled_span_annotate_is_noop(self, tracer):
        tracer.disable()
        with tracer.span("hot") as span:
            span.annotate(ignored=True)  # must not raise

    def test_global_default_is_disabled_and_usable(self):
        # The real process-global tracer (not the fixture's) must be a
        # working no-op out of the box -- this is the hot-path contract.
        previous = set_tracer(Tracer(enabled=False))
        set_tracer(previous)
        with get_tracer().span("ambient") as span:
            pass
        assert span.duration >= 0.0


class TestThreading:
    def test_threads_get_independent_stacks(self, tracer):
        seen = {}

        def worker():
            with tracer.span("worker-root") as span:
                seen["current"] = tracer.current_span()
                seen["span"] = span

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span never saw main's stack: it became a root.
        names = [s.name for s in tracer.roots]
        assert "worker-root" in names and "main-root" in names
        assert seen["current"] is seen["span"]

    def test_explicit_cross_thread_parenting(self, tracer):
        with tracer.span("level") as level:

            def worker():
                with tracer.span("segment", parent=level):
                    pass

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        (root,) = tracer.roots
        assert sorted(c.name for c in root.children) == ["segment"] * 4


class TestGlobalSwitches:
    def test_enable_disable_round_trip(self, tracer):
        previous = set_tracer(Tracer(enabled=False))
        try:
            enable_tracing()
            with get_tracer().span("on"):
                pass
            assert len(get_tracer().roots) == 1
            disable_tracing()
            with get_tracer().span("off"):
                pass
            assert len(get_tracer().roots) == 1  # kept, not extended
            enable_tracing(reset=True)
            assert get_tracer().roots == []
        finally:
            set_tracer(previous)

    def test_to_dict_shape(self, tracer):
        with tracer.span("parent", circuit="c17"):
            with tracer.span("child"):
                pass
        d = tracer.roots[0].to_dict()
        assert set(d) == {"name", "start", "duration", "attributes", "children"}
        assert d["attributes"] == {"circuit": "c17"}
        assert d["children"][0]["name"] == "child"
