"""Tests for counters, gauges and histograms."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_metrics(fresh)
    try:
        yield fresh
    finally:
        set_metrics(previous)


class TestCounter:
    def test_inc(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_value() == 5

    def test_zero_inc_allowed(self):
        c = Counter("n")
        c.inc(0)
        assert c.value == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="Gauge"):
            Counter("n").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(7.0)
        g.set(3.0)
        assert g.value == 3.0

    def test_set_max_keeps_peak(self):
        g = Gauge("g")
        g.set_max(5.0)
        g.set_max(2.0)
        g.set_max(9.0)
        assert g.value == 9.0

    def test_add_accumulates(self):
        g = Gauge("g")
        g.add(2.5)
        g.add(1.5)
        assert g.value == 4.0


class TestHistogram:
    def test_running_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.to_value()
        assert stats == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "p50": 2.0, "p90": 3.0, "p99": 3.0,
        }

    def test_empty_export(self):
        assert Histogram("h").to_value() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_percentiles_exact_below_reservoir(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100, well under the reservoir cap
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        stats = h.to_value()
        assert (stats["p50"], stats["p90"], stats["p99"]) == (50.0, 90.0, 99.0)

    def test_percentiles_bounded_past_reservoir(self):
        h = Histogram("h")
        for v in range(4 * Histogram.RESERVOIR_SIZE):
            h.observe(float(v))
        # Reservoir-sampled estimates stay inside the observed range
        # and ordered; exactness is not promised past the cap.
        stats = h.to_value()
        assert len(h._samples) == Histogram.RESERVOIR_SIZE
        assert stats["min"] <= stats["p50"] <= stats["p90"] <= stats["p99"] <= stats["max"]

    def test_percentiles_deterministic(self):
        a, b = Histogram("a"), Histogram("b")
        for v in range(3 * Histogram.RESERVOIR_SIZE):
            a.observe(float(v))
            b.observe(float(v))
        assert a.to_value() == b.to_value()


class TestRegistry:
    def test_get_or_create_is_stable(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_disabled_returns_null(self, registry):
        registry.disable()
        null = registry.counter("a")
        assert null is registry.gauge("b")
        assert null is registry.histogram("c")
        # Every mutator is a no-op; nothing is created.
        null.inc()
        null.set(1.0)
        null.set_max(2.0)
        null.add(3.0)
        null.observe(4.0)
        registry.enable()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_snapshot_sorted_and_json_ready(self, registry):
        registry.counter("z.last").inc(1)
        registry.counter("a.first").inc(2)
        registry.gauge("mid").set(3.5)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["gauges"] == {"mid": 3.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_drops_instruments(self, registry):
        registry.counter("n").inc(9)
        registry.reset()
        assert registry.counter("n").value == 0

    def test_threaded_counter_aggregation(self, registry):
        counter = registry.counter("shared")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGlobalSwitches:
    def test_enable_disable_round_trip(self):
        previous = set_metrics(MetricsRegistry(enabled=False))
        try:
            assert get_metrics().counter("x").name == ""  # null instrument
            enable_metrics()
            get_metrics().counter("x").inc(2)
            disable_metrics()
            get_metrics().counter("x").inc(5)  # dropped: registry off
            enable_metrics(reset=False)
            assert get_metrics().counter("x").value == 2
            enable_metrics(reset=True)
            assert get_metrics().counter("x").value == 0
        finally:
            set_metrics(previous)
