"""End-to-end observability: instrumented compile/propagate pipelines.

These tests exercise the real estimators with the global tracer and
metrics registry enabled, then assert the structural facts the
``repro stats`` CLI and CI schema check rely on: compile-phase spans
exist with nonzero durations, engine counters are published and sum
consistently, worker-thread aggregation matches serial runs, and the
segmentation gauges actually show segmentation shrinking cliques.
"""

import numpy as np
import pytest

from repro import obs
from repro.circuits import examples, generate
from repro.core import (
    IndependentInputs,
    SegmentedEstimator,
    SwitchingActivityEstimator,
)


@pytest.fixture
def enabled_obs():
    """Enable global tracer+metrics with fresh state; always disable after."""
    obs.enable(reset=True)
    try:
        yield
    finally:
        obs.disable()
        obs.reset()


def _counters():
    return obs.get_metrics().snapshot()["counters"]


class TestInstrumentedPipeline:
    def test_compile_spans_and_engine_counters(self, enabled_obs):
        estimator = SwitchingActivityEstimator(examples.c17())
        estimator.compile()
        estimator.estimate()

        tracer = obs.get_tracer()
        for name in (
            "compile.moralize",
            "compile.triangulate",
            "compile.cliques",
            "compile.schedule",
        ):
            spans = tracer.find(name)
            assert spans, f"missing span {name}"
            assert all(s.duration > 0 for s in spans)

        counters = _counters()
        assert counters["engine.messages"] > 0
        assert counters["engine.messages"] == (
            counters["engine.messages_collect"]
            + counters["engine.messages_distribute"]
        )
        assert counters["engine.propagations"] >= 1
        gauges = obs.get_metrics().snapshot()["gauges"]
        assert gauges["jt.max_clique_states"] > 0
        assert gauges["jt.total_states"] >= gauges["jt.max_clique_states"]
        assert gauges["engine.factor_bytes.peak"] > 0

    def test_repropagation_skips_clean_cliques(self, enabled_obs):
        estimator = SwitchingActivityEstimator(examples.c17())
        estimator.compile()
        estimator.estimate()
        estimator.update_inputs(IndependentInputs(0.3))
        estimator.estimate()
        counters = _counters()
        assert counters["engine.cliques_skipped"] > 0
        # Every clique is either skipped or repropagated on each pass.
        live = estimator.propagation_counters()
        assert counters["engine.cliques_repropagated"] == live.cliques_repropagated
        assert counters["engine.cliques_skipped"] == live.cliques_skipped

    def test_results_unchanged_by_instrumentation(self):
        baseline = SwitchingActivityEstimator(examples.c17()).estimate()
        obs.enable(reset=True)
        try:
            traced = SwitchingActivityEstimator(examples.c17()).estimate()
        finally:
            obs.disable()
            obs.reset()
        for line, value in baseline.activities.items():
            assert np.isclose(traced.activities[line], value)

    def test_disabled_obs_records_nothing(self):
        obs.disable()
        obs.reset()
        estimator = SwitchingActivityEstimator(examples.c17())
        result = estimator.estimate()
        assert result.mean_activity() > 0
        assert obs.get_tracer().roots == []
        assert obs.get_metrics().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        # The always-on engine counters still work without the registry.
        assert estimator.propagation_counters().messages > 0


class TestSegmentedAggregation:
    def test_parallel_counters_match_serial(self, enabled_obs):
        circuit = generate.random_layered_circuit(8, 40, seed=7)

        serial = SegmentedEstimator(circuit, max_gates_per_segment=10)
        serial.compile()
        serial.estimate()
        serial_live = serial.propagation_counters().as_dict()
        serial_published = dict(_counters())

        obs.reset()
        parallel = SegmentedEstimator(
            circuit, max_gates_per_segment=10, parallelism=2
        )
        parallel.compile()
        parallel.estimate()
        parallel_live = parallel.propagation_counters().as_dict()
        parallel_published = dict(_counters())

        assert parallel.num_segments == serial.num_segments > 1
        assert parallel_live == serial_live
        # Worker threads publish into the shared registry without losing
        # increments: the engine.* counter families agree exactly.
        engine = lambda d: {k: v for k, v in d.items() if k.startswith("engine.")}
        assert engine(parallel_published) == engine(serial_published)

    def test_parallel_level_spans_parent_segment_spans(self, enabled_obs):
        circuit = generate.random_layered_circuit(8, 40, seed=7)
        estimator = SegmentedEstimator(
            circuit, max_gates_per_segment=10, parallelism=2
        )
        estimator.compile()
        estimator.estimate()
        tracer = obs.get_tracer()
        levels = tracer.find("segmented.propagate.level")
        assert levels
        segment_spans = [
            child for level in levels for child in level.children
        ]
        assert segment_spans
        assert all(s.name == "segment.propagate" for s in segment_spans)


class TestSegmentationShrinksCliques:
    def test_max_clique_gauge_drops_under_segmentation(self, enabled_obs):
        # Wide reconvergent circuit: one monolithic BN needs big cliques.
        circuit = generate.random_layered_circuit(12, 80, seed=3, reach=0.2)

        whole = SwitchingActivityEstimator(
            circuit, max_clique_states=4 ** 12
        )
        whole.compile()
        monolithic_max = obs.get_metrics().snapshot()["gauges"][
            "jt.max_clique_states"
        ]

        obs.reset()
        segmented = SegmentedEstimator(circuit, max_gates_per_segment=8)
        segmented.compile()
        gauges = obs.get_metrics().snapshot()["gauges"]
        segmented_max = gauges["jt.max_clique_states"]

        assert segmented.num_segments > 1
        assert gauges["segmented.segments"] == segmented.num_segments
        assert 0 < segmented_max < monolithic_max
