"""The strict validation pass: circuits, mutated circuits, input models."""

import numpy as np
import pytest

from repro.circuits.examples import c17
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate
from repro.core.backend import compile_model
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.segmentation import FixedMarginalInputs
from repro.core.validate import validate, validate_circuit, validate_input_model
from repro.errors import (
    CombinationalCycleError,
    DuplicateDefinitionError,
    InputModelError,
    UndefinedLineError,
    ValidationError,
)


class TestConstructionRejects:
    """Circuit.__init__ runs the declaration-level checks."""

    def test_duplicate_inputs(self):
        with pytest.raises(DuplicateDefinitionError, match="declared twice"):
            Circuit("bad", ["a", "a"], [Gate("y", GateType.NOT, ["a"])])

    def test_line_driven_twice(self):
        with pytest.raises(DuplicateDefinitionError, match="driven twice"):
            Circuit(
                "bad",
                ["a"],
                [Gate("y", GateType.NOT, ["a"]), Gate("y", GateType.BUF, ["a"])],
            )

    def test_input_driven_by_gate(self):
        with pytest.raises(DuplicateDefinitionError, match="driven by a gate"):
            Circuit("bad", ["a", "b"], [Gate("b", GateType.NOT, ["a"])])

    def test_undefined_operand(self):
        with pytest.raises(UndefinedLineError, match="undefined line"):
            Circuit("bad", ["a"], [Gate("y", GateType.AND, ["a", "ghost"])])

    def test_cycle(self):
        with pytest.raises(CombinationalCycleError, match="combinational cycle"):
            Circuit(
                "bad",
                ["a"],
                [Gate("y", GateType.AND, ["a", "z"]), Gate("z", GateType.NOT, ["y"])],
            )


class TestValidateCircuit:
    def test_well_formed_passes(self):
        validate_circuit(c17())

    def test_mutated_circuit_caught(self):
        """Post-construction mutation is caught by the facade re-check."""
        circuit = c17()
        circuit.gates["10"] = Gate("10", GateType.NAND, ["1", "ghost"])
        with pytest.raises(UndefinedLineError, match="ghost"):
            validate_circuit(circuit)

    def test_mutated_cycle_caught(self):
        # Rewire two gates to read each other -- a cycle the cached
        # topological order predates.
        circuit = c17()
        first, second = list(circuit.gates)[:2]
        circuit.gates[first] = Gate(first, GateType.NAND, ["1", second])
        circuit.gates[second] = Gate(second, GateType.NAND, ["1", first])
        with pytest.raises(CombinationalCycleError):
            validate_circuit(circuit)

    def test_facade_runs_validation(self):
        circuit = c17()
        circuit.gates["10"] = Gate("10", GateType.NAND, ["1", "ghost"])
        with pytest.raises(ValidationError):
            compile_model(circuit, backend="junction-tree")


class TestValidateInputModel:
    def test_independent_passes(self):
        validate(c17(), IndependentInputs(0.3))

    def test_non_model_rejected(self):
        with pytest.raises(InputModelError, match="must be an InputModel"):
            validate_input_model(c17(), {"1": 0.5})

    def test_missing_input_rejected(self):
        circuit = c17()
        partial = FixedMarginalInputs(
            {name: np.full(4, 0.25) for name in circuit.inputs[:-1]}
        )
        with pytest.raises(InputModelError, match="no statistics"):
            validate_input_model(circuit, partial)

    def test_unnormalized_marginal_rejected(self):
        circuit = c17()

        class Bad(InputModel):
            def marginal_distribution(self, name):
                return np.array([0.5, 0.5, 0.5, 0.5])

            def input_cpds(self, input_names):
                return []

            def sample_pairs(self, input_names, n_pairs, rng):
                raise NotImplementedError

        with pytest.raises(InputModelError, match="sums to"):
            validate_input_model(circuit, Bad())

    def test_non_finite_marginal_rejected(self):
        circuit = c17()

        class Bad(InputModel):
            def marginal_distribution(self, name):
                return np.array([np.nan, 0.5, 0.25, 0.25])

            def input_cpds(self, input_names):
                return []

            def sample_pairs(self, input_names, n_pairs, rng):
                raise NotImplementedError

        with pytest.raises(InputModelError, match="non-finite"):
            validate_input_model(circuit, Bad())

    def test_missing_cpd_rejected(self):
        circuit = c17()
        quarter = np.full(4, 0.25)

        class Bad(FixedMarginalInputs):
            def input_cpds(self, input_names):
                return super().input_cpds(list(input_names)[:-1])

        model = Bad({name: quarter for name in circuit.inputs})
        with pytest.raises(InputModelError, match="no CPD"):
            validate_input_model(circuit, model)

    def test_facade_rejects_bad_model(self):
        with pytest.raises(InputModelError):
            compile_model(c17(), {"not": "a model"}, backend="junction-tree")
