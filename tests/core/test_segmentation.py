"""Tests for multi-BN segmentation."""

import numpy as np
import pytest

from repro.circuits import examples, generate
from repro.core import (
    IndependentInputs,
    SegmentedEstimator,
    SwitchingActivityEstimator,
)
from repro.core.segmentation import FixedMarginalInputs
from repro.core.states import N_STATES


class TestFixedMarginalInputs:
    def test_round_trip(self):
        dist = np.array([0.1, 0.2, 0.3, 0.4])
        model = FixedMarginalInputs({"a": dist})
        assert np.allclose(model.marginal_distribution("a"), dist)

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            FixedMarginalInputs({"a": np.array([0.5, 0.5])})
        with pytest.raises(ValueError, match="sum"):
            FixedMarginalInputs({"a": np.array([0.5, 0.5, 0.5, 0.5])})
        model = FixedMarginalInputs({})
        with pytest.raises(KeyError):
            model.marginal_distribution("ghost")

    def test_sampling_matches(self):
        dist = np.array([0.7, 0.1, 0.1, 0.1])
        model = FixedMarginalInputs({"a": dist})
        rng = np.random.default_rng(0)
        states = model.sample_states(["a"], 50_000, rng)
        hist = np.bincount(states[:, 0], minlength=N_STATES) / 50_000
        assert np.allclose(hist, dist, atol=0.01)


class TestSegmentation:
    def test_single_segment_is_exact(self):
        """A circuit fitting one segment must match the single-BN path."""
        circuit = examples.c17()
        single = SwitchingActivityEstimator(circuit).estimate()
        seg = SegmentedEstimator(circuit, max_gates_per_segment=100)
        result = seg.estimate()
        assert seg.num_segments == 1
        assert result.method == "single-bn"
        for line in circuit.lines:
            assert np.allclose(
                result.distributions[line], single.distributions[line], atol=1e-10
            )

    def test_multi_segment_close_to_exact(self):
        circuit = generate.random_layered_circuit(8, 40, seed=7)
        single = SwitchingActivityEstimator(circuit, max_clique_states=None).estimate()
        seg = SegmentedEstimator(circuit, max_gates_per_segment=10, lookback=3)
        result = seg.estimate()
        assert seg.num_segments > 1
        assert result.method == "segmented"
        errors = [
            abs(result.switching(l) - single.switching(l)) for l in circuit.lines
        ]
        assert np.mean(errors) < 0.03

    def test_lookback_reduces_error(self):
        circuit = generate.random_layered_circuit(10, 60, seed=2)
        single = SwitchingActivityEstimator(circuit, max_clique_states=None).estimate()

        def mean_error(lookback):
            seg = SegmentedEstimator(
                circuit, max_gates_per_segment=12, lookback=lookback
            )
            result = seg.estimate()
            return np.mean(
                [abs(result.switching(l) - single.switching(l)) for l in circuit.lines]
            )

        assert mean_error(3) <= mean_error(0) + 1e-12

    def test_budget_splitting(self):
        """A tiny clique budget (with the enumeration fallback disabled)
        forces recursive segment splitting but the estimate completes."""
        circuit = generate.random_layered_circuit(8, 40, seed=3)
        seg = SegmentedEstimator(
            circuit,
            max_gates_per_segment=40,
            max_clique_states=4 ** 4,
            lookback=2,
            enum_input_states=0,
        )
        result = seg.estimate()
        assert seg.num_segments > 1
        assert set(result.distributions) == set(circuit.lines)

    def test_enumeration_fallback_absorbs_high_treewidth(self):
        """With the fallback enabled, the same circuit stays a single
        exact enumeration segment despite the tiny clique budget."""
        circuit = generate.random_layered_circuit(8, 40, seed=3)
        seg = SegmentedEstimator(
            circuit, max_gates_per_segment=40, max_clique_states=4 ** 5, lookback=2
        )
        result = seg.estimate()
        assert seg.num_segments == 1
        single = SwitchingActivityEstimator(circuit, max_clique_states=None).estimate()
        for line in circuit.lines:
            assert np.allclose(
                result.distributions[line], single.distributions[line], atol=1e-10
            )

    def test_enum_backend_exact_on_narrow_circuit(self):
        """backend='enum' with a wide-enough input budget is exact."""
        circuit = generate.random_layered_circuit(7, 30, seed=6)
        seg = SegmentedEstimator(circuit, backend="enum", enum_input_states=4 ** 7)
        result = seg.estimate()
        single = SwitchingActivityEstimator(circuit, max_clique_states=None).estimate()
        if seg.num_segments == 1:
            for line in circuit.lines:
                assert np.allclose(
                    result.distributions[line], single.distributions[line], atol=1e-10
                )
        else:  # partition cut the circuit: still close
            errors = [
                abs(result.switching(l) - single.switching(l)) for l in circuit.lines
            ]
            assert np.mean(errors) < 0.03

    def test_backend_validation(self):
        circuit = examples.c17()
        with pytest.raises(ValueError, match="backend"):
            SegmentedEstimator(circuit, backend="magic")
        with pytest.raises(ValueError, match="enum_input_states"):
            SegmentedEstimator(circuit, backend="enum", enum_input_states=0)

    def test_input_model_respected(self):
        circuit = examples.c17()
        model = IndependentInputs(0.9)
        seg = SegmentedEstimator(circuit, input_model=model, max_gates_per_segment=2)
        result = seg.estimate()
        single = SwitchingActivityEstimator(circuit, model).estimate()
        # Multi-segment c17 loses some correlation but stays close.
        for line in circuit.lines:
            assert abs(result.switching(line) - single.switching(line)) < 0.05

    def test_all_lines_reported(self):
        circuit = generate.random_layered_circuit(6, 25, seed=4)
        result = SegmentedEstimator(circuit, max_gates_per_segment=7).estimate()
        assert set(result.distributions) == set(circuit.lines)
        for dist in result.distributions.values():
            assert dist.sum() == pytest.approx(1.0, abs=1e-9)

    def test_segment_stats(self):
        circuit = generate.random_layered_circuit(6, 25, seed=4)
        seg = SegmentedEstimator(circuit, max_gates_per_segment=7)
        stats = seg.segment_stats()
        assert len(stats) == seg.num_segments
        assert all("max_clique_states" in s and "owned_gates" in s for s in stats)
        assert sum(s["owned_gates"] for s in stats) == circuit.num_gates

    def test_validation(self):
        circuit = examples.c17()
        with pytest.raises(ValueError):
            SegmentedEstimator(circuit, max_gates_per_segment=0)
        with pytest.raises(ValueError):
            SegmentedEstimator(circuit, lookback=-1)

    def test_repeated_estimates_are_stable(self):
        circuit = generate.random_layered_circuit(6, 25, seed=5)
        seg = SegmentedEstimator(circuit, max_gates_per_segment=8)
        first = seg.estimate()
        second = seg.estimate()
        for line in circuit.lines:
            assert np.allclose(
                first.distributions[line], second.distributions[line], atol=1e-12
            )
