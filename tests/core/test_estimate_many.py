"""End-to-end tests for batched multi-scenario estimation.

``estimate_many`` / ``query_many`` promise that sweeping K input-
statistics scenarios through one compiled model returns, for every
exact backend, results *bitwise-identical* to compiling fresh and
querying each scenario independently (a full propagation is a pure
function of the installed potentials).  These tests pin that promise
for the junction-tree, segmented (multi-segment, both boundary
providers), and enumeration backends, plus the facade wiring, batch
chunking, and single-query-path isolation.
"""

import numpy as np
import pytest

from repro.circuits.examples import c17
from repro.core.backend import compile_model
from repro.core.backend.facade import estimate_many
from repro.core.inputs import IndependentInputs, TemporalInputs

#: (backend, compile options) -> one compiled model per test.  The
#: segmented entry forces multiple segments on c17 (6 gates) so the
#: boundary machinery -- including enumeration fallbacks -- is active.
BACKENDS = [
    ("junction-tree", {}),
    ("segmented", {"max_gates_per_segment": 2}),
    ("enumeration", {}),
]


def _models(k: int, salt: float = 0.0):
    return [
        IndependentInputs(0.07 + 0.86 * ((i * 0.618 + salt) % 1.0))
        for i in range(k)
    ]


def _fresh_oracle(circuit, backend, options, models):
    """Independent fresh-compile query per scenario."""
    results = []
    for model in models:
        compiled = compile_model(circuit, model, backend=backend, **options)
        results.append(compiled.query(model))
    return results


def _assert_bitwise(got, expected, context=""):
    assert len(got) == len(expected)
    for k, (g, e) in enumerate(zip(got, expected)):
        assert set(g.distributions) == set(e.distributions)
        for line, dist in e.distributions.items():
            assert np.array_equal(g.distributions[line], dist), (
                f"{context} scenario {k}, line {line}"
            )


class TestBatchedVsFreshOracle:
    @pytest.mark.parametrize("backend,options", BACKENDS)
    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_query_many_matches_fresh_compiles_bitwise(
        self, backend, options, k
    ):
        circuit = c17()
        models = _models(k)
        compiled = compile_model(circuit, models[0], backend=backend, **options)
        got = compiled.query_many(models)
        expected = _fresh_oracle(circuit, backend, options, models)
        _assert_bitwise(got, expected, context=backend)

    @pytest.mark.parametrize("backend,options", BACKENDS[:2])
    def test_lockstep_sweeps_stay_bitwise(self, backend, options):
        """Sweep 2 on a warm batch engine (partial repropagation) must
        track K persistent single estimators updated in lockstep."""
        circuit = c17()
        k = 5
        sweep_a, sweep_b = _models(k), _models(k, salt=0.41)
        compiled = compile_model(circuit, sweep_a[0], backend=backend, **options)
        compiled.query_many(sweep_a)
        got_b = compiled.query_many(sweep_b)

        singles = [
            compile_model(circuit, sweep_a[j], backend=backend, **options)
            for j in range(k)
        ]
        for j in range(k):
            singles[j].query(sweep_a[j])
        expected_b = [singles[j].query(sweep_b[j]) for j in range(k)]
        _assert_bitwise(got_b, expected_b, context=f"{backend} sweep 2")

    def test_correlated_and_temporal_models_batch(self):
        """Scenario batches are not limited to independent inputs."""
        circuit = c17()
        models = [
            TemporalInputs(p_one=0.6, activity=0.3),
            TemporalInputs(p_one=0.4, activity=0.2),
            IndependentInputs(0.5),
        ]
        compiled = compile_model(circuit, models[0], backend="junction-tree")
        got = compiled.query_many(models)
        expected = _fresh_oracle(circuit, "junction-tree", {}, models)
        _assert_bitwise(got, expected)


class TestSingleQueryPathIsolation:
    def test_estimate_many_does_not_perturb_estimate(self):
        """Interleaving a batch sweep must not change what the plain
        single-query path computes afterwards."""
        circuit = c17()
        model = IndependentInputs(0.3)
        # Identical single-query histories; only the batch sweep differs.
        reference = compile_model(circuit, model, backend="junction-tree")
        reference.query(model)
        expected = reference.query(IndependentInputs(0.7))

        compiled = compile_model(circuit, model, backend="junction-tree")
        compiled.query(model)
        compiled.query_many(_models(6))
        got = compiled.query(IndependentInputs(0.7))
        for line, dist in expected.distributions.items():
            assert np.array_equal(got.distributions[line], dist)

    def test_estimator_input_model_is_untouched(self):
        circuit = c17()
        model = IndependentInputs(0.3)
        compiled = compile_model(circuit, model, backend="junction-tree")
        compiled.query_many(_models(4))
        assert compiled.estimator.input_model is model


class TestChunkingAndEdges:
    @pytest.mark.parametrize("backend,options", BACKENDS)
    def test_empty_sweep_returns_empty_list(self, backend, options):
        compiled = compile_model(c17(), backend=backend, **options)
        assert compiled.query_many([]) == []

    def test_chunked_sweep_matches_unchunked(self):
        """batch_size bounds memory; chunk boundaries cross the warm
        engine's dirty paths, so agreement is numerical, not bitwise."""
        circuit = c17()
        models = _models(7)
        a = compile_model(circuit, models[0], backend="junction-tree")
        b = compile_model(circuit, models[0], backend="junction-tree")
        whole = a.query_many(models)
        chunked = b.query_many(models, batch_size=2)
        for g, e in zip(chunked, whole):
            for line, dist in e.distributions.items():
                assert np.allclose(g.distributions[line], dist, atol=1e-12)

    def test_amortized_timing_is_reported(self):
        compiled = compile_model(c17(), backend="junction-tree")
        results = compiled.query_many(_models(3))
        assert all(r.propagate_seconds > 0 for r in results)
        assert all(r.method == "single-bn" for r in results)


class TestFacade:
    def test_estimate_many_compiles_once_and_orders_results(self, tmp_path):
        circuit = c17()
        models = _models(4)
        results = estimate_many(
            circuit, models, backend="junction-tree", cache=tmp_path
        )
        assert len(results) == 4
        assert all(r.cache_hit is False for r in results)
        expected = _fresh_oracle(circuit, "junction-tree", {}, models)
        _assert_bitwise(results, expected)

        again = estimate_many(
            circuit, models, backend="junction-tree", cache=tmp_path
        )
        assert all(r.cache_hit is True for r in again)
        _assert_bitwise(again, expected)

    def test_estimate_many_empty_list(self):
        assert estimate_many(c17(), []) == []

    def test_estimate_many_validates_models(self):
        # The validate pass probes each model's marginals; an out-of-
        # range probability surfaces as a ValueError (InputModelError
        # when the model itself tolerates it) before any compile work.
        with pytest.raises(ValueError):
            estimate_many(c17(), [IndependentInputs(1.5)])

    def test_estimate_many_is_importable_from_repro(self):
        import repro

        assert repro.estimate_many is estimate_many
