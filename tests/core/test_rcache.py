"""Result cache: canonical scenario digests, LRU semantics, facade reuse.

The digest contract: two scenario specs that induce the same per-input
CPDs must collide regardless of surface form (dict key order, float
spellings that decode to the same double, ``-0.0`` vs ``0.0``, the
order correlated groups were listed in), and any perturbed probability
must not.  The cache contract: a hit replays marginals bitwise-equal
to the propagation that filled it, insulated from mutation on either
side.
"""

import numpy as np
import pytest

from repro.bayesian.cpd import TabularCPD
from repro.circuits import suite
from repro.core.backend import estimate, estimate_many
from repro.core.inputs import CorrelatedGroupInputs, IndependentInputs
from repro.core.rcache import (
    ResultCache,
    _cpd_digest,
    input_cpd_signatures,
    scenario_digest,
)


@pytest.fixture(scope="module")
def c17():
    return suite.load_circuit("c17")


class TestScenarioDigest:
    def test_deterministic(self, c17):
        model = IndependentInputs(0.3)
        assert scenario_digest(c17, model) == scenario_digest(c17, model)

    def test_dict_key_order_is_canonical(self, c17):
        names = list(c17.inputs)
        forward = {name: 0.1 + 0.15 * i for i, name in enumerate(names)}
        backward = dict(reversed(list(forward.items())))
        assert list(forward) != list(backward)  # genuinely different order
        assert scenario_digest(c17, IndependentInputs(forward)) == \
            scenario_digest(c17, IndependentInputs(backward))

    def test_float_repr_aliases_collide(self, c17):
        # 0.1 + 0.2 and the literal 0.30000000000000004 are the same
        # double; 0.3 is a different double.
        alias_a = IndependentInputs(0.1 + 0.2)
        alias_b = IndependentInputs(0.30000000000000004)
        other = IndependentInputs(0.3)
        assert scenario_digest(c17, alias_a) == scenario_digest(c17, alias_b)
        assert scenario_digest(c17, alias_a) != scenario_digest(c17, other)

    def test_negative_zero_collides_with_zero(self):
        plus = TabularCPD.prior("a", np.array([0.5, 0.5, 0.0, 0.0]))
        minus = TabularCPD.prior("a", np.array([0.5, 0.5, -0.0, -0.0]))
        # Distinct bit patterns, equal numbers, identical propagation.
        assert _cpd_digest(plus) == _cpd_digest(minus)

    def test_correlated_group_listing_order_collides(self, c17):
        names = list(c17.inputs)
        g1, g2 = (names[0], names[1]), (names[2], names[3])
        listed = CorrelatedGroupInputs([g1, g2], rho=0.4)
        reversed_listing = CorrelatedGroupInputs([g2, g1], rho=0.4)
        assert scenario_digest(c17, listed) == \
            scenario_digest(c17, reversed_listing)

    def test_member_order_within_group_differs(self, c17):
        # (a, b) and (b, a) are different chain models: the copy edge
        # points the other way, so the induced CPDs differ.
        names = list(c17.inputs)
        chain = CorrelatedGroupInputs([(names[0], names[1])], rho=0.4)
        flipped = CorrelatedGroupInputs([(names[1], names[0])], rho=0.4)
        assert scenario_digest(c17, chain) != scenario_digest(c17, flipped)

    def test_perturbed_marginal_changes_digest(self, c17):
        base = IndependentInputs(0.3)
        nudged = IndependentInputs(0.3 + 1e-12)
        assert scenario_digest(c17, base) != scenario_digest(c17, nudged)

    def test_signatures_expose_parents(self, c17):
        names = list(c17.inputs)
        model = CorrelatedGroupInputs([(names[0], names[1])], rho=0.4)
        signatures = input_cpd_signatures(c17, model)
        assert signatures[names[1]][1] == (names[0],)
        assert signatures[names[0]][1] == ()


class TestResultCacheLRU:
    @staticmethod
    def _estimate(c17, p):
        return estimate(c17, IndependentInputs(p), backend="junction-tree",
                        cache=None)

    def test_round_trip_is_bitwise(self, c17):
        cache = ResultCache(max_entries=4)
        result = self._estimate(c17, 0.3)
        cache.put(("fp", "digest"), result)
        payload = cache.get(("fp", "digest"))
        assert payload is not None
        for line, dist in result.distributions.items():
            assert np.array_equal(payload["distributions"][line], dist)

    def test_copies_insulate_both_sides(self, c17):
        cache = ResultCache(max_entries=4)
        result = self._estimate(c17, 0.3)
        line = next(iter(result.distributions))
        expect = result.distributions[line].copy()
        cache.put(("fp", "digest"), result)
        result.distributions[line][:] = -1.0  # producer mutates after put
        first = cache.get(("fp", "digest"))
        first["distributions"][line][:] = -2.0  # consumer mutates a hit
        second = cache.get(("fp", "digest"))
        assert np.array_equal(second["distributions"][line], expect)

    def test_lru_evicts_least_recently_used(self, c17):
        cache = ResultCache(max_entries=2)
        result = self._estimate(c17, 0.3)
        cache.put(("fp", "a"), result)
        cache.put(("fp", "b"), result)
        assert cache.get(("fp", "a")) is not None  # refresh "a"
        cache.put(("fp", "c"), result)  # over capacity: "b" goes
        assert cache.get(("fp", "b")) is None
        assert cache.get(("fp", "a")) is not None
        assert cache.get(("fp", "c")) is not None
        assert cache.evictions == 1

    def test_stats_and_byte_accounting(self, c17):
        cache = ResultCache(max_entries=1)
        result = self._estimate(c17, 0.3)
        size = sum(arr.nbytes for arr in result.distributions.values())
        cache.put(("fp", "a"), result)
        assert cache.bytes == size
        cache.put(("fp", "b"), result)  # evicts "a", same size
        assert cache.bytes == size
        cache.get(("fp", "b"))
        cache.get(("fp", "missing"))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["hit_rate"] == 0.5

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestFacadeResultCache:
    def test_estimate_replays_bitwise(self, c17):
        cache = ResultCache()
        model = IndependentInputs(0.3)
        first = estimate(c17, model, backend="junction-tree", cache=None,
                         result_cache=cache)
        second = estimate(c17, IndependentInputs(0.3), backend="junction-tree",
                          cache=None, result_cache=cache)
        assert first.result_cache_hit is False
        assert second.result_cache_hit is True
        for line, dist in first.distributions.items():
            assert np.array_equal(second.distributions[line], dist)

    def test_no_cache_leaves_flag_unset(self, c17):
        result = estimate(c17, IndependentInputs(0.3),
                          backend="junction-tree", cache=None)
        assert result.result_cache_hit is None

    def test_options_change_the_fingerprint(self, c17):
        cache = ResultCache()
        model = IndependentInputs(0.3)
        estimate(c17, model, backend="junction-tree", cache=None,
                 result_cache=cache, kernel="dense")
        other = estimate(c17, model, backend="junction-tree", cache=None,
                         result_cache=cache, kernel="sparse")
        # Same scenario, different compile options: distinct entries.
        assert other.result_cache_hit is False
        assert cache.stats()["entries"] == 2

    def test_estimate_many_propagates_only_misses(self, c17):
        cache = ResultCache()
        sweep_a = [IndependentInputs(0.2), IndependentInputs(0.4)]
        first = estimate_many(c17, sweep_a, backend="junction-tree",
                              cache=None, result_cache=cache)
        assert [r.result_cache_hit for r in first] == [False, False]
        sweep_b = [IndependentInputs(0.4), IndependentInputs(0.6)]
        second = estimate_many(c17, sweep_b, backend="junction-tree",
                               cache=None, result_cache=cache)
        assert [r.result_cache_hit for r in second] == [True, False]
        # The replayed scenario is bitwise-equal to its original result.
        for line, dist in first[1].distributions.items():
            assert np.array_equal(second[0].distributions[line], dist)
        # And the fresh oracle agrees with every returned scenario.
        oracle = estimate_many(c17, sweep_b, backend="junction-tree",
                               cache=None)
        for got, expect in zip(second, oracle):
            for line, dist in expect.distributions.items():
                assert np.array_equal(got.distributions[line], dist)

    def test_true_spec_builds_private_cache(self, c17):
        # result_cache=True is valid but private to the call: no hits
        # across calls, no error either.
        result = estimate(c17, IndependentInputs(0.3),
                          backend="junction-tree", cache=None,
                          result_cache=True)
        assert result.result_cache_hit is False
