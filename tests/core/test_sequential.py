"""Tests for sequential-circuit fixpoint estimation."""

import numpy as np
import pytest

from repro.baselines.simulation import simulate_sequential_switching
from repro.circuits.bench import parse_bench
from repro.circuits.gates import GateType
from repro.circuits.generate import counter_next_state
from repro.circuits.netlist import Circuit, Gate
from repro.core import IndependentInputs, SequentialSwitchingEstimator


def shift_register(width=4):
    """nq0 = d (serial in); nq_i = q_{i-1}."""
    gates = [Gate("nq0", GateType.BUF, ("d",))] + [
        Gate(f"nq{i}", GateType.BUF, (f"q{i-1}",)) for i in range(1, width)
    ]
    circuit = Circuit(
        f"shift{width}", ["d"] + [f"q{i}" for i in range(width)], gates
    )
    state_map = {f"q{i}": f"nq{i}" for i in range(width)}
    return circuit, state_map


def toggle_cell():
    """nq = q XOR en: toggles at half the enable rate."""
    gates = [Gate("nq", GateType.XOR, ("q", "en"))]
    return Circuit("toggle", ["en", "q"], gates), {"q": "nq"}


class TestValidation:
    def test_state_must_be_input(self):
        circuit, _ = shift_register()
        with pytest.raises(ValueError, match="primary input"):
            SequentialSwitchingEstimator(circuit, {"nq0": "nq1"})

    def test_next_state_must_exist(self):
        circuit, _ = shift_register()
        with pytest.raises(ValueError, match="circuit line"):
            SequentialSwitchingEstimator(circuit, {"q0": "ghost"})

    def test_state_correlation_mode(self):
        circuit, smap = shift_register()
        with pytest.raises(ValueError, match="state_correlation"):
            SequentialSwitchingEstimator(circuit, smap, state_correlation="magic")


class TestFixpoint:
    def test_shift_register_exact(self):
        """Shift feedback simply relays the serial input's statistics."""
        circuit, state_map = shift_register(4)
        estimator = SequentialSwitchingEstimator(
            circuit, state_map, IndependentInputs(0.3)
        )
        result = estimator.estimate()
        assert result.converged
        # Every stage carries the serial input's activity 2*0.3*0.7.
        for i in range(4):
            assert result.switching(f"nq{i}") == pytest.approx(0.42, abs=1e-6)

    def test_shift_register_matches_simulation(self):
        circuit, state_map = shift_register(3)
        result = SequentialSwitchingEstimator(circuit, state_map).estimate()
        sim = simulate_sequential_switching(
            circuit, state_map, n_cycles=100_000, rng=np.random.default_rng(0)
        )
        for line in circuit.lines:
            assert result.switching(line) == pytest.approx(
                sim.switching(line), abs=0.02
            )

    def test_toggle_cell(self):
        """T flip-flop with random enable: q toggles at rate P(en)=0.5...
        the per-cycle model is exact here because nq depends on q only
        through the XOR pad."""
        circuit, state_map = toggle_cell()
        result = SequentialSwitchingEstimator(circuit, state_map).estimate()
        sim = simulate_sequential_switching(
            circuit, state_map, n_cycles=100_000, rng=np.random.default_rng(1)
        )
        assert result.switching("nq") == pytest.approx(sim.switching("nq"), abs=0.02)

    def test_counter_documented_approximation(self):
        """Carry-chained counters need cross-cycle correlation the
        single-cycle model cannot carry: nq0 and the overflow are
        near-exact, chained bits overestimate (documented limitation)."""
        circuit = counter_next_state(3)
        state_map = {f"q{i}": f"nq{i}" for i in range(3)}
        result = SequentialSwitchingEstimator(circuit, state_map).estimate()
        sim = simulate_sequential_switching(
            circuit, state_map, n_cycles=200_000, rng=np.random.default_rng(2)
        )
        assert result.switching("nq0") == pytest.approx(sim.switching("nq0"), abs=0.02)
        assert result.switching("ovf") == pytest.approx(sim.switching("ovf"), abs=0.02)
        # The known overestimate on the chained bit.
        assert result.switching("nq1") > sim.switching("nq1") + 0.1

    def test_independent_mode(self):
        circuit, state_map = shift_register(3)
        result = SequentialSwitchingEstimator(
            circuit, state_map, state_correlation="independent"
        ).estimate()
        assert result.converged
        assert result.switching("nq2") == pytest.approx(0.5, abs=1e-6)

    def test_iteration_budget(self):
        circuit, state_map = shift_register(3)
        estimator = SequentialSwitchingEstimator(circuit, state_map)
        result = estimator.estimate(max_iterations=1, tol=0)
        assert not result.converged
        assert result.iterations == 1

    def test_mean_activity_and_metadata(self):
        circuit, state_map = toggle_cell()
        result = SequentialSwitchingEstimator(circuit, state_map).estimate()
        assert 0 < result.mean_activity() < 1
        assert result.compile_seconds > 0
        assert result.propagate_seconds > 0
        assert result.residual < 1e-7


class TestScanConvertedBench:
    def test_dff_netlist_end_to_end(self):
        """A sequential .bench netlist drives the whole flow."""
        text = """
        INPUT(en)
        OUTPUT(out)
        q = DFF(nq)
        nq = XOR(q, en)
        out = NOT(q)
        """
        circuit = parse_bench(text, name="tff")
        assert "q" in circuit.inputs  # scan conversion
        result = SequentialSwitchingEstimator(circuit, {"q": "nq"}).estimate()
        assert result.converged
        assert result.switching("nq") == pytest.approx(0.5, abs=1e-6)


class TestSequentialSimulator:
    def test_validation(self):
        circuit, state_map = shift_register(2)
        with pytest.raises(ValueError):
            simulate_sequential_switching(circuit, state_map, n_cycles=1)

    def test_distributions_normalized(self):
        circuit, state_map = shift_register(2)
        sim = simulate_sequential_switching(
            circuit, state_map, n_cycles=10_000, rng=np.random.default_rng(3)
        )
        for dist in sim.distributions.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_deterministic_feedback(self):
        """Free-running toggle (nq = NOT q): q alternates every cycle,
        switching exactly 1."""
        gates = [Gate("nq", GateType.NOT, ("q",))]
        circuit = Circuit("osc", ["q", "pad"], gates)
        sim = simulate_sequential_switching(
            circuit, {"q": "nq"}, n_cycles=20_000, rng=np.random.default_rng(4)
        )
        assert sim.switching("nq") == pytest.approx(1.0)
