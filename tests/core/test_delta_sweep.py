"""Delta sweeps: planner units and the bitwise-parity contract.

The contract under test: ``sweep_mode="delta"`` (dedup + greedy
nearest-neighbour ordering + incremental CPD-update chain) returns
results bitwise-identical to the batched path on a *fresh* estimator.
Oracles here are always freshly-constructed estimators -- a reused
estimator carries the documented 1-ULP dirty-path drift across sweeps,
which is pre-existing behavior this PR neither introduced nor relies
on (the delta chain restarts propagation from reset potentials, which
is exactly why it matches a fresh pass bit for bit).
"""

import numpy as np
import pytest

from repro.circuits import examples, generate, suite
from repro.core import (
    CorrelatedGroupInputs,
    IndependentInputs,
    SegmentedEstimator,
    SwitchingActivityEstimator,
)
from repro.core.backend import estimate_many as facade_estimate_many
from repro.core.rcache import input_cpd_signatures
from repro.core.sweep import group_scenarios, hamming_distance, plan_delta_order


class TestPlanner:
    def test_group_scenarios_collapses_duplicates(self):
        reps, scatter = group_scenarios(["a", "b", "a", "c", "b"])
        assert reps == [0, 1, 3]
        assert scatter == [0, 1, 0, 2, 1]

    def test_group_scenarios_all_unique(self):
        reps, scatter = group_scenarios(["a", "b", "c"])
        assert reps == [0, 1, 2]
        assert scatter == [0, 1, 2]

    def test_hamming_distance_counts_changed_inputs(self):
        a = {"x": (b"1", ()), "y": (b"2", ())}
        b = {"x": (b"1", ()), "y": (b"9", ())}
        assert hamming_distance(a, a) == 0
        assert hamming_distance(a, b) == 1

    def test_plan_delta_order_greedy_nearest_neighbour(self):
        # Scenario 0 shares everything with 2, nothing with 1: the plan
        # must hop 0 -> 2 -> 1, not submission order.
        sigs = [
            {"x": (b"1", ()), "y": (b"1", ())},
            {"x": (b"9", ()), "y": (b"9", ())},
            {"x": (b"1", ()), "y": (b"1", ())},
        ]
        assert plan_delta_order(sigs) == [0, 2, 1]

    def test_plan_delta_order_is_deterministic(self):
        sigs = [
            {"x": (bytes([i % 3]), ())} for i in range(7)
        ]
        assert plan_delta_order(sigs) == plan_delta_order(sigs)

    def test_signature_keys_match_digests(self):
        circuit = examples.c17()
        a = input_cpd_signatures(circuit, IndependentInputs(0.3))
        b = input_cpd_signatures(circuit, IndependentInputs(0.3))
        assert hamming_distance(a, b) == 0


def _one_input_sweep(circuit, k, repeats_each=1):
    """Low-Hamming sweep: only the first input's p_one varies, each
    operating point repeated ``repeats_each`` times."""
    hot = list(circuit.inputs)[0]
    models = []
    for i in range(k):
        p = 0.1 + 0.8 * (i / max(1, k - 1))
        models.extend(
            IndependentInputs({hot: p}) for _ in range(repeats_each)
        )
    return models


def _assert_bitwise(got, expected, lines):
    assert len(got) == len(expected)
    for k, (g, e) in enumerate(zip(got, expected)):
        for line in lines:
            assert np.array_equal(g.distributions[line], e.distributions[line]), (
                f"scenario {k} line {line}: delta {g.distributions[line]} "
                f"!= oracle {e.distributions[line]}"
            )


class TestSingleBNParity:
    def test_delta_matches_fresh_batched(self):
        circuit = examples.c17()
        models = _one_input_sweep(circuit, 6)
        oracle = SwitchingActivityEstimator(circuit).estimate_many(models)
        got = SwitchingActivityEstimator(circuit).estimate_many(
            models, sweep_mode="delta"
        )
        _assert_bitwise(got, oracle, list(circuit.lines))

    def test_delta_with_duplicates(self):
        circuit = examples.c17()
        models = _one_input_sweep(circuit, 4, repeats_each=3)
        oracle = SwitchingActivityEstimator(circuit).estimate_many(models)
        got = SwitchingActivityEstimator(circuit).estimate_many(
            models, sweep_mode="delta"
        )
        _assert_bitwise(got, oracle, list(circuit.lines))

    def test_delta_with_correlated_groups(self):
        # Correlated chains add input-to-input edges, so the estimator
        # must be compiled with that structure (same rule as
        # update_inputs); all swept models then share it.
        circuit = examples.c17()
        names = list(circuit.inputs)
        models = [
            CorrelatedGroupInputs(
                [(names[0], names[1])], rho=rho,
                base=IndependentInputs(0.4),
            )
            for rho in (0.2, 0.2, 0.5, 0.8)
        ]
        oracle = SwitchingActivityEstimator(
            circuit, input_model=models[0]
        ).estimate_many(models)
        got = SwitchingActivityEstimator(
            circuit, input_model=models[0]
        ).estimate_many(models, sweep_mode="delta")
        _assert_bitwise(got, oracle, list(circuit.lines))

    def test_chain_counters_advance(self):
        circuit = examples.c17()
        estimator = SwitchingActivityEstimator(circuit)
        models = _one_input_sweep(circuit, 4, repeats_each=2)
        estimator.estimate_many(models, sweep_mode="delta")
        counters = estimator.propagation_counters().as_dict()
        # 4 unique scenarios: the first install precedes engine
        # creation (counters live on the engine), so 3 hops are
        # counted, plus 1 for the original-CPD restore on the way out.
        # Duplicates never step.
        assert counters["chain_steps"] == 4
        assert counters["chain_potentials_updated"] >= 4

    def test_auto_uses_delta_only_for_duplicates(self):
        circuit = examples.c17()
        distinct = SwitchingActivityEstimator(circuit)
        distinct.estimate_many(_one_input_sweep(circuit, 4), sweep_mode="auto")
        assert distinct.propagation_counters().as_dict()["chain_steps"] == 0

        repeated = SwitchingActivityEstimator(circuit)
        repeated.estimate_many(
            _one_input_sweep(circuit, 4, repeats_each=2), sweep_mode="auto"
        )
        assert repeated.propagation_counters().as_dict()["chain_steps"] > 0

    def test_single_query_state_survives_delta(self):
        """A delta sweep must not disturb subsequent estimate() calls."""
        circuit = examples.c17()
        estimator = SwitchingActivityEstimator(circuit)
        estimator.update_inputs(IndependentInputs(0.37))
        before = estimator.estimate()
        estimator.estimate_many(
            _one_input_sweep(circuit, 4, repeats_each=2), sweep_mode="delta"
        )
        after = estimator.estimate()
        fresh = SwitchingActivityEstimator(circuit)
        fresh.update_inputs(IndependentInputs(0.37))
        oracle = fresh.estimate()
        for line in circuit.lines:
            assert np.array_equal(
                after.distributions[line], oracle.distributions[line]
            )
            assert np.array_equal(
                after.distributions[line], before.distributions[line]
            )

    def test_unknown_sweep_mode_rejected(self):
        circuit = examples.c17()
        with pytest.raises(ValueError, match="sweep_mode"):
            SwitchingActivityEstimator(circuit).estimate_many(
                [IndependentInputs(0.3)], sweep_mode="warp"
            )


class TestSegmentedParity:
    def test_delta_matches_fresh_batched(self):
        circuit = generate.random_layered_circuit(8, 40, seed=7)
        models = _one_input_sweep(circuit, 4, repeats_each=2)
        oracle_est = SegmentedEstimator(circuit, max_gates_per_segment=10)
        oracle = oracle_est.estimate_many(models)
        assert oracle_est.num_segments > 1  # actually multi-segment
        got = SegmentedEstimator(
            circuit, max_gates_per_segment=10
        ).estimate_many(models, sweep_mode="delta")
        _assert_bitwise(got, oracle, list(circuit.lines))

    def test_delta_matches_on_suite_circuit(self):
        circuit = suite.load_circuit("pcler8")
        models = _one_input_sweep(circuit, 3, repeats_each=2)
        oracle = SegmentedEstimator(
            circuit, max_gates_per_segment=8
        ).estimate_many(models)
        got = SegmentedEstimator(
            circuit, max_gates_per_segment=8
        ).estimate_many(models, sweep_mode="delta")
        _assert_bitwise(got, oracle, list(circuit.lines))


class TestFacadeSweepMode:
    def test_facade_forwards_sweep_mode(self):
        circuit = examples.c17()
        models = _one_input_sweep(circuit, 3, repeats_each=2)
        batched = facade_estimate_many(
            circuit, models, backend="junction-tree", cache=None,
            sweep_mode="batched",
        )
        delta = facade_estimate_many(
            circuit, models, backend="junction-tree", cache=None,
            sweep_mode="delta",
        )
        _assert_bitwise(delta, batched, list(circuit.lines))
