"""Regression tests for bugs found by the differential fuzz harness.

Each test pins one concrete case the harness shrank, checked against
the independent enumeration oracle at tight tolerance.
"""

import numpy as np
import pytest

from repro.circuits.generate import random_layered_circuit
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate
from repro.core.backend import estimate
from repro.core.estimator import exact_switching_by_enumeration
from repro.core.inputs import CorrelatedGroupInputs, IndependentInputs, TraceInputs

ATOL = 1e-10


def _assert_matches_oracle(circuit, model, backend):
    oracle = exact_switching_by_enumeration(circuit, model)
    result = estimate(circuit, model, backend=backend, validate=True)
    for line, expected in oracle.items():
        got = result.distributions[line]
        assert np.all(np.isfinite(got)), f"{backend}: non-finite at {line}"
        np.testing.assert_allclose(
            got, expected, atol=ATOL,
            err_msg=f"{backend} disagrees with oracle at {line}",
        )


class TestCorrelatedGroupMarginals:
    """Fuzz seed 1: segmented reported base marginals for correlated
    inputs while the chain CPDs imply shifted ones."""

    def _model(self):
        base = IndependentInputs(
            {"i0": 0.158393, "i1": 0.930703, "i2": 0.319358, "i3": 0.426393}
        )
        return CorrelatedGroupInputs(
            [("i0", "i1"), ("i2", "i3")], rho=0.907894, base=base
        )

    def _circuit(self):
        return random_layered_circuit(n_inputs=4, n_gates=8, seed=1, name="fuzz1")

    def test_marginal_is_chain_implied(self):
        model = self._model()
        # i1 mostly copies i0 at rho ~0.91: its marginal must sit near
        # i0's, far from its own base of 0.93.
        prior_i0 = model.marginal_distribution("i0")
        implied = model.marginal_distribution("i1")
        base_i1 = model.base.marginal_distribution("i1")
        np.testing.assert_allclose(
            implied, 0.907894 * prior_i0 + (1 - 0.907894) * base_i1
        )
        assert np.abs(implied - base_i1).max() > 0.1

    def test_cpds_and_marginals_describe_same_joint(self):
        model = self._model()
        cpds = {c.variable: c for c in model.input_cpds(["i0", "i1"])}
        prior = cpds["i0"].to_factor().values
        table = cpds["i1"].to_factor().values.reshape(4, 4)
        np.testing.assert_allclose(
            np.einsum("p,pc->c", prior, table),
            model.marginal_distribution("i1"),
        )

    @pytest.mark.parametrize("backend", ["junction-tree", "segmented", "enumeration"])
    def test_backends_match_oracle(self, backend):
        _assert_matches_oracle(self._circuit(), self._model(), backend)

    def test_segmented_matches_even_when_chunked(self):
        """Force multiple segments so boundary handling is exercised."""
        circuit = random_layered_circuit(n_inputs=4, n_gates=20, seed=1, name="fz")
        model = self._model()
        oracle = exact_switching_by_enumeration(circuit, model)
        result = estimate(
            circuit, model, backend="segmented", max_gates_per_segment=4
        )
        for name in circuit.inputs:
            np.testing.assert_allclose(
                result.distributions[name], oracle[name], atol=1e-9
            )


class TestZeroSmoothingTraces:
    """A zero-smoothing trace with a constant column puts hard zeros in
    three of an input's four transition states; propagation must stay
    finite and exact."""

    def _case(self):
        rng = np.random.default_rng(42)
        trace = rng.integers(0, 2, size=(12, 3)).astype(np.uint8)
        trace[:, 0] = 1  # constant input: only the 1->1 state has mass
        circuit = Circuit(
            "zs",
            ["a", "b", "c"],
            [
                Gate("d", GateType.AND, ["a", "b"]),
                Gate("e", GateType.XOR, ["b", "c"]),
                Gate("f", GateType.OR, ["d", "e"]),
            ],
        )
        model = TraceInputs(trace, ["a", "b", "c"], smoothing=0.0)
        return circuit, model

    def test_zero_mass_states_survive_validation(self):
        from repro.core.validate import validate

        circuit, model = self._case()
        validate(circuit, model)
        assert model.marginal_distribution("a")[3] == pytest.approx(1.0)

    @pytest.mark.parametrize("backend", ["junction-tree", "segmented", "enumeration"])
    def test_backends_match_oracle(self, backend):
        circuit, model = self._case()
        _assert_matches_oracle(circuit, model, backend)

    def test_hard_zero_independent_inputs(self):
        """p=0 and p=1 inputs (stuck lines) propagate exactly."""
        circuit = random_layered_circuit(n_inputs=4, n_gates=10, seed=5, name="hz")
        model = IndependentInputs(
            {name: p for name, p in zip(circuit.inputs, (0.0, 1.0, 0.5, 0.25))}
        )
        for backend in ("junction-tree", "segmented", "enumeration"):
            _assert_matches_oracle(circuit, model, backend)
