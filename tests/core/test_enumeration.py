"""Tests for the support-enumeration segment backend."""

import numpy as np
import pytest

from repro.circuits import examples, generate
from repro.core import (
    IndependentInputs,
    TemporalInputs,
    exact_switching_by_enumeration,
)
from repro.core.enumeration import EnumerationSegment, SegmentTooWide
from repro.core.segmentation import TreeBoundaryInputs
from repro.core.states import N_STATES


class TestExactness:
    def test_matches_oracle_independent(self):
        circuit = generate.random_layered_circuit(6, 25, seed=2)
        model = IndependentInputs(0.3)
        segment = EnumerationSegment(circuit, model)
        result = segment.estimate()
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-12)

    def test_matches_oracle_temporal(self):
        circuit = examples.c17()
        model = TemporalInputs(p_one=0.4, activity=0.2)
        result = EnumerationSegment(circuit, model).estimate()
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-12)

    def test_matches_oracle_tree_boundary(self):
        circuit = examples.c17()
        priors = {n: np.array([0.4, 0.1, 0.2, 0.3]) for n in circuit.inputs}
        parent_of = {"2": "1", "3": "2"}
        conditional = np.full((N_STATES, N_STATES), 0.1)
        np.fill_diagonal(conditional, 0.7)
        conditionals = {child: conditional for child in parent_of}
        model = TreeBoundaryInputs(priors, parent_of, conditionals)
        result = EnumerationSegment(circuit, model).estimate()
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-12)

    def test_method_label(self):
        result = EnumerationSegment(examples.c17(), IndependentInputs(0.5)).estimate()
        assert result.method == "enumeration"


class TestPairJoint:
    def test_pair_joint_exact(self):
        circuit = examples.paper_circuit()
        model = IndependentInputs(0.5)
        segment = EnumerationSegment(circuit, model)
        segment.estimate()
        joint = segment.pair_joint("5", "6")
        # Lines 5 and 6 have disjoint fanin -> independent joint.
        outer = np.outer(
            segment.estimate().distributions["5"],
            segment.estimate().distributions["6"],
        )
        assert np.allclose(joint, outer, atol=1e-12)

    def test_dependent_pair(self):
        circuit = examples.paper_circuit()
        segment = EnumerationSegment(circuit, IndependentInputs(0.5))
        result = segment.estimate()
        joint = segment.pair_joint("6", "8")  # both depend on line 4
        outer = np.outer(result.distributions["6"], result.distributions["8"])
        assert not np.allclose(joint, outer, atol=1e-6)
        assert joint.sum() == pytest.approx(1.0)

    def test_keep_lines_restriction(self):
        circuit = examples.c17()
        segment = EnumerationSegment(
            circuit, IndependentInputs(0.5), keep_lines={"22"}
        )
        segment.estimate()
        with pytest.raises(KeyError):
            segment.pair_joint("22", "23")

    def test_pair_joint_autoestimates(self):
        circuit = examples.c17()
        segment = EnumerationSegment(circuit, IndependentInputs(0.5))
        joint = segment.pair_joint("22", "23")
        assert joint.sum() == pytest.approx(1.0)


class TestBudget:
    def test_too_wide_rejected(self):
        circuit = generate.random_layered_circuit(12, 20, seed=0)
        with pytest.raises(SegmentTooWide):
            EnumerationSegment(circuit, IndependentInputs(0.5), max_input_states=4 ** 8)

    def test_update_inputs_invalidates_cache(self):
        circuit = examples.c17()
        segment = EnumerationSegment(circuit, IndependentInputs(0.5))
        first = segment.estimate()
        segment.update_inputs(IndependentInputs(0.9))
        second = segment.estimate()
        assert not np.allclose(
            first.distributions["22"], second.distributions["22"]
        )
        exact = exact_switching_by_enumeration(circuit, IndependentInputs(0.9))
        assert np.allclose(second.distributions["22"], exact["22"], atol=1e-12)

    def test_stats(self):
        circuit = examples.c17()
        segment = EnumerationSegment(circuit, IndependentInputs(0.5))
        stats = segment.stats()
        assert stats["max_clique_states"] == N_STATES ** 5
