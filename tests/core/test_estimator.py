"""Exactness and behaviour tests for the single-BN estimator."""

import numpy as np
import pytest

from repro.circuits import examples, generate
from repro.core import (
    IndependentInputs,
    SwitchingActivityEstimator,
    TemporalInputs,
    CorrelatedGroupInputs,
    exact_switching_by_enumeration,
)
from repro.core.estimator import CliqueBudgetExceeded


def assert_matches_enumeration(circuit, model=None, atol=1e-10):
    estimator = SwitchingActivityEstimator(circuit, model)
    result = estimator.estimate()
    exact = exact_switching_by_enumeration(circuit, model)
    for line in circuit.lines:
        assert np.allclose(result.distributions[line], exact[line], atol=atol), line
    return result


class TestExactness:
    """The headline claim: single-BN estimates are exact."""

    def test_paper_circuit(self):
        assert_matches_enumeration(examples.paper_circuit())

    def test_c17(self):
        assert_matches_enumeration(examples.c17())

    def test_full_adder(self):
        assert_matches_enumeration(examples.full_adder_circuit())

    def test_reconvergent_constant(self):
        """y = AND(a, NOT a) is constant 0: switching must be exactly 0,
        the case independence-based estimators get wrong."""
        circuit = examples.reconvergent_circuit()
        result = assert_matches_enumeration(circuit)
        assert result.switching("y") == pytest.approx(0.0, abs=1e-12)

    def test_xor_chain(self):
        assert_matches_enumeration(examples.xor_chain_circuit(4))

    def test_biased_inputs(self):
        assert_matches_enumeration(examples.c17(), IndependentInputs(0.15))

    def test_temporal_inputs(self):
        assert_matches_enumeration(
            examples.c17(), TemporalInputs(p_one=0.5, activity=0.1)
        )

    def test_correlated_inputs(self):
        model = CorrelatedGroupInputs([("1", "2")], rho=0.7)
        assert_matches_enumeration(examples.paper_circuit(), model)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_small_circuits(self, seed):
        circuit = generate.random_layered_circuit(5, 14, seed=seed)
        assert_matches_enumeration(circuit)

    def test_per_input_probabilities(self):
        model = IndependentInputs({"1": 0.9, "2": 0.1, "3": 0.5, "6": 0.3, "7": 0.7})
        assert_matches_enumeration(examples.c17(), model)


class TestPaperNumbers:
    def test_or_gate_switching_fair_inputs(self):
        """OR of two fair independent inputs: P(out=1) = 3/4, temporally
        independent, so switching = 2 * 3/4 * 1/4 = 0.375."""
        estimator = SwitchingActivityEstimator(examples.paper_circuit())
        assert estimator.estimate().switching("5") == pytest.approx(0.375)

    def test_input_switching_is_half(self):
        estimator = SwitchingActivityEstimator(examples.c17())
        result = estimator.estimate()
        for name in ("1", "2", "3", "6", "7"):
            assert result.switching(name) == pytest.approx(0.5)


class TestApi:
    def test_compile_is_idempotent(self):
        estimator = SwitchingActivityEstimator(examples.c17())
        estimator.compile()
        jt = estimator.junction_tree
        estimator.compile()
        assert estimator.junction_tree is jt

    def test_estimate_reports_timings(self):
        result = SwitchingActivityEstimator(examples.c17()).estimate()
        assert result.compile_seconds > 0
        assert result.propagate_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.compile_seconds + result.propagate_seconds
        )
        assert result.method == "single-bn"
        assert result.segments == 1

    def test_update_inputs_fast_path(self):
        estimator = SwitchingActivityEstimator(examples.c17())
        estimator.estimate()
        estimator.update_inputs(IndependentInputs(0.9))
        result = estimator.estimate()
        exact = exact_switching_by_enumeration(examples.c17(), IndependentInputs(0.9))
        for line in ("22", "23"):
            assert np.allclose(result.distributions[line], exact[line], atol=1e-10)

    def test_update_inputs_does_not_recompile(self):
        estimator = SwitchingActivityEstimator(examples.c17())
        estimator.compile()
        jt = estimator.junction_tree
        estimator.update_inputs(IndependentInputs(0.2))
        assert estimator.junction_tree is jt

    def test_line_distribution(self):
        estimator = SwitchingActivityEstimator(examples.c17())
        dist = estimator.line_distribution("22")
        assert dist.shape == (4,)
        assert dist.sum() == pytest.approx(1.0)

    def test_clique_budget_enforced(self):
        circuit = generate.random_layered_circuit(12, 80, seed=1)
        estimator = SwitchingActivityEstimator(circuit, max_clique_states=64)
        with pytest.raises(CliqueBudgetExceeded):
            estimator.compile()

    def test_mean_activity(self):
        result = SwitchingActivityEstimator(examples.c17()).estimate()
        acts = list(result.activities.values())
        assert result.mean_activity() == pytest.approx(np.mean(acts))


class TestConditionalQueries:
    """Diagnostic (evidence-based) queries -- the BN capability the
    propagation-only methods lack."""

    def test_conditional_matches_brute_force(self):
        from repro.core.lidag import build_lidag

        circuit = examples.paper_circuit()
        estimator = SwitchingActivityEstimator(circuit)
        evidence = {"9": 1}  # output observed rising (x01)
        result = estimator.conditional_distribution("5", evidence)
        expected = build_lidag(circuit).brute_force_marginal("5", evidence)
        assert np.allclose(result, expected, atol=1e-10)

    def test_evidence_changes_posterior(self):
        circuit = examples.paper_circuit()
        estimator = SwitchingActivityEstimator(circuit)
        prior = estimator.estimate().switching("5")
        posterior = estimator.conditional_switching("5", {"9": 1})
        assert posterior != pytest.approx(prior, abs=1e-6)

    def test_evidence_is_local_to_the_call(self):
        circuit = examples.c17()
        estimator = SwitchingActivityEstimator(circuit)
        before = estimator.estimate().switching("22")
        estimator.conditional_switching("22", {"23": 2})
        after = estimator.estimate().switching("22")
        assert after == pytest.approx(before, abs=1e-12)

    def test_transition_state_values_accepted(self):
        from repro.core.states import TransitionState

        circuit = examples.c17()
        estimator = SwitchingActivityEstimator(circuit)
        dist = estimator.conditional_distribution(
            "10", {"22": TransitionState.X01}
        )
        assert dist.sum() == pytest.approx(1.0)

    def test_deterministic_backward_inference(self):
        """If the AND output rose, both inputs must end high."""
        from repro.circuits.netlist import Circuit, Gate
        from repro.circuits.gates import GateType
        from repro.core.states import TransitionState, signal_probability

        circuit = Circuit(
            "and2", ["a", "b"], [Gate("y", GateType.AND, ("a", "b"))]
        )
        estimator = SwitchingActivityEstimator(circuit)
        dist = estimator.conditional_distribution(
            "a", {"y": TransitionState.X01}
        )
        assert signal_probability(dist, "current") == pytest.approx(1.0)


class TestEnumerationOracle:
    def test_rejects_wide_circuits(self):
        circuit = generate.random_layered_circuit(16, 5, seed=0)
        with pytest.raises(ValueError, match="infeasible"):
            exact_switching_by_enumeration(circuit)

    def test_distributions_normalized(self):
        exact = exact_switching_by_enumeration(examples.c17())
        for dist in exact.values():
            assert dist.sum() == pytest.approx(1.0)
