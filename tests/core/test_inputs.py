"""Tests for the input statistics models."""

import numpy as np
import pytest

from repro.core.inputs import (
    CorrelatedGroupInputs,
    IndependentInputs,
    TemporalInputs,
    TraceInputs,
)
from repro.core.states import signal_probability, switching_probability


class TestIndependentInputs:
    def test_scalar_probability(self):
        model = IndependentInputs(0.3)
        dist = model.marginal_distribution("a")
        assert signal_probability(dist) == pytest.approx(0.3)
        assert switching_probability(dist) == pytest.approx(2 * 0.3 * 0.7)

    def test_per_input_mapping(self):
        model = IndependentInputs({"a": 0.1, "b": 0.9})
        assert signal_probability(model.marginal_distribution("a")) == pytest.approx(0.1)
        assert signal_probability(model.marginal_distribution("b")) == pytest.approx(0.9)
        # Missing names default to 0.5.
        assert signal_probability(model.marginal_distribution("zz")) == pytest.approx(0.5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            IndependentInputs(1.2).marginal_distribution("a")

    def test_cpds_are_priors(self):
        model = IndependentInputs(0.5)
        cpds = model.input_cpds(["a", "b"])
        assert all(cpd.parents == () for cpd in cpds)
        assert [cpd.variable for cpd in cpds] == ["a", "b"]

    def test_sampling_statistics(self):
        model = IndependentInputs(0.25)
        rng = np.random.default_rng(0)
        prev, curr = model.sample_pairs(["a", "b"], 40_000, rng)
        assert prev.shape == (40_000, 2)
        assert prev.mean() == pytest.approx(0.25, abs=0.01)
        assert curr.mean() == pytest.approx(0.25, abs=0.01)
        # Temporal independence: P(prev=1, curr=1) = p^2.
        both = (prev[:, 0] & curr[:, 0]).mean()
        assert both == pytest.approx(0.0625, abs=0.01)

    def test_sample_states_match_marginal(self):
        model = IndependentInputs(0.5)
        rng = np.random.default_rng(1)
        states = model.sample_states(["a"], 40_000, rng)
        hist = np.bincount(states[:, 0], minlength=4) / 40_000
        assert np.allclose(hist, model.marginal_distribution("a"), atol=0.01)


class TestTemporalInputs:
    def test_target_activity(self):
        model = TemporalInputs(p_one=0.5, activity=0.1)
        dist = model.marginal_distribution("a")
        assert switching_probability(dist) == pytest.approx(0.1)
        assert signal_probability(dist) == pytest.approx(0.5)

    def test_sampling_matches_distribution(self):
        model = TemporalInputs(p_one=0.6, activity=0.2)
        rng = np.random.default_rng(2)
        states = model.sample_states(["a"], 50_000, rng)
        hist = np.bincount(states[:, 0], minlength=4) / 50_000
        assert np.allclose(hist, model.marginal_distribution("a"), atol=0.01)

    def test_per_input_parameters(self):
        model = TemporalInputs(p_one={"a": 0.2}, activity={"a": 0.3})
        dist = model.marginal_distribution("a")
        assert switching_probability(dist) == pytest.approx(0.3)

    def test_infeasible_activity_raises(self):
        model = TemporalInputs(p_one=0.05, activity=0.9)
        with pytest.raises(ValueError):
            model.marginal_distribution("a")


class TestCorrelatedGroupInputs:
    def test_validation(self):
        with pytest.raises(ValueError, match="rho"):
            CorrelatedGroupInputs([("a", "b")], rho=1.5)
        with pytest.raises(ValueError, match="at least 2"):
            CorrelatedGroupInputs([("a",)], rho=0.5)
        with pytest.raises(ValueError, match="two groups"):
            CorrelatedGroupInputs([("a", "b"), ("b", "c")], rho=0.5)

    def test_marginals_preserved(self):
        base = IndependentInputs(0.3)
        model = CorrelatedGroupInputs([("a", "b")], rho=0.8, base=base)
        assert np.allclose(
            model.marginal_distribution("b"), base.marginal_distribution("b")
        )

    def test_cpd_structure(self):
        model = CorrelatedGroupInputs([("a", "b", "c")], rho=0.5)
        cpds = {cpd.variable: cpd for cpd in model.input_cpds(["a", "b", "c", "d"])}
        assert cpds["a"].parents == ()
        assert cpds["b"].parents == ("a",)
        assert cpds["c"].parents == ("b",)
        assert cpds["d"].parents == ()

    def test_rho_zero_is_independent(self):
        model = CorrelatedGroupInputs([("a", "b")], rho=0.0)
        cpd = {c.variable: c for c in model.input_cpds(["a", "b"])}["b"]
        # Every row equals the marginal: no dependence on the parent.
        rows = cpd.factor.values
        assert np.allclose(rows[0], rows[1])

    def test_rho_one_copies(self):
        model = CorrelatedGroupInputs([("a", "b")], rho=1.0)
        cpd = {c.variable: c for c in model.input_cpds(["a", "b"])}["b"]
        assert np.allclose(cpd.factor.values, np.eye(4))

    def test_missing_parent_falls_back_to_prior(self):
        model = CorrelatedGroupInputs([("a", "b")], rho=0.9)
        cpds = model.input_cpds(["b"])  # parent 'a' not among the inputs
        assert cpds[0].parents == ()

    def test_sampling_correlation(self):
        model = CorrelatedGroupInputs([("a", "b")], rho=1.0)
        rng = np.random.default_rng(3)
        states = model.sample_states(["a", "b"], 1000, rng)
        assert np.array_equal(states[:, 0], states[:, 1])

    def test_sampling_marginals_preserved(self):
        model = CorrelatedGroupInputs([("a", "b")], rho=0.7)
        rng = np.random.default_rng(4)
        states = model.sample_states(["a", "b"], 50_000, rng)
        for col in (0, 1):
            hist = np.bincount(states[:, col], minlength=4) / 50_000
            assert np.allclose(hist, model.marginal_distribution("a"), atol=0.01)

    def test_group_listed_out_of_order_still_samples(self):
        # Input order reversed relative to the group's chain order.
        model = CorrelatedGroupInputs([("a", "b")], rho=1.0)
        rng = np.random.default_rng(5)
        states = model.sample_states(["b", "a"], 100, rng)
        assert np.array_equal(states[:, 0], states[:, 1])


class TestTraceInputs:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_cycles"):
            TraceInputs(np.zeros((1, 2)), ["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            TraceInputs(np.zeros((4, 2)), ["a"])
        with pytest.raises(ValueError, match="0/1"):
            TraceInputs(np.full((4, 1), 2), ["a"])
        with pytest.raises(ValueError, match="smoothing"):
            TraceInputs(np.zeros((4, 1)), ["a"], smoothing=-1)
        model = TraceInputs(np.zeros((4, 1)), ["a"])
        with pytest.raises(KeyError):
            model.marginal_distribution("ghost")

    def test_distribution_from_known_trace(self):
        # Column alternates 0,1,0,1,... -> every pair toggles.
        trace = np.array([[0], [1], [0], [1], [0]])
        model = TraceInputs(trace, ["a"], smoothing=0.0)
        dist = model.marginal_distribution("a")
        assert dist[0] == 0.0 and dist[3] == 0.0
        assert dist[1] + dist[2] == pytest.approx(1.0)

    def test_smoothing_avoids_zeros(self):
        trace = np.zeros((10, 1), dtype=int)
        model = TraceInputs(trace, ["a"], smoothing=1.0)
        assert np.all(model.marginal_distribution("a") > 0)

    def test_recovers_bernoulli_statistics(self):
        rng = np.random.default_rng(0)
        trace = (rng.random((50_000, 2)) < 0.3).astype(int)
        model = TraceInputs(trace, ["a", "b"])
        from repro.core.states import independent_transition_distribution

        expected = independent_transition_distribution(0.3)
        assert np.allclose(model.marginal_distribution("a"), expected, atol=0.01)

    def test_sampling_preserves_marginals(self):
        rng = np.random.default_rng(1)
        trace = (rng.random((5_000, 2)) < 0.6).astype(int)
        model = TraceInputs(trace, ["a", "b"])
        states = model.sample_states(["b", "a"], 40_000, np.random.default_rng(2))
        hist = np.bincount(states[:, 1], minlength=4) / 40_000
        assert np.allclose(hist, model.marginal_distribution("a"), atol=0.015)

    def test_estimator_accepts_trace_model(self):
        from repro.circuits.examples import c17
        from repro.core import SwitchingActivityEstimator

        rng = np.random.default_rng(3)
        circuit = c17()
        trace = (rng.random((2_000, 5)) < 0.5).astype(int)
        model = TraceInputs(trace, circuit.inputs)
        result = SwitchingActivityEstimator(circuit, model).estimate()
        assert 0.3 < result.mean_activity() < 0.6
