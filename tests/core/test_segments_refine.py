"""The segment graph and iterative boundary refinement (PR 8).

Covers the `repro.core.segments` package surface: the explicit
:class:`SegmentGraph`, the typed boundary errors, the refinement
accuracy contract on the seeded demo circuits (DESIGN.md section 14),
batched/parallel/serialized parity under refinement, and the compile
options threading through the backend layer.
"""

import numpy as np
import pytest

from repro.circuits import examples, generate, suite
from repro.core.backend import compile_model
from repro.core.backend.backends import SegmentedBackend
from repro.core.estimator import exact_switching_by_enumeration
from repro.core.inputs import IndependentInputs
from repro.core.segments import (
    FixedMarginalInputs,
    SegmentGraph,
    SegmentedEstimator,
    TreeBoundaryInputs,
)
from repro.errors import ReproError, SegmentBoundaryError, ValidationError

P = 0.4


def _demo(name, refine, **overrides):
    """A refinement-demo estimator: small segments, no lookback."""
    circuit = suite.load_circuit(name)
    kwargs = dict(max_gates_per_segment=10, lookback=0, refine=refine)
    kwargs.update(overrides)
    return circuit, SegmentedEstimator(
        circuit, input_model=IndependentInputs(P), **kwargs
    )


def _max_err(circuit, result, oracle=None):
    if oracle is None:
        oracle = exact_switching_by_enumeration(circuit, IndependentInputs(P))
    return max(
        float(np.abs(np.asarray(result.distributions[line]) - dist).max())
        for line, dist in oracle.items()
    )


class TestBoundaryErrors:
    """Satellite 1: bare ValueErrors re-parented into repro.errors."""

    def test_unknown_boundary_mode(self):
        circuit = examples.c17()
        with pytest.raises(SegmentBoundaryError, match="unknown boundary mode"):
            SegmentedEstimator(circuit, boundary="magic")
        # The historical message text survives the typed re-parenting.
        with pytest.raises(ValueError, match="unknown boundary mode 'magic'"):
            SegmentedEstimator(circuit, boundary="magic")

    def test_boundary_tree_cycle(self):
        priors = {n: np.full(4, 0.25) for n in ("a", "b")}
        parent_of = {"a": "b", "b": "a"}
        conds = {n: np.full((4, 4), 0.25) for n in ("a", "b")}
        model = TreeBoundaryInputs(priors, parent_of, conds)
        with pytest.raises(SegmentBoundaryError, match="boundary tree contains a cycle"):
            model.sample_pairs(["a", "b"], 4, np.random.default_rng(0))

    def test_fixed_marginal_validation(self):
        with pytest.raises(SegmentBoundaryError, match="must have length"):
            FixedMarginalInputs({"x": np.array([0.5, 0.5])})
        with pytest.raises(SegmentBoundaryError, match="does not sum to 1"):
            FixedMarginalInputs({"x": np.array([0.5, 0.5, 0.5, 0.5])})

    def test_hierarchy(self):
        # Typed errors remain catchable at every historical level.
        assert issubclass(SegmentBoundaryError, ValidationError)
        assert issubclass(SegmentBoundaryError, ReproError)
        assert issubclass(SegmentBoundaryError, ValueError)

    def test_refine_validation(self):
        circuit = examples.c17()
        with pytest.raises(ValueError, match="refine"):
            SegmentedEstimator(circuit, refine=-1)
        with pytest.raises(SegmentBoundaryError, match="refine requires"):
            SegmentedEstimator(circuit, refine=1, boundary="independent")
        with pytest.raises(ValueError, match="refine_tol"):
            SegmentedEstimator(circuit, refine=1, refine_tol=0.0)
        with pytest.raises(ValueError, match="max_iters"):
            SegmentedEstimator(circuit, refine=1, max_iters=0)


class TestSegmentGraph:
    def test_graph_structure(self):
        circuit = generate.random_layered_circuit(6, 40, seed=3)
        seg = SegmentedEstimator(circuit, max_gates_per_segment=8)
        seg.compile()
        graph = seg.graph
        assert isinstance(graph, SegmentGraph)
        assert len(graph) == seg.num_segments
        # Every owned gate appears exactly once across the graph.
        owned = [g for node in graph for g in node.owned]
        assert sorted(owned) == sorted(circuit.gates)
        # Dependencies respect the level schedule: a segment's inputs
        # are produced by strictly earlier levels.
        level_of = graph.levels()
        for index in range(len(graph)):
            for dep in graph.dependencies(index):
                assert level_of[dep] < level_of[index]
        # Boundary edges point from owner to consumer along cut lines.
        for owner, consumer, line in graph.boundary_edges():
            assert graph.owner[line] == owner
            assert line in graph.nodes[consumer].segment.inputs

    def test_compat_shim_reexports(self):
        from repro.core import segmentation

        assert segmentation.SegmentedEstimator is SegmentedEstimator
        assert segmentation._SegmentInputs is not None
        assert segmentation._SegmentRegistry is not None
        assert "SegmentGraph" in segmentation.__all__


class TestRefinementAccuracy:
    """The PR's acceptance contract on the seeded demo circuits."""

    @pytest.mark.parametrize("name", ["refineA", "refineB"])
    def test_refine_halves_error(self, name):
        circuit, base = _demo(name, refine=0)
        oracle = exact_switching_by_enumeration(circuit, IndependentInputs(P))
        err0 = _max_err(circuit, base.estimate(), oracle)
        circuit, refined = _demo(name, refine=3)
        result = refined.estimate()
        err3 = _max_err(circuit, result, oracle)
        assert result.refine_iterations >= 2
        assert err3 <= err0 / 2, (err0, err3)

    @pytest.mark.parametrize("name", ["refineA", "refineB"])
    def test_error_does_not_blow_up_with_iterations(self, name):
        # Satellite 3 property: more refinement never substantially
        # degrades accuracy (oscillation is bounded; see DESIGN.md
        # section 14 -- strict monotonicity does not hold per-step).
        circuit = suite.load_circuit(name)
        oracle = exact_switching_by_enumeration(circuit, IndependentInputs(P))
        errors = []
        for refine in (0, 1, 2, 3):
            _, est = _demo(name, refine=refine)
            errors.append(_max_err(circuit, est.estimate(), oracle))
        for prev, curr in zip(errors, errors[1:]):
            assert curr <= prev * 1.1 + 1e-9, errors
        assert errors[-1] < errors[0], errors

    def test_refine_zero_matches_legacy_path(self):
        # refine=0 must not perturb the pre-refactor estimate: the
        # plain boundary forest is built, no glue edges exist.
        circuit, legacy = _demo("refineA", refine=0)
        legacy_result = legacy.estimate()
        assert legacy._refiner is None
        circuit, refined = _demo("refineA", refine=2)
        refined.compile()
        assert refined._refiner is not None and refined._refiner.edges
        for node in refined.graph:
            assert node.glue_children is not None
        # Re-estimating with refinement then comparing refine=0 again
        # reproduces the legacy numbers exactly.
        circuit, again = _demo("refineA", refine=0)
        for line in circuit.lines:
            np.testing.assert_array_equal(
                legacy_result.distributions[line],
                again.estimate().distributions[line],
            )

    def test_convergence_stops_early(self):
        _, est = _demo("refineA", refine=10)
        result = est.estimate()
        # The fixed point is reached long before the iteration cap.
        assert result.refine_iterations < 10
        assert result.refine_delta <= est.refine_tol

    def test_max_iters_caps_refinement(self):
        _, est = _demo("refineA", refine=10, max_iters=1)
        result = est.estimate()
        assert result.refine_iterations == 1


class TestRefinementParity:
    def test_estimate_many_matches_single(self):
        circuit, est = _demo("refineB", refine=2)
        models = [IndependentInputs(p) for p in (0.1, 0.35, 0.6, 0.9)]
        batched = est.estimate_many(models)
        for model, got in zip(models, batched):
            _, single = _demo("refineB", refine=2)
            single.update_inputs(model)
            ref = single.estimate()
            for line in circuit.lines:
                np.testing.assert_allclose(
                    got.distributions[line],
                    ref.distributions[line],
                    atol=1e-9,
                )

    def test_parallel_matches_serial(self):
        circuit, serial = _demo("refineB", refine=2)
        circuit, parallel = _demo("refineB", refine=2, parallelism=2)
        a = serial.estimate()
        b = parallel.estimate()
        for line in circuit.lines:
            np.testing.assert_allclose(
                a.distributions[line], b.distributions[line], atol=1e-12
            )


class TestBackendThreading:
    def test_backend_compile_with_refine(self):
        circuit = suite.load_circuit("refineA")
        model = SegmentedBackend().compile(
            circuit,
            IndependentInputs(P),
            max_gates_per_segment=10,
            lookback=0,
            refine=2,
        )
        result = model.query(IndependentInputs(P))
        assert result.refine_iterations == 2
        assert _max_err(circuit, result) < 0.1

    def test_cache_token_keys_on_refine(self):
        backend = SegmentedBackend()
        assert backend.cache_token(refine=2) != backend.cache_token()
        assert backend.cache_token(refine=2, refine_tol=1e-4) != backend.cache_token(
            refine=2
        )

    def test_facade_threads_refine_options(self):
        circuit = suite.load_circuit("refineA")
        model = compile_model(
            circuit,
            IndependentInputs(P),
            backend="segmented",
            max_gates_per_segment=10,
            lookback=0,
            refine=2,
            refine_tol=1e-6,
            max_iters=2,
        )
        result = model.query(IndependentInputs(P))
        assert result.refine_iterations == 2

    def test_serialization_round_trip_with_refiner(self):
        circuit = suite.load_circuit("refineA")
        model = SegmentedBackend().compile(
            circuit,
            IndependentInputs(P),
            max_gates_per_segment=10,
            lookback=0,
            refine=2,
        )
        direct = model.query(IndependentInputs(P))
        revived = type(model).from_bytes(model.to_bytes())
        loaded = revived.query(IndependentInputs(P))
        assert loaded.refine_iterations == direct.refine_iterations
        for line in circuit.lines:
            np.testing.assert_allclose(
                loaded.distributions[line],
                direct.distributions[line],
                atol=1e-12,
            )

    def test_estimate_reports_refine_telemetry(self):
        _, est = _demo("refineA", refine=2)
        result = est.estimate()
        assert result.refine_iterations == 2
        assert result.refine_delta >= 0.0
        # And the unrefined estimate reports the defaults.
        _, plain = _demo("refineA", refine=0)
        unrefined = plain.estimate()
        assert unrefined.refine_iterations == 0
        assert unrefined.refine_delta == 0.0

    def test_segment_stats_report_glue_edges(self):
        _, est = _demo("refineA", refine=2)
        est.compile()
        stats = est.segment_stats()
        assert sum(entry["glue_edges"] for entry in stats) == len(
            est._refiner.edges
        )


class TestScaleSuite:
    """Satellite 2: the scale tier rides the suite registry."""

    def test_scale_suite_names(self):
        assert suite.SCALE_SUITE == [
            "layered2k",
            "layered10k",
            "refineA",
            "refineB",
        ]
        # Table 1 is untouched: its consumers iterate FULL_SUITE.
        assert len(suite.FULL_SUITE) == 20
        assert not set(suite.SCALE_SUITE) & set(suite.FULL_SUITE)
        for name in suite.SCALE_SUITE:
            assert name in suite.available_circuits()
            assert suite.is_standin(name)

    def test_layered2k_shape(self):
        circuit = suite.load_circuit("layered2k")
        assert circuit.num_gates == 2000
        assert circuit.num_inputs == 64

    def test_scale_circuit_generator(self):
        circuit = generate.scale_circuit(2000, seed=2024)
        assert circuit.num_inputs == 64
        assert circuit.num_gates == 2000
        assert generate.scale_circuit(10000, seed=2025).num_inputs == 128
        with pytest.raises(ValueError, match="n_gates >= 64"):
            generate.scale_circuit(32)

    def test_layered2k_segmented_compile(self):
        # The whole point of the scale tier: far past any single-network
        # clique budget, yet the segment graph compiles and estimates.
        circuit = suite.load_circuit("layered2k")
        est = SegmentedEstimator(
            circuit, input_model=IndependentInputs(P), parallelism=4
        )
        result = est.estimate()
        assert est.num_segments > 50
        assert set(result.distributions) == set(circuit.lines)
        assert 0.0 < result.mean_activity() < 1.0
