"""Tests for the deterministic gate transition CPTs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Gate
from repro.core.cpt import (
    circuit_transition_cpds,
    gate_transition_cpd,
    output_transition,
)
from repro.core.states import N_STATES, TransitionState


class TestOutputTransition:
    def test_paper_example_or_gate(self):
        """The paper: P(X5=x01 | X1=x01, X2=x00) = 1 for an OR gate."""
        result = output_transition(
            GateType.OR, [TransitionState.X01, TransitionState.X00]
        )
        assert result is TransitionState.X01

    def test_not_gate_swaps_transitions(self):
        assert output_transition(GateType.NOT, [TransitionState.X01]) is TransitionState.X10
        assert output_transition(GateType.NOT, [TransitionState.X00]) is TransitionState.X11

    @given(
        st.sampled_from(list(GateType)),
        st.lists(st.integers(0, 3), min_size=1, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_per_cycle_evaluation(self, gate_type, states):
        if gate_type in (GateType.NOT, GateType.BUF):
            states = states[:1]
        elif len(states) < 2:
            states = states * 2
        prev = [(s >> 1) & 1 for s in states]
        curr = [s & 1 for s in states]
        expected_prev = evaluate_gate(gate_type, prev)
        expected_curr = evaluate_gate(gate_type, curr)
        result = output_transition(gate_type, states)
        assert result.previous_value == expected_prev
        assert result.current_value == expected_curr


class TestGateCpd:
    def test_two_input_table_size(self):
        """The paper: a 2-input gate CPT has 4^3 entries."""
        cpd = gate_transition_cpd(Gate("y", GateType.OR, ("a", "b")))
        assert cpd.factor.size == 4 ** 3

    def test_deterministic_rows(self):
        cpd = gate_transition_cpd(Gate("y", GateType.NAND, ("a", "b")))
        assert cpd.is_deterministic()

    def test_parent_order_matches_gate_inputs(self):
        cpd = gate_transition_cpd(Gate("y", GateType.AND, ("a", "b")))
        assert cpd.parents == ("a", "b")

    @pytest.mark.parametrize("gate_type", list(GateType))
    def test_every_row_sums_to_one(self, gate_type):
        inputs = ("a",) if gate_type in (GateType.NOT, GateType.BUF) else ("a", "b")
        cpd = gate_transition_cpd(Gate("y", gate_type, inputs))
        sums = cpd.factor.values.sum(axis=-1)
        assert np.allclose(sums, 1.0)

    def test_or_cpt_entry_from_paper(self):
        cpd = gate_transition_cpd(Gate("5", GateType.OR, ("1", "2")))
        prob = cpd.probability(
            int(TransitionState.X01),
            {"1": int(TransitionState.X01), "2": int(TransitionState.X00)},
        )
        assert prob == 1.0

    def test_three_input_gate(self):
        cpd = gate_transition_cpd(Gate("y", GateType.AND, ("a", "b", "c")))
        assert cpd.factor.size == N_STATES ** 4
        # All inputs high at both cycles -> output x11.
        prob = cpd.probability(
            int(TransitionState.X11),
            {"a": 3, "b": 3, "c": 3},
        )
        assert prob == 1.0

    def test_circuit_cpds_cover_all_gates(self):
        from repro.circuits.examples import c17

        circuit = c17()
        cpds = circuit_transition_cpds(circuit)
        assert {cpd.variable for cpd in cpds} == set(circuit.gates)

    def test_xor_switch_propagation(self):
        """XOR output toggles iff an odd number of inputs toggle."""
        cpd = gate_transition_cpd(Gate("y", GateType.XOR, ("a", "b")))
        # a switches (x01), b holds (x11): output was 0^1=1, now 1^1=0 -> x10
        prob = cpd.probability(
            int(TransitionState.X10),
            {"a": int(TransitionState.X01), "b": int(TransitionState.X11)},
        )
        assert prob == 1.0
