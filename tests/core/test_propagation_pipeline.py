"""End-to-end regressions for the compiled propagation engine:
estimator outputs against the enumeration oracle, dirty repropagation
against fresh compiles, and the parallel segment pipeline against the
serial one.
"""

import numpy as np
import pytest

from repro.circuits import examples, generate
from repro.core.estimator import (
    SwitchingActivityEstimator,
    exact_switching_by_enumeration,
)
from repro.core.inputs import IndependentInputs, TemporalInputs
from repro.core.segmentation import SegmentedEstimator

SMALL_CIRCUITS = [
    examples.c17,
    examples.full_adder_circuit,
    examples.reconvergent_circuit,
    examples.xor_chain_circuit,
]


@pytest.mark.parametrize("build", SMALL_CIRCUITS, ids=lambda f: f.__name__)
def test_engine_matches_enumeration_oracle(build):
    circuit = build()
    model = IndependentInputs(0.4)
    estimate = SwitchingActivityEstimator(circuit, input_model=model).estimate()
    oracle = exact_switching_by_enumeration(circuit, model)
    for line in circuit.lines:
        assert np.allclose(
            estimate.distributions[line], oracle[line], atol=1e-10
        ), line


@pytest.mark.parametrize("build", SMALL_CIRCUITS, ids=lambda f: f.__name__)
def test_update_inputs_matches_fresh_compile(build):
    """``update_inputs`` + dirty repropagation must track a fresh
    compile to 1e-12 across an input-statistics sweep."""
    circuit = build()
    estimator = SwitchingActivityEstimator(circuit)
    estimator.estimate()
    for p in (0.1, 0.3, 0.5, 0.7, 0.9):
        estimator.update_inputs(IndependentInputs(p))
        swept = estimator.estimate()
        fresh = SwitchingActivityEstimator(
            circuit, input_model=IndependentInputs(p)
        ).estimate()
        for line in circuit.lines:
            assert np.allclose(
                swept.distributions[line],
                fresh.distributions[line],
                atol=1e-12,
            ), (line, p)


def test_update_inputs_with_temporal_model():
    circuit = examples.full_adder_circuit()
    estimator = SwitchingActivityEstimator(circuit)
    estimator.estimate()
    model = TemporalInputs(activity=0.3)
    estimator.update_inputs(model)
    swept = estimator.estimate()
    oracle = exact_switching_by_enumeration(circuit, model)
    for line in circuit.lines:
        assert np.allclose(swept.distributions[line], oracle[line], atol=1e-10)


class TestParallelPipeline:
    @pytest.mark.parametrize("backend", ["auto", "enum"])
    def test_parallel_equals_serial(self, backend):
        circuit = generate.random_layered_circuit(8, 40, seed=7)
        kwargs = dict(
            input_model=IndependentInputs(0.35),
            max_gates_per_segment=8,
            backend=backend,
            # small enumeration budget so backend="enum" also splits
            enum_input_states=4 ** 4,
        )
        serial = SegmentedEstimator(circuit, **kwargs)
        parallel = SegmentedEstimator(circuit, parallelism=4, **kwargs)
        rs = serial.estimate()
        rp = parallel.estimate()
        assert serial.num_segments == parallel.num_segments
        assert serial.num_segments > 1
        assert set(rs.distributions) == set(rp.distributions)
        for line, dist in rs.distributions.items():
            assert np.array_equal(dist, rp.distributions[line]), line

    def test_parallel_repeat_estimates_stay_equal(self):
        circuit = generate.random_layered_circuit(6, 24, seed=3)
        serial = SegmentedEstimator(circuit, max_gates_per_segment=6)
        parallel = SegmentedEstimator(
            circuit, max_gates_per_segment=6, parallelism=3
        )
        for p in (0.5, 0.2, 0.8):
            serial.input_model = IndependentInputs(p)
            parallel.input_model = IndependentInputs(p)
            rs = serial.estimate()
            rp = parallel.estimate()
            for line, dist in rs.distributions.items():
                assert np.array_equal(dist, rp.distributions[line]), (line, p)

    def test_parallelism_one_is_serial_path(self):
        circuit = examples.c17()
        est = SegmentedEstimator(circuit, parallelism=1)
        result = est.estimate()
        assert 0.0 <= result.mean_activity() <= 1.0

    def test_negative_parallelism_rejected(self):
        with pytest.raises(ValueError):
            SegmentedEstimator(examples.c17(), parallelism=-1)
