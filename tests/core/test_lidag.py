"""Tests for LIDAG construction and the Theorem-3 I-map property."""


from repro.bayesian.dsep import d_separated
from repro.circuits.examples import c17, full_adder_circuit, paper_circuit
from repro.core.inputs import CorrelatedGroupInputs, IndependentInputs
from repro.core.lidag import (
    build_lidag,
    lidag_node_ordering,
    markov_boundaries,
    verify_imap,
)


class TestStructure:
    def test_one_node_per_line(self):
        circuit = paper_circuit()
        bn = build_lidag(circuit)
        assert set(bn.nodes) == set(circuit.lines)

    def test_edges_follow_gates(self):
        """Definition 8: parents of an output line are its gate inputs."""
        circuit = paper_circuit()
        bn = build_lidag(circuit)
        for line, gate in circuit.gates.items():
            assert set(bn.parents(line)) == set(gate.inputs)

    def test_inputs_are_roots(self):
        bn = build_lidag(c17())
        assert set(bn.roots()) == {"1", "2", "3", "6", "7"}

    def test_paper_figure2_factorization(self):
        """Eq. 7: the joint factors as P(x9|x7,x8) P(x8|x4) P(x7|x5,x6)
        P(x6|x3,x4) P(x5|x1,x2) P(x4) P(x3) P(x2) P(x1)."""
        bn = build_lidag(paper_circuit())
        assert set(bn.parents("9")) == {"7", "8"}
        assert set(bn.parents("8")) == {"4"}
        assert set(bn.parents("7")) == {"5", "6"}
        assert set(bn.parents("6")) == {"3", "4"}
        assert set(bn.parents("5")) == {"1", "2"}
        for root in ("1", "2", "3", "4"):
            assert bn.parents(root) == []

    def test_all_variables_four_state(self):
        bn = build_lidag(c17())
        assert all(bn.cardinality(n) == 4 for n in bn.nodes)

    def test_correlated_inputs_add_edges(self):
        model = CorrelatedGroupInputs([("1", "2")], rho=0.5)
        bn = build_lidag(paper_circuit(), model)
        assert bn.parents("2") == ["1"]


class TestOrderingAndBoundaries:
    def test_theorem3_ordering(self):
        circuit = paper_circuit()
        order = lidag_node_ordering(circuit)
        # Inputs first...
        assert order[:4] == ["1", "2", "3", "4"]
        # ...then outputs respecting topology.
        assert order.index("5") < order.index("7") < order.index("9")

    def test_markov_boundaries(self):
        circuit = paper_circuit()
        boundaries = markov_boundaries(circuit)
        assert boundaries["1"] == set()
        assert boundaries["5"] == {"1", "2"}
        assert boundaries["9"] == {"7", "8"}

    def test_boundaries_equal_lidag_parents(self):
        """The LIDAG designates each line's Markov boundary as its
        parents -- the crux of the Theorem 3 proof."""
        circuit = c17()
        bn = build_lidag(circuit)
        boundaries = markov_boundaries(circuit)
        for line in circuit.lines:
            assert set(bn.parents(line)) == boundaries[line]


class TestPaperIndependenceExamples:
    def test_x1_x2_marginally_independent(self):
        """The paper: nodes X1 and X2 are independent..."""
        bn = build_lidag(paper_circuit())
        assert d_separated(bn.to_digraph(), {"1"}, {"2"})

    def test_x1_x2_dependent_given_x9(self):
        """...but conditionally dependent given X9 (collider opening)."""
        bn = build_lidag(paper_circuit())
        assert not d_separated(bn.to_digraph(), {"1"}, {"2"}, {"9"})

    def test_x5_screens_off_x1_x2(self):
        """Transitions at line 5 are conditionally independent of all
        other lines' transitions given lines 1 and 2."""
        bn = build_lidag(paper_circuit())
        dag = bn.to_digraph()
        assert d_separated(dag, {"5"}, {"3", "4"}, {"1", "2"})


class TestImapProperty:
    """Theorem 3 checked empirically: every d-separation displayed by
    the LIDAG is a true independence of the enumerated switching joint."""

    def test_paper_circuit_imap(self):
        bn = build_lidag(paper_circuit())
        assert verify_imap(bn, max_conditioning=1)

    def test_full_adder_imap(self):
        bn = build_lidag(full_adder_circuit())
        assert verify_imap(bn, max_conditioning=1)

    def test_imap_with_biased_inputs(self):
        bn = build_lidag(paper_circuit(), IndependentInputs(0.2))
        assert verify_imap(bn, max_conditioning=1)

    def test_imap_with_correlated_inputs(self):
        model = CorrelatedGroupInputs([("1", "2")], rho=0.6)
        bn = build_lidag(paper_circuit(), model)
        assert verify_imap(bn, max_conditioning=1)
