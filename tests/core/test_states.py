"""Tests for the 4-state transition algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.states import (
    N_STATES,
    STATE_NAMES,
    TransitionState,
    current_values,
    encode_pairs,
    independent_transition_distribution,
    markov_transition_distribution,
    previous_values,
    signal_probability,
    switching_probability,
)


class TestTransitionState:
    def test_encoding(self):
        assert TransitionState.from_pair(0, 0) is TransitionState.X00
        assert TransitionState.from_pair(0, 1) is TransitionState.X01
        assert TransitionState.from_pair(1, 0) is TransitionState.X10
        assert TransitionState.from_pair(1, 1) is TransitionState.X11

    def test_decoding_roundtrip(self):
        for prev in (0, 1):
            for curr in (0, 1):
                state = TransitionState.from_pair(prev, curr)
                assert state.previous_value == prev
                assert state.current_value == curr

    def test_is_switch(self):
        assert TransitionState.X01.is_switch
        assert TransitionState.X10.is_switch
        assert not TransitionState.X00.is_switch
        assert not TransitionState.X11.is_switch

    def test_names(self):
        assert str(TransitionState.X01) == "x01"
        assert len(STATE_NAMES) == N_STATES

    def test_vectorized_encode_decode(self):
        prev = np.array([0, 0, 1, 1])
        curr = np.array([0, 1, 0, 1])
        states = encode_pairs(prev, curr)
        assert list(states) == [0, 1, 2, 3]
        assert list(previous_values(states)) == list(prev)
        assert list(current_values(states)) == list(curr)


class TestDistributions:
    def test_switching_probability(self):
        assert switching_probability([0.25, 0.25, 0.25, 0.25]) == 0.5
        assert switching_probability([1, 0, 0, 0]) == 0.0

    def test_switching_probability_shape_check(self):
        with pytest.raises(ValueError):
            switching_probability([0.5, 0.5])

    def test_signal_probability(self):
        dist = [0.1, 0.2, 0.3, 0.4]
        assert signal_probability(dist, "current") == pytest.approx(0.6)
        assert signal_probability(dist, "previous") == pytest.approx(0.7)
        with pytest.raises(ValueError):
            signal_probability(dist, "past")

    @given(st.floats(0.0, 1.0))
    def test_independent_distribution_properties(self, p):
        dist = independent_transition_distribution(p)
        assert dist.sum() == pytest.approx(1.0)
        assert signal_probability(dist, "current") == pytest.approx(p)
        assert signal_probability(dist, "previous") == pytest.approx(p)
        assert switching_probability(dist) == pytest.approx(2 * p * (1 - p))

    def test_independent_distribution_validation(self):
        with pytest.raises(ValueError):
            independent_transition_distribution(1.5)

    @given(st.floats(0.05, 0.95), st.floats(0.0, 1.0))
    def test_markov_distribution_properties(self, p, raw_activity):
        activity = raw_activity * 2 * min(p, 1 - p)
        dist = markov_transition_distribution(p, activity)
        assert dist.sum() == pytest.approx(1.0)
        assert switching_probability(dist) == pytest.approx(activity, abs=1e-9)
        assert signal_probability(dist, "current") == pytest.approx(p, abs=1e-9)
        # Stationarity: P(1) is the same at both cycles.
        assert signal_probability(dist, "previous") == pytest.approx(p, abs=1e-9)

    def test_markov_infeasible_activity(self):
        with pytest.raises(ValueError, match="infeasible"):
            markov_transition_distribution(0.1, 0.9)

    def test_markov_validation(self):
        with pytest.raises(ValueError):
            markov_transition_distribution(-0.1, 0.1)
        with pytest.raises(ValueError):
            markov_transition_distribution(0.5, 1.5)

    def test_markov_reduces_to_independent(self):
        p = 0.3
        independent = independent_transition_distribution(p)
        markov = markov_transition_distribution(p, 2 * p * (1 - p))
        assert np.allclose(independent, markov)
