"""Property test: the estimator is exact on arbitrary small circuits.

The strongest single statement of the paper's Theorem 3 + Section 4
machinery: for ANY randomly generated circuit and ANY input statistics,
the single-BN estimate equals brute-force enumeration of all joint
input transitions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.generate import random_layered_circuit
from repro.core import (
    IndependentInputs,
    SwitchingActivityEstimator,
    TemporalInputs,
    exact_switching_by_enumeration,
)


@st.composite
def small_circuits(draw):
    n_inputs = draw(st.integers(3, 6))
    n_gates = draw(st.integers(3, 18))
    seed = draw(st.integers(0, 10_000))
    return random_layered_circuit(n_inputs, n_gates, seed=seed)


@st.composite
def input_models(draw):
    kind = draw(st.sampled_from(["independent", "temporal"]))
    if kind == "independent":
        p = draw(st.floats(0.05, 0.95))
        return IndependentInputs(p)
    p = draw(st.floats(0.2, 0.8))
    activity = draw(st.floats(0.01, 1.0)) * 2 * min(p, 1 - p)
    return TemporalInputs(p_one=p, activity=activity)


@given(small_circuits(), input_models())
@settings(max_examples=25, deadline=None)
def test_estimator_exact_on_random_circuits(circuit, model):
    estimator = SwitchingActivityEstimator(circuit, model, max_clique_states=None)
    result = estimator.estimate()
    exact = exact_switching_by_enumeration(circuit, model)
    for line in circuit.lines:
        assert np.allclose(result.distributions[line], exact[line], atol=1e-9), line


@given(small_circuits())
@settings(max_examples=10, deadline=None)
def test_distributions_are_probability_vectors(circuit):
    result = SwitchingActivityEstimator(circuit, max_clique_states=None).estimate()
    for line, dist in result.distributions.items():
        assert dist.shape == (4,)
        assert np.all(dist >= -1e-12)
        assert dist.sum() == np.float64(1.0) or abs(dist.sum() - 1.0) < 1e-9
