"""Sparse message kernels: support soundness, parity, and diagnostics.

Three guarantees ride on the compile-time support analysis:

1. **Soundness** -- no state with nonzero probability under *any*
   input model is ever outside the analyzed support (the property
   test calibrates a dense oracle engine and checks its beliefs
   against the sparse schedule's masks, over the differential fuzz
   generator's circuit/model mix).
2. **Parity** -- packed kernels produce the same marginals as the
   dense reductions, within float association-order noise (hard bound
   1e-12), across batch sizes and every exact backend.
3. **Invalidation** -- swapping a deterministic CPD for one with mass
   outside the recorded support drops the compiled state instead of
   silently truncating it.

Plus the observability/CI satellites: ``support_stats`` /
``jt.feasible_states`` gauges, and the ``bench_diff.py`` regression
gate's exit codes.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.bayesian.cpd import TabularCPD
from repro.bayesian.junction import JunctionTree
from repro.circuits import suite
from repro.core import IndependentInputs, SwitchingActivityEstimator
from repro.core.backend import estimate_many
from repro.core.estimator import exact_switching_by_enumeration
from repro.testing import input_model_from_json, input_model_to_json, make_case

BENCH_DIFF = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_diff.py"


def _fuzz_case(seed, max_gates=20, max_inputs=5):
    circuit, spec = make_case(seed, max_gates=max_gates, max_inputs=max_inputs)
    return circuit, input_model_from_json(input_model_to_json(spec))


class TestSupportSoundness:
    """No nonzero-probability state is ever pruned."""

    @pytest.mark.parametrize("seed", range(8))
    def test_dense_beliefs_stay_inside_analyzed_support(self, seed):
        # All four input-model kinds rotate through the seeds, and
        # every fifth seed pins inputs to exact 0/1 probabilities, so
        # zero-mass states reach the analysis from both sides.
        circuit, model = _fuzz_case(seed)
        sparse = SwitchingActivityEstimator(
            circuit, model, kernel="sparse"
        ).compile()
        schedule = sparse._jt._schedule
        dense = SwitchingActivityEstimator(
            circuit, model, kernel="dense"
        ).compile()
        dense.estimate()
        beliefs = dense._jt._engine.belief_factors()
        assert schedule.orders == dense._jt._schedule.orders
        checked = 0
        for idx, mask in enumerate(schedule.supports):
            if mask is None:
                continue
            outside = beliefs[idx].values[~mask]
            # Structural zeros are exact: every outside entry is a
            # product/sum chain through at least one exact 0.0.
            assert float(np.abs(outside).max(initial=0.0)) == 0.0
            checked += 1
        if circuit.num_gates >= 5:
            assert checked > 0, "analysis found no deterministic support"

    def test_support_tightens_only_from_determinism(self):
        # An estimator sees full support everywhere when the kernel is
        # dense (no masks are even computed).
        circuit = suite.load_circuit("c17")
        est = SwitchingActivityEstimator(circuit, kernel="dense").compile()
        schedule = est._jt._schedule
        assert all(mask is None for mask in schedule.supports)
        assert not schedule.sparse_cliques


class TestParity:
    """Packed kernels match the dense oracle and the enumeration oracle."""

    @pytest.mark.parametrize("backend", ["junction-tree", "segmented"])
    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_sparse_matches_dense_across_batch_sizes(self, backend, k):
        circuit = suite.load_circuit("c17")
        ps = [0.0, 1.0, 0.5] + [0.05 + 0.9 * (i / max(k, 2)) for i in range(k)]
        models = [IndependentInputs(p) for p in ps[:k]]
        got = estimate_many(circuit, models, backend=backend, kernel="sparse")
        ref = estimate_many(circuit, models, backend=backend, kernel="dense")
        for sparse_est, dense_est in zip(got, ref):
            for line, dist in dense_est.distributions.items():
                np.testing.assert_allclose(
                    sparse_est.distributions[line], dist, atol=1e-12, rtol=0
                )

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_sparse_matches_enumeration_oracle(self, seed):
        circuit, model = _fuzz_case(seed, max_gates=15, max_inputs=4)
        oracle = exact_switching_by_enumeration(circuit, model)
        est = SwitchingActivityEstimator(circuit, model, kernel="sparse")
        result = est.estimate()
        for line, dist in oracle.items():
            np.testing.assert_allclose(
                result.distributions[line], dist, atol=1e-10, rtol=0
            )

    def test_float32_batch_mode_within_tolerance(self):
        circuit = suite.load_circuit("c17")
        models = [IndependentInputs(p) for p in (0.1, 0.5, 0.0, 0.93)]
        est = SwitchingActivityEstimator(circuit, kernel="auto").compile()
        exact = est.estimate_many(models)
        approx = est.estimate_many(models, dtype="float32")
        for a, b in zip(approx, exact):
            for line, dist in b.distributions.items():
                np.testing.assert_allclose(
                    a.distributions[line], dist, atol=1e-5, rtol=0
                )


class TestInvalidation:
    """A CPD with mass outside the recorded support drops the compile."""

    def _noisy_cpd(self, old):
        table = 0.9 * old.factor.values + 0.1 * (1.0 / old.cardinality)
        return TabularCPD(
            old.variable, old.cardinality, table, parents=old.parents
        )

    def test_noisy_gate_cpd_invalidates_and_stays_exact(self):
        circuit = suite.load_circuit("c17")
        est = SwitchingActivityEstimator(circuit, kernel="sparse").compile()
        jt = est._jt
        est.estimate()
        assert jt._mask_supports, "sparse compile recorded no masks"
        gate = next(iter(jt._mask_supports))

        noisy = self._noisy_cpd(jt._bn.cpd(gate))
        jt.update_cpds([noisy])
        # The offending node never contributes a mask again.
        assert gate in jt._mask_exclude

        jt.calibrate()
        oracle = JunctionTree.from_network(jt._bn, kernel="dense")
        oracle.calibrate()
        for line in circuit.lines:
            np.testing.assert_allclose(
                jt.marginal(line), oracle.marginal(line), atol=1e-12, rtol=0
            )
        # The re-analyzed schedule excludes the noisy node's mask but
        # keeps every other gate's.
        assert gate not in jt._mask_supports

    def test_unchanged_deterministic_cpds_keep_the_compile(self):
        circuit = suite.load_circuit("c17")
        est = SwitchingActivityEstimator(circuit, kernel="sparse").compile()
        jt = est._jt
        est.estimate()
        schedule = jt._schedule
        # Swapping input statistics (root CPDs carry no masks) must not
        # drop the compiled schedule.
        est.update_inputs(IndependentInputs(0.2))
        est.estimate()
        assert jt._schedule is schedule


class TestDiagnostics:
    def test_support_stats_shape(self):
        est = SwitchingActivityEstimator(suite.load_circuit("pcler8"))
        stats = est.support_stats()
        assert stats["kernel"] == "auto"
        assert 0 < stats["feasible_states"] < stats["total_states"]
        assert 0.0 < stats["support_density"] < 1.0
        assert 0 < stats["sparse_cliques"] <= stats["cliques"]

    def test_gauges_published_at_compile(self):
        obs.enable(reset=True)
        try:
            SwitchingActivityEstimator(suite.load_circuit("pcler8")).compile()
            gauges = obs.get_metrics().snapshot()["gauges"]
        finally:
            obs.disable()
            obs.reset()
        assert gauges["jt.feasible_states"] > 0
        assert 0.0 < gauges["jt.support_density"] < 1.0
        assert gauges["jt.sparse_cliques"] > 0
        assert gauges["jt.feasible_states"] < gauges["jt.total_states"]


def _load_bench_diff():
    spec = importlib.util.spec_from_file_location("bench_diff", BENCH_DIFF)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _prop_doc(seconds_by_circuit):
    return {
        "benchmark": "propagation",
        "schema_version": 4,
        "results": [
            {"circuit": name, "repeat_estimate_min_seconds": value}
            for name, value in seconds_by_circuit.items()
        ],
    }


def _thr_doc(rate_by_key):
    return {
        "benchmark": "throughput",
        "schema_version": 2,
        "results": [
            {
                "circuit": name,
                "batch_size": k,
                "batched_scenarios_per_sec": value,
            }
            for (name, k), value in rate_by_key.items()
        ],
    }


class TestBenchDiff:
    def test_ok_within_band(self):
        mod = _load_bench_diff()
        records = mod.compare(
            _prop_doc({"c432s": 0.100}), _prop_doc({"c432s": 0.110}),
            noise_band=0.25,
        )
        assert [r["status"] for r in records] == ["ok"]

    def test_regression_detected_both_directions(self):
        mod = _load_bench_diff()
        slow = mod.compare(
            _prop_doc({"c432s": 0.100}), _prop_doc({"c432s": 0.200}),
            noise_band=0.25,
        )
        assert slow[0]["status"] == "regression"
        fewer = mod.compare(
            _thr_doc({("c17", 64): 1000.0}), _thr_doc({("c17", 64): 500.0}),
            noise_band=0.25,
        )
        assert fewer[0]["status"] == "regression"

    def test_sub_floor_timings_are_skipped(self):
        mod = _load_bench_diff()
        records = mod.compare(
            _prop_doc({"c17": 0.0002}), _prop_doc({"c17": 0.0009}),
            noise_band=0.25, floor_seconds=0.001,
        )
        assert records[0]["status"] == "skipped"

    def test_mismatched_kinds_raise(self):
        mod = _load_bench_diff()
        with pytest.raises(mod.BenchDiffError):
            mod.compare(_prop_doc({"c17": 1.0}), _thr_doc({("c17", 1): 1.0}))

    def test_cli_exit_codes(self, tmp_path):
        old = tmp_path / "old.json"
        regressed = tmp_path / "new.json"
        old.write_text(json.dumps(_prop_doc({"c432s": 0.100})))
        regressed.write_text(json.dumps(_prop_doc({"c432s": 0.500})))
        run = lambda a, b: subprocess.run(
            [sys.executable, str(BENCH_DIFF), str(a), str(b)],
            capture_output=True, text=True,
        )
        assert run(old, old).returncode == 0
        assert run(old, regressed).returncode == 1
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(_thr_doc({("c17", 1): 1.0})))
        assert run(old, broken).returncode == 2
