"""Tests for error metrics and table formatting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import error_statistics, percent_error_of_means
from repro.analysis.tables import format_table, rows_from_dicts


class TestErrorStatistics:
    def test_zero_error(self):
        acts = {"a": 0.5, "b": 0.25}
        stats = error_statistics(acts, dict(acts))
        assert stats.mean_abs_error == 0.0
        assert stats.std_error == 0.0
        assert stats.percent_error_of_means == 0.0
        assert stats.n_lines == 2

    def test_known_values(self):
        est = {"a": 0.6, "b": 0.2}
        ref = {"a": 0.5, "b": 0.3}
        stats = error_statistics(est, ref)
        assert stats.mean_abs_error == pytest.approx(0.1)
        assert stats.max_abs_error == pytest.approx(0.1)
        # Errors are +0.1 and -0.1: mean 0, std 0.1.
        assert stats.std_error == pytest.approx(0.1)
        assert stats.percent_error_of_means == pytest.approx(0.0)

    def test_percent_error(self):
        est = {"a": 0.6}
        ref = {"a": 0.5}
        assert percent_error_of_means(est, ref) == pytest.approx(20.0)

    def test_zero_reference_mean(self):
        assert percent_error_of_means({"a": 0.0}, {"a": 0.0}) == 0.0
        assert percent_error_of_means({"a": 0.1}, {"a": 0.0}) == float("inf")

    def test_mismatched_keys_rejected(self):
        with pytest.raises(KeyError):
            error_statistics({"a": 0.5}, {"b": 0.5})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_statistics({}, {})

    def test_as_row(self):
        stats = error_statistics({"a": 0.5}, {"a": 0.4})
        row = stats.as_row()
        assert row["mu_err"] == stats.mean_abs_error
        assert row["lines"] == 1

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_metric_bounds(self, values):
        est = {f"l{i}": v for i, v in enumerate(values)}
        ref = {f"l{i}": 0.5 for i in range(len(values))}
        stats = error_statistics(est, ref)
        assert 0.0 <= stats.mean_abs_error <= stats.max_abs_error <= 1.0
        assert stats.std_error >= 0.0


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[1].startswith("-")

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.startswith("My Table\n========")

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_precision(self):
        table = format_table(["v"], [[0.123456]], precision=3)
        assert "0.123" in table

    def test_nan_rendered_as_dash(self):
        table = format_table(["v"], [[float("nan")]])
        assert "-" in table.splitlines()[-1]

    def test_rows_from_dicts(self):
        rows = rows_from_dicts([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert rows == [[1, 2], [3, "-"]]
