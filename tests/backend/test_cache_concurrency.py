"""Multi-process compile-cache stress: concurrent writers, zero corruption.

Before the inter-process lock, two processes could interleave a read
with a concurrent replace of the same entry; a torn read counted as a
corrupt-entry eviction.  With the lock, an arbitrary mix of concurrent
readers and writers must finish with every query answered and the
eviction counter at exactly zero in every process.
"""

import multiprocessing

import pytest

from repro.core.backend import CompileCache, compile_model


def _hammer(root, worker_seed, n_iter, queue):
    """One worker: repeatedly compile-or-load two circuits via the cache."""
    try:
        from repro.circuits import suite
        from repro.circuits.examples import c17

        cache = CompileCache(root)
        circuits = [c17(), suite.load_circuit("alu")]
        for i in range(n_iter):
            circuit = circuits[(worker_seed + i) % len(circuits)]
            model = compile_model(circuit, backend="junction-tree", cache=cache)
            result = model.query()
            assert result.mean_activity() > 0
        queue.put(("ok", cache.stats()))
    except Exception as exc:  # pragma: no cover - only on regression
        queue.put(("error", f"{type(exc).__name__}: {exc}"))


@pytest.mark.parametrize("n_workers,n_iter", [(4, 6)])
def test_concurrent_processes_never_corrupt_the_cache(tmp_path, n_workers, n_iter):
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_hammer, args=(str(tmp_path), seed, n_iter, queue))
        for seed in range(n_workers)
    ]
    for proc in workers:
        proc.start()
    results = [queue.get(timeout=120) for _ in workers]
    for proc in workers:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    failures = [detail for status, detail in results if status != "ok"]
    assert not failures, failures

    stats = [detail for status, detail in results if status == "ok"]
    assert len(stats) == n_workers
    # The acceptance criterion: no worker ever saw a corrupt entry.
    assert sum(s["evictions"] for s in stats) == 0
    assert sum(s["hits"] + s["misses"] for s in stats) == n_workers * n_iter

    # The shared directory ends with exactly the two circuit artifacts,
    # both loadable.
    cache = CompileCache(tmp_path)
    entries = cache.entries()
    assert {e.circuit for e in entries} == {"c17", "alu"}
    for entry in entries:
        assert cache.get(entry.key) is not None
    assert cache.stats()["evictions"] == 0


def test_lock_is_reentrant_across_get_and_put(tmp_path):
    """Same-process sanity: lock acquire/release pairs leave no claim."""
    from repro.circuits.examples import c17

    cache = CompileCache(tmp_path)
    compile_model(c17(), backend="junction-tree", cache=cache)
    compile_model(c17(), backend="junction-tree", cache=cache)
    assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0}
    assert not (tmp_path / ".lock.claim").exists()
