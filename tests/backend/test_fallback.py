"""Graceful degradation through the facade's fallback chain."""

import pytest

from repro import obs
from repro.circuits.examples import c17
from repro.core.backend import estimate, register_backend
from repro.core.backend.base import Backend
from repro.core.backend.facade import DEFAULT_FALLBACK_CHAIN, _resolve_chain
from repro.core.backend.registry import _REGISTRY
from repro.core.inputs import IndependentInputs
from repro.errors import CliqueBudgetExceeded, CompileError, FallbackExhausted


class _AlwaysFails(Backend):
    """Registered-for-test backend that fails with a typed CompileError."""

    def __init__(self, name):
        self.name = name

    def compile(self, circuit, inputs=None, **options):
        raise CompileError(f"{self.name} cannot compile {circuit.name}")


class _UntypedCrash(Backend):
    def __init__(self, name):
        self.name = name

    def compile(self, circuit, inputs=None, **options):
        raise ValueError("untyped bug, not a capacity failure")


@pytest.fixture
def failing_backend():
    backend = _AlwaysFails("fails-for-test")
    register_backend(backend)
    yield backend
    _REGISTRY.pop(backend.name, None)


@pytest.fixture
def failing_backend_2():
    backend = _AlwaysFails("fails-for-test-2")
    register_backend(backend)
    yield backend
    _REGISTRY.pop(backend.name, None)


class TestChainResolution:
    def test_no_fallback_is_singleton(self):
        assert _resolve_chain("auto", None) == ("auto",)
        assert _resolve_chain("auto", False) == ("auto",)

    def test_true_appends_default_chain_deduped(self):
        chain = _resolve_chain("junction-tree", True)
        assert chain[0] == "junction-tree"
        assert chain == ("junction-tree",) + tuple(
            n for n in DEFAULT_FALLBACK_CHAIN if n != "junction-tree"
        )

    def test_string_and_sequence_forms(self):
        assert _resolve_chain("junction-tree", "enumeration") == (
            "junction-tree",
            "enumeration",
        )
        assert _resolve_chain("a", ["b", "c", "a"]) == ("a", "b", "c")


class TestDegradation:
    def test_budget_failure_advances_chain(self):
        result = estimate(
            c17(),
            IndependentInputs(0.5),
            backend="junction-tree",
            fallback=True,
            max_clique_states=4,  # impossible budget: JT must fail
        )
        assert len(result.fallbacks) >= 1
        failed, reason = result.fallbacks[0]
        assert failed == "junction-tree"
        assert "CliqueBudgetExceeded" in reason

    def test_no_fallback_raises_unwrapped(self):
        with pytest.raises(CliqueBudgetExceeded):
            estimate(
                c17(),
                backend="junction-tree",
                max_clique_states=4,
            )

    def test_successful_first_backend_records_nothing(self):
        result = estimate(c17(), backend="junction-tree", fallback=True)
        assert result.fallbacks == ()

    def test_untyped_errors_are_not_swallowed(self, failing_backend):
        crash = _UntypedCrash("crash-untyped-test")
        register_backend(crash)
        try:
            with pytest.raises(ValueError, match="untyped bug"):
                estimate(c17(), backend=crash.name, fallback="junction-tree")
        finally:
            _REGISTRY.pop(crash.name, None)

    def test_exhausted_chain_raises_with_cause(
        self, failing_backend, failing_backend_2
    ):
        with pytest.raises(FallbackExhausted) as info:
            estimate(
                c17(),
                backend=failing_backend.name,
                fallback=failing_backend_2.name,
            )
        assert isinstance(info.value.__cause__, CompileError)
        assert failing_backend.name in str(info.value)

    def test_options_unknown_to_fallback_are_dropped(self, failing_backend):
        # heuristic= means nothing to the enumeration backend; the
        # degradation step must not die on a TypeError for it.
        result = estimate(
            c17(),
            backend=failing_backend.name,
            fallback="enumeration",
            heuristic="min-fill",
        )
        assert result.fallbacks[0][0] == failing_backend.name
        assert result.mean_activity() > 0


class TestBudgetSeconds:
    def test_exhausted_budget_jumps_to_last_entry(self, failing_backend):
        result = estimate(
            c17(),
            backend="junction-tree",
            fallback=(failing_backend.name, "local-cone"),
            budget_seconds=0.0,  # already exhausted: skip straight to last
        )
        assert result.fallbacks == (("junction-tree", "budget exhausted"),)
        assert result.method == "local-cone"

    def test_generous_budget_changes_nothing(self):
        result = estimate(
            c17(), backend="junction-tree", fallback=True, budget_seconds=3600
        )
        assert result.fallbacks == ()


class TestObsCounter:
    def test_fallback_counter_increments(self):
        obs.enable()
        try:
            estimate(
                c17(),
                backend="junction-tree",
                fallback=True,
                max_clique_states=4,
            )
            snapshot = obs.get_metrics().snapshot()
            assert snapshot["counters"]["estimate.fallback"] >= 1
        finally:
            obs.disable()
            obs.reset()
