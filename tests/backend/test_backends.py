"""Backend protocol, registry, and facade behavior."""

import pytest

from repro import estimate
from repro.circuits import suite
from repro.circuits.examples import c17
from repro.core.backend import (
    Backend,
    CliqueBudgetExceeded,
    Method,
    UnknownBackendError,
    available_backends,
    compile_model,
    get_backend,
    register_backend,
)
from repro.core.backend.backends import EstimatorCompiledModel
from repro.core.estimator import SwitchingActivityEstimator
from repro.core.inputs import IndependentInputs
from repro.core.segmentation import SegmentedEstimator

BUILTIN_BACKENDS = [
    "auto",
    "enumeration",
    "independence",
    "junction-tree",
    "local-cone",
    "monte-carlo",
    "pairwise",
    "segmented",
    "simulation",
]


def test_available_backends_lists_builtins():
    assert available_backends() == BUILTIN_BACKENDS


def test_unknown_backend_raises():
    with pytest.raises(UnknownBackendError):
        get_backend("does-not-exist")


def test_junction_tree_matches_direct_estimator():
    circuit = c17()
    direct = SwitchingActivityEstimator(circuit).estimate()
    via_backend = estimate(circuit, backend="junction-tree")
    assert via_backend.method == Method.SINGLE_BN.value
    for line in circuit.lines:
        assert via_backend.switching(line) == direct.switching(line)


def test_segmented_matches_direct_estimator():
    circuit = suite.load_circuit("c432s")
    direct = SegmentedEstimator(circuit).estimate()
    via_backend = estimate(circuit, backend="segmented")
    assert via_backend.method == Method.SEGMENTED.value
    assert via_backend.segments == direct.segments
    for line in circuit.lines:
        assert via_backend.switching(line) == direct.switching(line)


def test_enumeration_matches_junction_tree_exactly():
    circuit = c17()
    jt = estimate(circuit, backend="junction-tree")
    enum = estimate(circuit, backend="enumeration")
    assert enum.method == Method.ENUMERATION.value
    for line in circuit.lines:
        assert enum.switching(line) == pytest.approx(jt.switching(line), abs=1e-12)


def test_auto_picks_single_bn_for_small_circuits():
    model = compile_model(c17(), backend="auto")
    assert isinstance(model.estimator, SwitchingActivityEstimator)


def test_auto_falls_back_to_segmented_on_budget():
    circuit = suite.load_circuit("c432s")
    model = compile_model(circuit, backend="auto")
    assert isinstance(model.estimator, SegmentedEstimator)


def test_auto_fallback_triggered_by_clique_budget():
    # A tiny budget forces even c17 through the segmentation fallback.
    model = compile_model(c17(), backend="auto", max_clique_states=4)
    assert isinstance(model.estimator, SegmentedEstimator)
    with pytest.raises(CliqueBudgetExceeded):
        compile_model(c17(), backend="junction-tree", max_clique_states=4)


@pytest.mark.parametrize("name", ["pairwise", "local-cone", "independence"])
def test_baseline_backends_share_the_estimate_surface(name):
    result = estimate(c17(), IndependentInputs(0.5), backend=name)
    assert result.method == Method.canonical(result.method)
    for line, dist in result.distributions.items():
        assert dist.shape == (4,)
        assert 0.0 <= result.switching(line) <= 1.0


def test_pairwise_backend_activities_match_baseline():
    from repro.baselines.pairwise import pairwise_switching

    circuit = c17()
    model = IndependentInputs(0.5)
    direct = pairwise_switching(circuit, model)
    via_backend = estimate(circuit, model, backend="pairwise")
    for line, activity in direct.activities.items():
        assert via_backend.switching(line) == activity


def test_query_updates_inputs():
    model = compile_model(c17(), backend="junction-tree")
    at_half = model.query(IndependentInputs(0.5))
    at_low = model.query(IndependentInputs(0.1))
    assert at_half.mean_activity() != at_low.mean_activity()
    direct = SwitchingActivityEstimator(c17(), IndependentInputs(0.1)).estimate()
    for line in at_low.distributions:
        assert at_low.switching(line) == pytest.approx(direct.switching(line), abs=1e-12)


def test_method_vocabulary_is_closed():
    values = {m.value for m in Method}
    assert Method.canonical("single-bn") == Method.SINGLE_BN.value
    with pytest.raises(ValueError):
        Method.canonical("not-a-method")
    # Every backend reports one of the enumerated method strings.
    for name in ("junction-tree", "segmented", "enumeration", "independence"):
        result = estimate(c17(), backend=name)
        assert result.method in values


def test_register_backend_rejects_duplicates_and_accepts_custom():
    class ConstantModel(EstimatorCompiledModel):
        pass

    class ConstantBackend(Backend):
        name = "constant-test"

        def compile(self, circuit, inputs=None, **options):
            estimator = SwitchingActivityEstimator(circuit, inputs)
            return ConstantModel(self.name, circuit, estimator.compile())

    with pytest.raises(ValueError):
        register_backend(get_backend("junction-tree"))
    register_backend(ConstantBackend(), replace=True)
    try:
        assert "constant-test" in available_backends()
        result = estimate(c17(), backend="constant-test")
        assert isinstance(result.mean_activity(), float)
    finally:
        from repro.core.backend import registry

        registry._REGISTRY.pop("constant-test", None)


def test_deprecated_estimator_alias_still_imports():
    with pytest.warns(DeprecationWarning):
        from repro.core.estimator import CliqueBudgetExceeded as aliased
    assert aliased is CliqueBudgetExceeded


def test_backend_name_threaded_into_spans():
    from repro import obs

    obs.enable()
    try:
        tracer = obs.get_tracer()
        with tracer.span("test.root"):
            estimate(c17(), backend="junction-tree")
        report = obs.build_report(meta={})
        spans = []

        def walk(node):
            spans.append(node)
            for child in node.get("children", []):
                walk(child)

        for root in report["spans"]:
            walk(root)
        compile_spans = [s for s in spans if s["name"] == "backend.compile"]
        query_spans = [s for s in spans if s["name"] == "backend.query"]
        assert compile_spans and query_spans
        assert compile_spans[0]["attributes"]["backend"] == "junction-tree"
        assert query_spans[0]["attributes"]["backend"] == "junction-tree"
    finally:
        obs.disable()
        obs.reset()


class TestQueryManyChunkErrors:
    """``query_many`` chunking must rebase ``ZeroBeliefError`` indices.

    The estimator only ever sees one chunk, so its ``batch_indices``
    are chunk-local; a failure in any chunk but the first used to be
    reported with the *wrong* scenario numbers.
    """

    def _model_with_failing_chunk(self, failing_global_index, chunk):
        from repro.errors import ZeroBeliefError

        model = compile_model(c17(), backend="junction-tree")
        real = model.estimator.estimate_many
        calls = {"start": 0}

        def flaky(models, **kwargs):
            start = calls["start"]
            calls["start"] += len(models)
            local = failing_global_index - start
            if 0 <= local < len(models):
                err = ZeroBeliefError(
                    f"cannot normalize a zero belief for batch "
                    f"elements [{local}]"
                )
                err.batch_indices = (local,)
                raise err
            return real(models, **kwargs)

        model.estimator.estimate_many = flaky
        return model

    def test_second_chunk_failure_reports_original_index(self):
        from repro.errors import ZeroBeliefError

        model = self._model_with_failing_chunk(failing_global_index=5, chunk=3)
        scenarios = [IndependentInputs(0.1 * (i + 1)) for i in range(7)]
        with pytest.raises(ZeroBeliefError) as excinfo:
            model.query_many(scenarios, batch_size=3)
        # Scenario 5 lives at local index 2 of chunk 2; the caller must
        # see 5, not 2.
        assert excinfo.value.batch_indices == (5,)
        assert "5" in str(excinfo.value)

    def test_first_chunk_failure_indices_unchanged(self):
        from repro.errors import ZeroBeliefError

        model = self._model_with_failing_chunk(failing_global_index=1, chunk=4)
        scenarios = [IndependentInputs(0.1 * (i + 1)) for i in range(8)]
        with pytest.raises(ZeroBeliefError) as excinfo:
            model.query_many(scenarios, batch_size=4)
        assert excinfo.value.batch_indices == (1,)
