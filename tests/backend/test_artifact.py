"""CompiledModel serialization: save/load round-trips exactly."""

import pickle

import pytest

from repro.circuits import suite
from repro.core.backend import (
    ARTIFACT_SCHEMA,
    ArtifactSchemaError,
    CompiledModel,
    compile_model,
)
from repro.core.inputs import IndependentInputs, TemporalInputs

#: (circuit, backend) pairs covering single-BN, segmented (with its
#: junction-tree and enumeration segment kinds), and whole-circuit
#: enumeration artifacts.
ROUND_TRIP_CASES = [
    ("c17", "junction-tree"),
    ("pcler8", "auto"),
    ("voter", "auto"),
    ("alu", "auto"),
    ("comp", "auto"),
    ("c17", "enumeration"),
    ("c432s", "segmented"),
]


@pytest.mark.parametrize("name,backend", ROUND_TRIP_CASES)
def test_save_load_round_trip_matches_fresh_compile(tmp_path, name, backend):
    circuit = suite.load_circuit(name)
    model = compile_model(circuit, backend=backend)
    fresh = model.query()

    path = tmp_path / f"{name}.repro.pkl"
    model.save(path)
    loaded = CompiledModel.load(path)
    replayed = loaded.query()

    assert replayed.method == fresh.method
    assert replayed.segments == fresh.segments
    assert set(replayed.distributions) == set(fresh.distributions)
    for line in fresh.distributions:
        assert replayed.switching(line) == pytest.approx(
            fresh.switching(line), abs=1e-12
        )


def test_loaded_model_accepts_new_inputs(tmp_path):
    circuit = suite.load_circuit("c17")
    model = compile_model(circuit, IndependentInputs(0.5), backend="junction-tree")
    path = tmp_path / "c17.repro.pkl"
    model.save(path)

    loaded = CompiledModel.load(path)
    at_low = loaded.query(IndependentInputs(0.2))
    fresh = compile_model(
        circuit, IndependentInputs(0.2), backend="junction-tree"
    ).query()
    for line in fresh.distributions:
        assert at_low.switching(line) == pytest.approx(
            fresh.switching(line), abs=1e-12
        )


def test_temporal_input_model_round_trips(tmp_path):
    circuit = suite.load_circuit("c17")
    inputs = TemporalInputs(p_one=0.5, activity=0.2)
    model = compile_model(circuit, inputs, backend="junction-tree")
    fresh = model.query()
    path = tmp_path / "c17t.repro.pkl"
    model.save(path)
    replayed = CompiledModel.load(path).query()
    for line in fresh.distributions:
        assert replayed.switching(line) == pytest.approx(
            fresh.switching(line), abs=1e-12
        )


def test_envelope_rejects_wrong_schema(tmp_path):
    circuit = suite.load_circuit("c17")
    model = compile_model(circuit, backend="junction-tree")
    data = model.to_bytes()
    envelope = pickle.loads(data)
    assert envelope["schema"] == ARTIFACT_SCHEMA

    envelope["schema"] = "repro.compiled/v0"
    with pytest.raises(ArtifactSchemaError):
        CompiledModel.from_bytes(pickle.dumps(envelope))


def test_from_bytes_rejects_garbage():
    with pytest.raises(ArtifactSchemaError):
        CompiledModel.from_bytes(b"not a pickle at all")


def test_read_envelope_reports_without_unpickling_payload():
    circuit = suite.load_circuit("c17")
    model = compile_model(circuit, backend="junction-tree")
    envelope = CompiledModel.read_envelope(model.to_bytes())
    assert envelope["backend"] == "junction-tree"
    assert envelope["circuit"] == "c17"
    assert isinstance(envelope["blob"], bytes)
