"""On-disk compile cache: keys, hits, eviction, obs counters."""

import pytest

from repro.circuits import suite
from repro.circuits.examples import c17
from repro.core.backend import (
    CompileCache,
    circuit_fingerprint,
    compile_model,
    default_cache_dir,
    input_structure_signature,
)
from repro.core.backend.cache import CACHE_DIR_ENV
from repro.core.inputs import CorrelatedGroupInputs, IndependentInputs, TemporalInputs


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"


def test_circuit_fingerprint_is_structural():
    a = c17()
    b = c17()
    assert circuit_fingerprint(a) == circuit_fingerprint(b)
    other = suite.load_circuit("alu")
    assert circuit_fingerprint(a) != circuit_fingerprint(other)


def test_input_signature_tracks_structure_not_values():
    circuit = c17()
    # Same structure, different values: interchangeable at compile time.
    assert input_structure_signature(
        IndependentInputs(0.5), circuit
    ) == input_structure_signature(IndependentInputs(0.1), circuit)
    # Same within temporal models too: activity is a value, not an edge.
    assert input_structure_signature(
        TemporalInputs(p_one=0.5, activity=0.2), circuit
    ) == input_structure_signature(TemporalInputs(p_one=0.3, activity=0.4), circuit)
    # Correlation groups add edges: different compile, different key.
    correlated = CorrelatedGroupInputs(groups=[circuit.inputs[:2]], rho=0.5)
    assert input_structure_signature(
        correlated, circuit
    ) != input_structure_signature(IndependentInputs(0.5), circuit)


def test_miss_then_hit_with_identical_results(tmp_path):
    cache = CompileCache(tmp_path)
    circuit = c17()

    first = compile_model(circuit, backend="junction-tree", cache=cache)
    assert first.cache_hit is False
    assert cache.stats() == {"hits": 0, "misses": 1, "evictions": 0}

    second = compile_model(circuit, backend="junction-tree", cache=cache)
    assert second.cache_hit is True
    assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0}

    a = first.query()
    b = second.query()
    for line in a.distributions:
        assert b.switching(line) == pytest.approx(a.switching(line), abs=1e-12)


def test_key_changes_with_backend_options_and_inputs(tmp_path):
    cache = CompileCache(tmp_path)
    circuit = c17()
    base = cache.key_for(circuit, "junction-tree", None, "")
    assert cache.key_for(circuit, "segmented", None, "") != base
    assert cache.key_for(circuit, "junction-tree", None, "budget=4") != base
    correlated = CorrelatedGroupInputs(groups=[circuit.inputs[:2]], rho=0.5)
    assert cache.key_for(circuit, "junction-tree", correlated, "") != base
    # Value-only input changes reuse the same artifact.
    assert cache.key_for(circuit, "junction-tree", IndependentInputs(0.3), "") == (
        cache.key_for(circuit, "junction-tree", IndependentInputs(0.9), "")
    )


def test_different_budgets_do_not_collide(tmp_path):
    cache = CompileCache(tmp_path)
    circuit = c17()
    compile_model(
        circuit, backend="junction-tree", cache=cache, max_clique_states=4 ** 10
    )
    tight = compile_model(
        circuit, backend="junction-tree", cache=cache, max_clique_states=4 ** 5
    )
    assert tight.cache_hit is False
    assert len(cache.entries()) == 2


def test_entries_and_clear(tmp_path):
    cache = CompileCache(tmp_path)
    compile_model(c17(), backend="junction-tree", cache=cache)
    compile_model(
        suite.load_circuit("alu"), backend="junction-tree", cache=cache
    )
    entries = cache.entries()
    assert {e.circuit for e in entries} == {"c17", "alu"}
    assert all(e.backend == "junction-tree" for e in entries)
    assert all(e.size_bytes > 0 for e in entries)
    assert cache.clear() == 2
    assert cache.entries() == []


def test_corrupt_entry_is_evicted_and_recompiled(tmp_path):
    cache = CompileCache(tmp_path)
    circuit = c17()
    model = compile_model(circuit, backend="junction-tree", cache=cache)
    # Overwrite the artifact with garbage: the next get must miss,
    # evict, and the facade must recompile.
    path = next(tmp_path.glob("*.repro.pkl"))
    path.write_bytes(b"corrupted")
    again = compile_model(circuit, backend="junction-tree", cache=cache)
    assert again.cache_hit is False
    assert again.query().mean_activity() == pytest.approx(
        model.query().mean_activity(), abs=1e-12
    )


def test_cache_counters_reach_obs_metrics(tmp_path):
    from repro import obs

    obs.enable()
    try:
        cache = CompileCache(tmp_path)
        compile_model(c17(), backend="junction-tree", cache=cache)
        compile_model(c17(), backend="junction-tree", cache=cache)
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["counters"]["cache.misses"] == 1
        assert snapshot["counters"]["cache.hits"] == 1
    finally:
        obs.disable()
        obs.reset()


def test_cache_spec_accepts_path_and_bool(tmp_path):
    model = compile_model(c17(), backend="junction-tree", cache=tmp_path)
    assert model.cache_hit is False
    assert list(tmp_path.glob("*.repro.pkl"))
    uncached = compile_model(c17(), backend="junction-tree", cache=None)
    assert uncached.cache_hit is None
