"""Unit and property tests for the Circuit netlist container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.examples import c17, full_adder_circuit, paper_circuit
from repro.circuits.gates import GateType
from repro.circuits.generate import random_layered_circuit
from repro.circuits.netlist import Circuit, CircuitError, Gate


def tiny_circuit():
    return Circuit(
        "tiny",
        ["a", "b"],
        [Gate("x", GateType.AND, ("a", "b")), Gate("y", GateType.NOT, ("x",))],
    )


class TestConstruction:
    def test_double_driver_rejected(self):
        with pytest.raises(CircuitError, match="driven twice"):
            Circuit(
                "bad",
                ["a"],
                [Gate("x", GateType.NOT, ("a",)), Gate("x", GateType.BUF, ("a",))],
            )

    def test_driving_an_input_rejected(self):
        with pytest.raises(CircuitError, match="driven by a gate"):
            Circuit("bad", ["a", "x"], [Gate("x", GateType.NOT, ("a",))])

    def test_undefined_source_rejected(self):
        with pytest.raises(CircuitError, match="undefined line"):
            Circuit("bad", ["a"], [Gate("x", GateType.AND, ("a", "ghost"))])

    def test_cycle_rejected(self):
        with pytest.raises(CircuitError, match="cycle"):
            Circuit(
                "bad",
                ["a"],
                [
                    Gate("x", GateType.AND, ("a", "y")),
                    Gate("y", GateType.NOT, ("x",)),
                ],
            )

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Circuit("bad", ["a", "a"], [])

    def test_undefined_output_rejected(self):
        with pytest.raises(CircuitError, match="undefined primary output"):
            Circuit("bad", ["a"], [], outputs=["nope"])

    def test_gate_without_inputs_rejected(self):
        with pytest.raises(ValueError):
            Gate("x", GateType.AND, ())

    def test_default_outputs_are_sinks(self):
        circuit = tiny_circuit()
        assert circuit.outputs == ["y"]


class TestStructure:
    def test_topological_order_inputs_first(self):
        circuit = c17()
        order = circuit.topological_order()
        assert order[: circuit.num_inputs] == circuit.inputs

    def test_topological_order_respects_dependencies(self):
        circuit = c17()
        position = {ln: i for i, ln in enumerate(circuit.topological_order())}
        for gate in circuit.gates.values():
            for src in gate.inputs:
                assert position[src] < position[gate.output]

    def test_levels(self):
        circuit = tiny_circuit()
        levels = circuit.levels()
        assert levels == {"a": 0, "b": 0, "x": 1, "y": 2}
        assert circuit.depth == 2

    def test_fanout(self):
        circuit = c17()
        fanout = circuit.fanout()
        assert sorted(fanout["11"]) == ["16", "19"]
        assert fanout["22"] == []

    def test_fanin_cone(self):
        circuit = c17()
        cone = circuit.fanin_cone("22")
        assert set(cone) == {"1", "2", "3", "6", "10", "11", "16", "22"}
        position = {ln: i for i, ln in enumerate(cone)}
        assert position["1"] < position["10"] < position["22"]

    def test_reconvergent_fanout_detected(self):
        # In c17, line 11 fans out to 16 and 19 which reconverge at 23.
        circuit = c17()
        assert "11" in circuit.reconvergent_fanout_lines()

    def test_no_reconvergence_in_tree(self):
        circuit = Circuit(
            "tree",
            ["a", "b", "c", "d"],
            [
                Gate("x", GateType.AND, ("a", "b")),
                Gate("y", GateType.OR, ("c", "d")),
                Gate("z", GateType.XOR, ("x", "y")),
            ],
        )
        assert circuit.reconvergent_fanout_lines() == []

    def test_stats(self):
        stats = c17().stats()
        assert stats == {"inputs": 5, "outputs": 2, "gates": 6, "lines": 11, "depth": 3}

    def test_driver_and_is_input(self):
        circuit = tiny_circuit()
        assert circuit.driver("x").gate_type is GateType.AND
        assert circuit.driver("a") is None
        assert circuit.is_input("a")
        assert not circuit.is_input("x")


class TestEvaluation:
    def test_c17_known_vector(self):
        circuit = c17()
        values = circuit.evaluate({"1": 0, "2": 0, "3": 0, "6": 0, "7": 0})
        # All-zero inputs: every first-level NAND outputs 1.
        assert values["10"] == 1 and values["11"] == 1
        assert values["22"] == evaluate_nand(values["10"], values["16"])

    def test_full_adder_exhaustive(self):
        circuit = full_adder_circuit()
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values = circuit.evaluate({"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert values["sum"] == total % 2
                    assert values["cout"] == total // 2

    def test_missing_input_raises(self):
        with pytest.raises(KeyError):
            tiny_circuit().evaluate({"a": 1})

    def test_vectorized_matches_scalar(self):
        circuit = paper_circuit()
        rng = np.random.default_rng(3)
        patterns = rng.integers(0, 2, size=(32, circuit.num_inputs), dtype=np.uint8)
        vec = circuit.evaluate_vectors(patterns)
        for k in range(32):
            scalar = circuit.evaluate(
                {name: int(patterns[k, j]) for j, name in enumerate(circuit.inputs)}
            )
            for line in circuit.lines:
                assert vec[line][k] == scalar[line]

    def test_vectorized_shape_validation(self):
        with pytest.raises(ValueError):
            tiny_circuit().evaluate_vectors(np.zeros((4, 3), dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**10))
    def test_random_circuit_vectorized_consistency(self, seed):
        circuit = random_layered_circuit(4, 10, seed=seed)
        rng = np.random.default_rng(seed)
        patterns = rng.integers(0, 2, size=(8, 4), dtype=np.uint8)
        vec = circuit.evaluate_vectors(patterns)
        for k in range(8):
            scalar = circuit.evaluate(
                {name: int(patterns[k, j]) for j, name in enumerate(circuit.inputs)}
            )
            for line in circuit.lines:
                assert vec[line][k] == scalar[line]


class TestTransformations:
    def test_subcircuit_cut_lines_become_inputs(self):
        circuit = c17()
        sub = circuit.subcircuit(["10", "16", "22"])
        assert set(sub.inputs) == {"10", "16"}
        assert set(sub.gates) == {"22"}

    def test_subcircuit_keeps_internal_gates(self):
        circuit = c17()
        lines = ["1", "3", "10"]
        sub = circuit.subcircuit(lines)
        assert set(sub.inputs) == {"1", "3"}
        assert sub.driver("10").gate_type is GateType.NAND

    def test_subcircuit_evaluation_matches_parent(self):
        circuit = c17()
        cone = circuit.fanin_cone("22")
        sub = circuit.subcircuit(cone)
        full = circuit.evaluate({"1": 1, "2": 0, "3": 1, "6": 0, "7": 1})
        sub_vals = sub.evaluate({name: full[name] for name in sub.inputs})
        assert sub_vals["22"] == full["22"]

    def test_renamed(self):
        circuit = tiny_circuit()
        renamed = circuit.renamed({"a": "alpha", "y": "out"})
        assert renamed.inputs == ["alpha", "b"]
        assert renamed.outputs == ["out"]
        values = renamed.evaluate({"alpha": 1, "b": 1})
        assert values["out"] == 0


def evaluate_nand(a, b):
    return 1 - (a & b)
