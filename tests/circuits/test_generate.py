"""Functional correctness tests for the circuit generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generate


def bits_of(value, width):
    return {i: (value >> i) & 1 for i in range(width)}


def word_inputs(prefix, value, width):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


class TestRippleCarryAdder:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_adds(self, a, b, cin):
        circuit = generate.ripple_carry_adder(4)
        values = circuit.evaluate(
            {**word_inputs("a", a, 4), **word_inputs("b", b, 4), "cin": cin}
        )
        result = sum(values[f"s{i}"] << i for i in range(4)) + (values["cout"] << 4)
        assert result == a + b + cin

    def test_width_validation(self):
        with pytest.raises(ValueError):
            generate.ripple_carry_adder(0)


class TestComparator:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_compares(self, a, b):
        circuit = generate.magnitude_comparator(8)
        values = circuit.evaluate({**word_inputs("a", a, 8), **word_inputs("b", b, 8)})
        assert values["a_gt_b"] == int(a > b)
        assert values["a_eq_b"] == int(a == b)


class TestVoter:
    @given(st.integers(0, 2**7 - 1))
    @settings(max_examples=40, deadline=None)
    def test_majority(self, votes):
        circuit = generate.majority_voter(7)
        values = circuit.evaluate({f"v{i}": (votes >> i) & 1 for i in range(7)})
        assert values["majority"] == int(bin(votes).count("1") > 3)

    def test_even_voters_rejected(self):
        with pytest.raises(ValueError):
            generate.majority_voter(4)


class TestParityTree:
    @given(st.integers(0, 2**6 - 1))
    @settings(max_examples=30, deadline=None)
    def test_parity(self, word):
        circuit = generate.parity_tree(6)
        values = circuit.evaluate({f"i{k}": (word >> k) & 1 for k in range(6)})
        assert values["parity"] == bin(word).count("1") % 2

    def test_odd_width(self):
        circuit = generate.parity_tree(5)
        values = circuit.evaluate({f"i{k}": 1 for k in range(5)})
        assert values["parity"] == 1


class TestDecoder:
    def test_one_hot(self):
        circuit = generate.decoder(3)
        for code in range(8):
            values = circuit.evaluate({f"s{k}": (code >> k) & 1 for k in range(3)})
            outs = [values[f"d{c}"] for c in range(8)]
            assert outs == [int(c == code) for c in range(8)]


class TestMuxTree:
    @given(st.integers(0, 2**8 - 1), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_selects(self, data, sel):
        circuit = generate.mux_tree(3)
        assignment = {f"d{k}": (data >> k) & 1 for k in range(8)}
        assignment.update({f"s{k}": (sel >> k) & 1 for k in range(3)})
        assert circuit.evaluate(assignment)["y"] == (data >> sel) & 1


class TestAlu:
    @pytest.mark.parametrize(
        "op, func",
        [
            (0, lambda a, b: a & b),
            (1, lambda a, b: a | b),
            (2, lambda a, b: a ^ b),
            (3, lambda a, b: (a + b) & 0xF),
        ],
    )
    def test_ops(self, op, func):
        circuit = generate.alu(4)
        for a, b in [(3, 5), (15, 1), (9, 9), (0, 0), (7, 12)]:
            assignment = {
                **word_inputs("a", a, 4),
                **word_inputs("b", b, 4),
                "op0": op & 1,
                "op1": (op >> 1) & 1,
            }
            values = circuit.evaluate(assignment)
            result = sum(values[f"y{i}"] << i for i in range(4))
            assert result == func(a, b), f"op={op} a={a} b={b}"

    def test_add_carry_out(self):
        circuit = generate.alu(4)
        assignment = {
            **word_inputs("a", 15, 4),
            **word_inputs("b", 1, 4),
            "op0": 1,
            "op1": 1,
        }
        assert circuit.evaluate(assignment)["cout"] == 1


class TestMultiplier:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_multiplies(self, a, b):
        circuit = generate.array_multiplier(4)
        values = circuit.evaluate({**word_inputs("a", a, 4), **word_inputs("b", b, 4)})
        product = sum(values[f"p{k}"] << k for k in range(8) if f"p{k}" in values)
        assert product == a * b


class TestCounter:
    @given(st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_increment(self, q, en):
        circuit = generate.counter_next_state(8)
        values = circuit.evaluate({**word_inputs("q", q, 8), "en": en})
        next_q = sum(values[f"nq{i}"] << i for i in range(8))
        expected = (q + en) % 256
        assert next_q == expected
        assert values["ovf"] == int(q + en == 256)


class TestMaxFlat:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_max(self, a, b):
        circuit = generate.max_flat(8)
        values = circuit.evaluate({**word_inputs("a", a, 8), **word_inputs("b", b, 8)})
        result = sum(values[f"m{i}"] << i for i in range(8))
        assert result == max(a, b)


class TestParityClearRegister:
    def test_clear_dominates(self):
        circuit = generate.parity_clear_register(4)
        assignment = {
            **word_inputs("q", 0xF, 4),
            **word_inputs("d", 0xF, 4),
            "ld": 1,
            "clr": 1,
        }
        values = circuit.evaluate(assignment)
        assert all(values[f"nq{i}"] == 0 for i in range(4))
        assert values["par"] == 0

    def test_load_selects_d(self):
        circuit = generate.parity_clear_register(4)
        assignment = {
            **word_inputs("q", 0x0, 4),
            **word_inputs("d", 0x5, 4),
            "ld": 1,
            "clr": 0,
        }
        values = circuit.evaluate(assignment)
        assert sum(values[f"nq{i}"] << i for i in range(4)) == 0x5
        assert values["par"] == 0  # two ones

    def test_hold_keeps_q(self):
        circuit = generate.parity_clear_register(4)
        assignment = {
            **word_inputs("q", 0x9, 4),
            **word_inputs("d", 0x6, 4),
            "ld": 0,
            "clr": 0,
        }
        values = circuit.evaluate(assignment)
        assert sum(values[f"nq{i}"] << i for i in range(4)) == 0x9


class TestRandomLayered:
    def test_deterministic(self):
        a = generate.random_layered_circuit(8, 40, seed=11)
        b = generate.random_layered_circuit(8, 40, seed=11)
        assert [str(g) for g in a.gates.values()] == [str(g) for g in b.gates.values()]

    def test_different_seeds_differ(self):
        a = generate.random_layered_circuit(8, 40, seed=11)
        b = generate.random_layered_circuit(8, 40, seed=12)
        assert [str(g) for g in a.gates.values()] != [str(g) for g in b.gates.values()]

    def test_requested_sizes(self):
        circuit = generate.random_layered_circuit(10, 55, seed=0)
        assert circuit.num_inputs == 10
        assert circuit.num_gates == 55

    def test_max_fanin_respected(self):
        circuit = generate.random_layered_circuit(8, 60, seed=3, max_fanin=2)
        assert all(g.arity <= 2 for g in circuit.gates.values())

    def test_evaluates(self):
        circuit = generate.random_layered_circuit(6, 30, seed=5)
        rng = np.random.default_rng(0)
        patterns = rng.integers(0, 2, size=(16, 6), dtype=np.uint8)
        values = circuit.evaluate_vectors(patterns)
        assert all(v.shape == (16,) for v in values.values())

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            generate.random_layered_circuit(1, 5, seed=0)
        with pytest.raises(ValueError):
            generate.random_layered_circuit(4, 0, seed=0)
