"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.circuits.examples import c17, paper_circuit
from repro.circuits.gates import GateType
from repro.circuits.verilog import (
    VerilogFormatError,
    parse_verilog,
    parse_verilog_file,
    to_verilog,
    write_verilog_file,
)

C17_VERILOG = """
// ISCAS c17 in structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
"""


class TestParsing:
    def test_parse_c17(self):
        circuit = parse_verilog(C17_VERILOG)
        assert circuit.name == "c17"
        assert circuit.num_inputs == 5
        assert circuit.num_gates == 6
        assert set(circuit.outputs) == {"N22", "N23"}
        assert all(g.gate_type is GateType.NAND for g in circuit.gates.values())

    def test_behaviour_matches_bench_c17(self):
        verilog = parse_verilog(C17_VERILOG)
        bench = c17()
        for a in (0, 1):
            for b in (0, 1):
                vector = {"1": a, "2": b, "3": 1, "6": 0, "7": a}
                v_vec = {f"N{k}": v for k, v in vector.items()}
                assert (
                    verilog.evaluate(v_vec)["N22"] == bench.evaluate(vector)["22"]
                )

    def test_block_comments_stripped(self):
        text = """
        module m (a, y); /* ports:
        multi-line */ input a; output y;
        not g (y, a);
        endmodule
        """
        circuit = parse_verilog(text)
        assert circuit.evaluate({"a": 0})["y"] == 1

    def test_anonymous_instances(self):
        text = "module m (a, b, y); input a, b; output y; and (y, a, b); endmodule"
        circuit = parse_verilog(text)
        assert circuit.driver("y").gate_type is GateType.AND

    def test_missing_module(self):
        with pytest.raises(VerilogFormatError, match="module"):
            parse_verilog("not a netlist")

    def test_missing_endmodule(self):
        with pytest.raises(VerilogFormatError, match="endmodule"):
            parse_verilog("module m (a); input a;")

    def test_unsupported_primitive(self):
        text = "module m (a, y); input a; output y; dff g (y, a); endmodule"
        with pytest.raises(VerilogFormatError, match="unsupported"):
            parse_verilog(text)

    def test_no_inputs(self):
        with pytest.raises(VerilogFormatError, match="inputs"):
            parse_verilog("module m (y); output y; endmodule")

    def test_too_few_ports(self):
        text = "module m (a, y); input a; output y; not g (y); endmodule"
        with pytest.raises(VerilogFormatError, match="ports"):
            parse_verilog(text)


class TestRoundTrip:
    def test_c17_round_trip(self):
        original = c17()
        rebuilt = parse_verilog(to_verilog(original))
        assert set(rebuilt.gates) == set(original.gates)
        vector = {"1": 1, "2": 0, "3": 1, "6": 1, "7": 0}
        assert rebuilt.evaluate(vector) == original.evaluate(vector)

    def test_paper_circuit_round_trip(self):
        original = paper_circuit()
        rebuilt = parse_verilog(to_verilog(original))
        assert rebuilt.num_gates == original.num_gates
        vector = {"1": 1, "2": 1, "3": 0, "4": 1}
        assert rebuilt.evaluate(vector)["9"] == original.evaluate(vector)["9"]

    def test_name_sanitized(self):
        circuit = paper_circuit()  # name contains a dash
        assert "module paper_fig1" in to_verilog(circuit)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "c17.v"
        write_verilog_file(c17(), path)
        rebuilt = parse_verilog_file(path)
        assert rebuilt.num_gates == 6
