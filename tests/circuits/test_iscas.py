"""Functional tests for the ISCAS-85 stand-in builders."""

import pytest

from repro.circuits.iscas import (
    merge_circuits,
    priority_controller,
    sec_circuit,
    share_bus,
)
from repro.circuits.generate import alu, magnitude_comparator


class TestPriorityController:
    def test_io_counts(self):
        circuit = priority_controller(27, 9)
        assert circuit.num_inputs == 36

    def test_highest_priority_wins(self):
        circuit = priority_controller(8, 4)
        # Requests 2 and 5 raised, all enables on: channel 2 wins.
        assignment = {f"r{i}": int(i in (2, 5)) for i in range(8)}
        assignment.update({f"e{i}": 1 for i in range(4)})
        values = circuit.evaluate(assignment)
        channel = sum(values[f"id{b}"] << b for b in range(3))
        assert channel == 2
        assert values["valid"] == 1

    def test_disabled_channel_skipped(self):
        circuit = priority_controller(8, 8)
        assignment = {f"r{i}": int(i in (2, 5)) for i in range(8)}
        assignment.update({f"e{i}": int(i != 2) for i in range(8)})
        values = circuit.evaluate(assignment)
        channel = sum(values[f"id{b}"] << b for b in range(3))
        assert channel == 5

    def test_no_requests_invalid(self):
        circuit = priority_controller(8, 4)
        assignment = {f"r{i}": 0 for i in range(8)}
        assignment.update({f"e{i}": 1 for i in range(4)})
        assert circuit.evaluate(assignment)["valid"] == 0


class TestSecCircuit:
    def _encode(self, circuit, data_word, data_bits, check_bits):
        """Compute consistent check bits for a data word using the same
        H-matrix columns the circuit uses."""
        from repro.circuits.iscas import _parity_columns

        columns = _parity_columns(data_bits, check_bits)
        checks = []
        for j in range(check_bits):
            parity = 0
            for i in range(data_bits):
                if (columns[i] >> j) & 1:
                    parity ^= (data_word >> i) & 1
            checks.append(parity)
        return checks

    @pytest.mark.parametrize("expand", [False, True])
    def test_clean_word_passes_through(self, expand):
        data_bits, check_bits = 8, 5
        circuit = sec_circuit(data_bits, check_bits, expand_xor=expand, name="sec")
        word = 0b10110010
        checks = self._encode(circuit, word, data_bits, check_bits)
        assignment = {f"d{i}": (word >> i) & 1 for i in range(data_bits)}
        assignment.update({f"c{j}": checks[j] for j in range(check_bits)})
        assignment["en"] = 1
        values = circuit.evaluate(assignment)
        out = sum(values[f"o{i}"] << i for i in range(data_bits))
        assert out == word

    @pytest.mark.parametrize("flipped_bit", [0, 3, 7])
    def test_single_error_corrected(self, flipped_bit):
        data_bits, check_bits = 8, 5
        circuit = sec_circuit(data_bits, check_bits, name="sec")
        word = 0b01011100
        checks = self._encode(circuit, word, data_bits, check_bits)
        corrupted = word ^ (1 << flipped_bit)
        assignment = {f"d{i}": (corrupted >> i) & 1 for i in range(data_bits)}
        assignment.update({f"c{j}": checks[j] for j in range(check_bits)})
        assignment["en"] = 1
        values = circuit.evaluate(assignment)
        out = sum(values[f"o{i}"] << i for i in range(data_bits))
        assert out == word

    def test_correction_disabled(self):
        data_bits, check_bits = 8, 5
        circuit = sec_circuit(data_bits, check_bits, name="sec")
        word = 0b01011100
        checks = self._encode(circuit, word, data_bits, check_bits)
        corrupted = word ^ 1
        assignment = {f"d{i}": (corrupted >> i) & 1 for i in range(data_bits)}
        assignment.update({f"c{j}": checks[j] for j in range(check_bits)})
        assignment["en"] = 0
        values = circuit.evaluate(assignment)
        out = sum(values[f"o{i}"] << i for i in range(data_bits))
        assert out == corrupted  # passes through uncorrected

    def test_expand_xor_increases_gate_count(self):
        compact = sec_circuit(16, 5, expand_xor=False, name="a")
        expanded = sec_circuit(16, 5, expand_xor=True, name="b")
        assert expanded.num_gates > compact.num_gates

    def test_too_few_check_bits(self):
        with pytest.raises(ValueError):
            sec_circuit(64, 4, name="bad")


class TestMergeCircuits:
    def test_disjoint_merge(self):
        merged = merge_circuits(
            "m", [("x", alu(2)), ("y", magnitude_comparator(2))]
        )
        assert merged.num_inputs == alu(2).num_inputs + magnitude_comparator(2).num_inputs
        assert merged.num_gates == alu(2).num_gates + magnitude_comparator(2).num_gates

    def test_shared_bus(self):
        shared = {}
        shared.update(share_bus("x", ["a0", "a1"], "A"))
        shared.update(share_bus("y", ["a0", "a1"], "A"))
        merged = merge_circuits(
            "m", [("x", alu(2)), ("y", magnitude_comparator(2))], shared
        )
        # The two a-buses collapse onto A0/A1.
        assert "A0" in merged.inputs and "A1" in merged.inputs
        assert "x_a0" not in merged.inputs and "y_a0" not in merged.inputs
        total = alu(2).num_inputs + magnitude_comparator(2).num_inputs
        assert merged.num_inputs == total - 2

    def test_shared_bus_behaviour(self):
        """Both blocks must see the same shared values."""
        shared = {}
        shared.update(share_bus("x", ["a0", "a1"], "A"))
        shared.update(share_bus("y", ["a0", "a1"], "A"))
        merged = merge_circuits(
            "m", [("x", alu(2)), ("y", magnitude_comparator(2))], shared
        )
        assignment = {name: 0 for name in merged.inputs}
        assignment.update({"A0": 1, "A1": 1, "y_b0": 0, "y_b1": 0})
        values = merged.evaluate(assignment)
        # comparator sees a=3 > b=0
        assert values["y_a_gt_b"] == 1

    def test_outputs_prefixed(self):
        merged = merge_circuits("m", [("x", alu(2))])
        assert all(out.startswith("x_") for out in merged.outputs)
