"""Malformed ``.bench`` fixtures must be rejected with typed errors.

Each fixture under ``tests/circuits/fixtures/`` captures one historical
parser gap: duplicate gate definitions, duplicate ``INPUT``
declarations, operands that are never defined, ``OUTPUT`` of undefined
lines, gate-driven primary inputs, and combinational cycles all used to
slip through parsing and fail (or worse, silently mis-estimate) deep in
the pipeline.
"""

from pathlib import Path

import pytest

from repro.circuits.bench import parse_bench, parse_bench_file
from repro.errors import (
    BenchFormatError,
    CombinationalCycleError,
    ValidationError,
)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.mark.parametrize(
    "fixture, match",
    [
        ("dup_gate.bench", r"line 6: gate output 'y' already defined at line 5"),
        ("dup_input.bench", r"line 3: INPUT 'a' already defined at line 2"),
        ("input_driven.bench", r"line 5: gate output 'b' already defined at line 3"),
        ("undefined_operand.bench", r"line 4: gate 'y' reads 'ghost', which is never defined"),
        ("undefined_output.bench", r"line 3: OUTPUT\(ghost\) is never defined"),
    ],
)
def test_malformed_fixture_raises_bench_format_error(fixture, match):
    with pytest.raises(BenchFormatError, match=match):
        parse_bench_file(FIXTURES / fixture)


def test_cycle_fixture_raises_cycle_error():
    with pytest.raises(CombinationalCycleError, match="combinational cycle"):
        parse_bench_file(FIXTURES / "cycle.bench")


def test_every_fixture_is_covered():
    """A new fixture without a matching test case should fail loudly."""
    covered = {
        "dup_gate.bench",
        "dup_input.bench",
        "input_driven.bench",
        "undefined_operand.bench",
        "undefined_output.bench",
        "cycle.bench",
    }
    assert {p.name for p in FIXTURES.glob("*.bench")} == covered


def test_all_fixtures_rejected_with_typed_error():
    """Acceptance sweep: no fixture parses, none dies untyped."""
    for path in FIXTURES.glob("*.bench"):
        with pytest.raises(ValidationError):
            parse_bench_file(path)


def test_duplicate_gate_reported_at_second_definition():
    text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"
    with pytest.raises(BenchFormatError, match="line 4.*already defined at line 3"):
        parse_bench(text, "dup")


def test_dff_output_collision_rejected():
    text = "INPUT(a)\nOUTPUT(q)\nq = NOT(a)\nq = DFF(a)\n"
    with pytest.raises(BenchFormatError, match="already defined"):
        parse_bench(text, "dffdup")


def test_operand_defined_later_is_accepted():
    """Forward references are legal .bench; only never-defined operands fail."""
    text = "INPUT(a)\nOUTPUT(y)\ny = NOT(mid)\nmid = BUF(a)\n"
    circuit = parse_bench(text, "fwd")
    assert set(circuit.gates) == {"y", "mid"}
