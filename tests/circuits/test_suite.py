"""Tests for the Table 1 benchmark suite registry."""

import pytest

from repro.circuits import suite


class TestSuite:
    def test_full_suite_has_paper_row_count(self):
        # 19 Table 1 rows plus the embedded c17 stand-alone row = 20 names.
        assert len(suite.FULL_SUITE) == 20

    def test_small_suite_is_subset(self):
        assert set(suite.SMALL_SUITE) <= set(suite.FULL_SUITE)

    def test_c17_is_not_a_standin(self):
        assert not suite.is_standin("c17")

    def test_synthetic_circuits_flagged(self):
        assert suite.is_standin("c432s")
        assert suite.is_standin("voter")

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            suite.load_circuit("c9999")
        with pytest.raises(KeyError):
            suite.is_standin("c9999")

    def test_small_suite_builds(self):
        circuits = suite.benchmark_suite(suite.SMALL_SUITE)
        assert set(circuits) == set(suite.SMALL_SUITE)
        for circuit in circuits.values():
            assert circuit.num_gates > 0

    def test_sizes_track_paper(self):
        # Stand-ins keep the published primary-input counts and land
        # within a small factor of the published gate counts.
        published = {
            "c432s": (36, 160),
            "c499s": (41, 202),
            "c1355s": (41, 546),
            "c2670s": (157, 1193),
            "c7552s": (207, 3512),
        }
        for name, (pi, gates) in published.items():
            circuit = suite.load_circuit(name)
            assert abs(circuit.num_inputs - pi) <= 3, name
            assert gates / 3 <= circuit.num_gates <= gates * 3, name
        comp = suite.load_circuit("comp")
        assert comp.num_inputs == 32

    def test_deterministic_builds(self):
        a = suite.load_circuit("c432s")
        b = suite.load_circuit("c432s")
        assert [str(g) for g in a.gates.values()] == [str(g) for g in b.gates.values()]

    def test_available_circuits_order(self):
        names = suite.available_circuits()
        assert names[0] == "c17"
        # Table 1 row order first, then the segmentation scale tier.
        assert names[: len(suite.FULL_SUITE)] == suite.FULL_SUITE
        assert names[len(suite.FULL_SUITE):] == suite.SCALE_SUITE
