"""Unit and property tests for the Boolean gate library."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    GATE_ALIASES,
    GateType,
    NARY_GATES,
    UNARY_GATES,
    controlling_value,
    evaluate_gate,
    gate_truth_table,
    is_inverting,
    resolve_gate_type,
)


class TestScalarEvaluation:
    @pytest.mark.parametrize(
        "gate_type, inputs, expected",
        [
            (GateType.AND, (0, 0), 0),
            (GateType.AND, (1, 0), 0),
            (GateType.AND, (1, 1), 1),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.XOR, (0, 1), 1),
            (GateType.XOR, (1, 1), 0),
            (GateType.XNOR, (1, 1), 1),
            (GateType.XNOR, (0, 1), 0),
            (GateType.NOT, (0,), 1),
            (GateType.NOT, (1,), 0),
            (GateType.BUF, (1,), 1),
            (GateType.BUF, (0,), 0),
        ],
    )
    def test_two_input_truth_tables(self, gate_type, inputs, expected):
        assert evaluate_gate(gate_type, inputs) == expected

    def test_three_input_and(self):
        assert evaluate_gate(GateType.AND, (1, 1, 1)) == 1
        assert evaluate_gate(GateType.AND, (1, 0, 1)) == 0

    def test_three_input_xor_is_parity(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert evaluate_gate(GateType.XOR, (a, b, c)) == (a + b + c) % 2

    def test_bools_accepted(self):
        assert evaluate_gate(GateType.AND, (True, True)) == 1
        assert evaluate_gate(GateType.OR, (False, False)) == 0

    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, (0, 1))
        with pytest.raises(ValueError):
            evaluate_gate(GateType.BUF, ())

    def test_nary_needs_inputs(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, ())


class TestVectorizedEvaluation:
    @pytest.mark.parametrize("gate_type", sorted(NARY_GATES, key=lambda g: g.value))
    def test_vectorized_matches_scalar(self, gate_type):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 2, size=64, dtype=np.uint8)
        b = rng.integers(0, 2, size=64, dtype=np.uint8)
        vec = evaluate_gate(gate_type, (a, b))
        for k in range(64):
            assert vec[k] == evaluate_gate(gate_type, (int(a[k]), int(b[k])))

    def test_vector_output_dtype(self):
        a = np.array([0, 1, 1], dtype=np.uint8)
        out = evaluate_gate(GateType.NOT, (a,))
        assert out.dtype == np.uint8
        assert list(out) == [1, 0, 0]


class TestTruthTables:
    def test_truth_table_length(self):
        assert len(gate_truth_table(GateType.AND, 3)) == 8

    def test_and_table(self):
        assert gate_truth_table(GateType.AND, 2) == [0, 0, 0, 1]

    def test_nand_is_not_and(self):
        and_tt = gate_truth_table(GateType.AND, 2)
        nand_tt = gate_truth_table(GateType.NAND, 2)
        assert [1 - v for v in and_tt] == nand_tt

    @given(st.sampled_from(sorted(NARY_GATES, key=lambda g: g.value)), st.integers(2, 4))
    def test_tables_are_binary(self, gate_type, arity):
        assert set(gate_truth_table(gate_type, arity)) <= {0, 1}


class TestDeMorganProperties:
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=5))
    def test_nand_is_or_of_complements(self, bits):
        lhs = evaluate_gate(GateType.NAND, bits)
        rhs = evaluate_gate(GateType.OR, [1 - b for b in bits])
        assert lhs == rhs

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=5))
    def test_nor_is_and_of_complements(self, bits):
        lhs = evaluate_gate(GateType.NOR, bits)
        rhs = evaluate_gate(GateType.AND, [1 - b for b in bits])
        assert lhs == rhs

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=6))
    def test_xnor_complements_xor(self, bits):
        assert evaluate_gate(GateType.XNOR, bits) == 1 - evaluate_gate(GateType.XOR, bits)


class TestMetadata:
    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1
        assert controlling_value(GateType.XOR) is None
        assert controlling_value(GateType.NOT) is None

    def test_controlling_value_controls(self):
        for gate_type in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            cv = controlling_value(gate_type)
            pinned = evaluate_gate(gate_type, (cv, 0))
            assert evaluate_gate(gate_type, (cv, 1)) == pinned

    def test_inverting_flags(self):
        assert is_inverting(GateType.NAND)
        assert is_inverting(GateType.NOT)
        assert not is_inverting(GateType.AND)
        assert not is_inverting(GateType.BUF)

    def test_aliases_resolve(self):
        assert resolve_gate_type("BUFF") is GateType.BUF
        assert resolve_gate_type("inv") is GateType.NOT
        assert resolve_gate_type(" nand ") is GateType.NAND

    def test_unknown_alias_raises(self):
        with pytest.raises(ValueError):
            resolve_gate_type("MAJ3")

    def test_alias_table_covers_all_types(self):
        assert set(GATE_ALIASES.values()) == set(GateType)

    def test_unary_and_nary_partition(self):
        assert UNARY_GATES | NARY_GATES == set(GateType)
        assert not UNARY_GATES & NARY_GATES
