"""Tests for the ISCAS .bench parser and writer."""

import pytest

from repro.circuits.bench import (
    BenchFormatError,
    parse_bench,
    parse_bench_file,
    to_bench,
    write_bench_file,
)
from repro.circuits.examples import C17_BENCH, c17
from repro.circuits.gates import GateType


class TestParsing:
    def test_parse_c17(self):
        circuit = parse_bench(C17_BENCH, name="c17")
        assert circuit.num_inputs == 5
        assert circuit.num_outputs == 2
        assert circuit.num_gates == 6
        assert all(g.gate_type is GateType.NAND for g in circuit.gates.values())

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        INPUT(a)

        INPUT(b)
        OUTPUT(y)   # trailing comment
        y = AND(a, b)
        """
        circuit = parse_bench(text)
        assert circuit.inputs == ["a", "b"]
        assert circuit.outputs == ["y"]

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = nand(a, a)\n"
        circuit = parse_bench(text)
        assert circuit.driver("y").gate_type is GateType.NAND

    def test_buff_alias(self):
        circuit = parse_bench("INPUT(a)\ny = BUFF(a)\n")
        assert circuit.driver("y").gate_type is GateType.BUF

    def test_dff_scan_conversion(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        q = DFF(d)
        d = AND(a, q)
        y = NOT(q)
        """
        circuit = parse_bench(text)
        # FF output q becomes a pseudo-input, FF input d a pseudo-output.
        assert "q" in circuit.inputs
        assert "d" in circuit.outputs

    def test_garbage_line_raises(self):
        with pytest.raises(BenchFormatError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_empty_operands_raise(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\ny = AND()\n")

    def test_no_inputs_raises(self):
        with pytest.raises(BenchFormatError, match="no INPUT"):
            parse_bench("# nothing here\n")


class TestRoundTrip:
    def test_c17_round_trips(self):
        original = c17()
        rebuilt = parse_bench(to_bench(original), name="c17")
        assert rebuilt.inputs == original.inputs
        assert set(rebuilt.outputs) == set(original.outputs)
        assert set(rebuilt.gates) == set(original.gates)
        for line, gate in original.gates.items():
            other = rebuilt.driver(line)
            assert other.gate_type is gate.gate_type
            assert other.inputs == gate.inputs

    def test_round_trip_preserves_behaviour(self):
        original = c17()
        rebuilt = parse_bench(to_bench(original))
        vector = {"1": 1, "2": 0, "3": 1, "6": 1, "7": 0}
        assert original.evaluate(vector) == rebuilt.evaluate(vector)

    def test_buf_serialized_as_buff(self):
        circuit = parse_bench("INPUT(a)\ny = BUFF(a)\n")
        assert "BUFF(a)" in to_bench(circuit)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "c17.bench"
        write_bench_file(c17(), path)
        rebuilt = parse_bench_file(path)
        assert rebuilt.name == "c17"
        assert rebuilt.num_gates == 6
