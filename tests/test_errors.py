"""The consolidated ``repro.errors`` hierarchy and its compat shims."""

import warnings

import pytest

from repro import errors


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_validation_branch(self):
        for cls in (
            errors.CircuitError,
            errors.DuplicateDefinitionError,
            errors.UndefinedLineError,
            errors.CombinationalCycleError,
            errors.BenchFormatError,
        ):
            assert issubclass(cls, errors.ValidationError)
            # ValidationError kept its historical ValueError ancestry.
            assert issubclass(cls, ValueError)

    def test_compile_branch(self):
        for cls in (
            errors.CliqueBudgetExceeded,
            errors.SegmentTooWide,
            errors.FallbackExhausted,
        ):
            assert issubclass(cls, errors.CompileError)
            assert issubclass(cls, RuntimeError)

    def test_input_model_error_is_value_error(self):
        assert issubclass(errors.InputModelError, ValueError)

    def test_zero_belief_error_keeps_zero_division_ancestry(self):
        assert issubclass(errors.ZeroBeliefError, errors.PropagationError)
        assert issubclass(errors.ZeroBeliefError, ZeroDivisionError)

    def test_key_errors_print_unquoted(self):
        # KeyError.__str__ repr-quotes its argument; the overrides keep
        # CLI one-liners readable.
        assert str(errors.UnknownCircuitError("no such circuit")) == "no such circuit"
        assert str(errors.UnknownBackendError("no such backend")) == "no such backend"
        assert issubclass(errors.UnknownCircuitError, KeyError)
        assert issubclass(errors.UnknownBackendError, KeyError)


class TestHistoricalLocations:
    """Old import paths must keep resolving to the same objects."""

    def test_bench_module_reexports(self):
        from repro.circuits import bench

        assert bench.BenchFormatError is errors.BenchFormatError

    def test_netlist_module_reexports(self):
        from repro.circuits import netlist

        assert netlist.CircuitError is errors.CircuitError

    def test_enumeration_module_reexports(self):
        from repro.core import enumeration

        assert enumeration.SegmentTooWide is errors.SegmentTooWide

    def test_backend_errors_module_reexports(self):
        from repro.core.backend import errors as backend_errors

        assert backend_errors.CliqueBudgetExceeded is errors.CliqueBudgetExceeded
        assert backend_errors.ArtifactSchemaError is errors.ArtifactSchemaError
        assert backend_errors.UnknownBackendError is errors.UnknownBackendError

    def test_junction_module_reexports(self):
        from repro.bayesian import junction

        assert junction.CliqueBudgetExceeded is errors.CliqueBudgetExceeded

    def test_package_root_reexports(self):
        import repro

        assert repro.ValidationError is errors.ValidationError
        assert repro.CompileError is errors.CompileError
        assert repro.InputModelError is errors.InputModelError
        assert repro.PropagationError is errors.PropagationError
        assert repro.ReproError is errors.ReproError


class TestDeprecatedAliases:
    def test_estimator_alias_warns_and_is_identical(self):
        import repro.core.estimator as estimator

        with pytest.warns(DeprecationWarning, match="repro.core.estimator"):
            alias = estimator.CliqueBudgetExceeded
        assert alias is errors.CliqueBudgetExceeded

    def test_estimator_alias_still_catches(self):
        """An except clause on the alias catches the canonical raise."""
        import repro.core.estimator as estimator

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            alias = estimator.CliqueBudgetExceeded
        with pytest.raises(alias):
            raise errors.CliqueBudgetExceeded("budget")

    def test_unknown_attribute_still_raises(self):
        import repro.core.estimator as estimator

        with pytest.raises(AttributeError):
            estimator.NoSuchName
