"""Integration tests for the experiment harness and CLI."""

from repro.experiments.ablations import (
    ablate_compile_vs_propagate,
    ablate_input_models,
    ablate_segmentation,
    ablate_triangulation,
)
from repro.experiments.figures import figure_walkthrough
from repro.experiments.table1 import make_estimator, run_table1
from repro.experiments.table2 import run_table2


class TestTable1:
    def test_small_rows(self):
        rows = run_table1(["c17", "comp"], n_pairs=20_000, seed=1)
        assert [r["circuit"] for r in rows] == ["c17", "comp"]
        for row in rows:
            assert row["mu_abs_err"] < 0.02
            assert row["sigma_err"] < 0.05
            assert row["update_s"] > 0
            assert row["total_s"] > row["update_s"] / 10

    def test_c17_is_single_segment_and_near_exact(self):
        row = run_table1(["c17"], n_pairs=50_000, seed=0)[0]
        assert row["segments"] == 1
        # Single-BN estimation is exact; residual is simulation noise.
        assert row["mu_abs_err"] < 0.01
        assert row["pct_err"] < 2.0

    def test_make_estimator_picks_segmented_for_large(self):
        from repro.circuits import suite
        from repro.core.segmentation import SegmentedEstimator

        circuit = suite.load_circuit("c432s")
        estimator = make_estimator(circuit)
        assert isinstance(estimator, SegmentedEstimator)

    def test_make_estimator_picks_single_for_small(self):
        from repro.circuits import suite
        from repro.core.estimator import SwitchingActivityEstimator

        circuit = suite.load_circuit("c17")
        estimator = make_estimator(circuit)
        assert isinstance(estimator, SwitchingActivityEstimator)


class TestTable2:
    def test_methods_and_ordering(self):
        rows = run_table2(["c17"], n_pairs=30_000, seed=2)
        methods = {r["method"] for r in rows}
        assert methods == {
            "bayesian-network",
            "pairwise",
            "local-cone",
            "independence",
        }
        by_method = {r["method"]: r for r in rows}
        # The headline shape: the exact BN beats the approximations
        # (up to simulation noise, which the tolerance absorbs).
        assert (
            by_method["bayesian-network"]["mu_abs_err"]
            <= by_method["independence"]["mu_abs_err"] + 1e-3
        )

    def test_bn_is_most_accurate_on_reconvergent_circuit(self):
        rows = run_table2(["c432s"], n_pairs=30_000, seed=0)
        by_method = {r["method"]: r for r in rows}
        assert (
            by_method["bayesian-network"]["mu_abs_err"]
            < by_method["independence"]["mu_abs_err"]
        )


class TestFigures:
    def test_walkthrough_matches_paper(self):
        data = figure_walkthrough()
        assert ("1", "5") in data["lidag_edges"]
        assert ("7", "9") in data["lidag_edges"]
        # The moral graph marries exactly the four parent pairs.
        assert data["marriages"] == [("1", "2"), ("3", "4"), ("5", "6"), ("7", "8")]
        # One fill-in breaks the 4-6-7-8 square (either chord is valid).
        assert len(data["fill_ins"]) == 1
        assert set(data["fill_ins"][0]) in ({"4", "7"}, {"6", "8"})
        # Six 3-variable cliques, as in the paper's Figure 4.
        assert all(len(c) == 3 for c in data["cliques"])
        assert data["junction_tree"].check_running_intersection()

    def test_factorization_string(self):
        data = figure_walkthrough()
        assert "P(x9|x7,x8)" in data["factorization"]
        assert "P(x5|x1,x2)" in data["factorization"]


class TestAblations:
    def test_triangulation(self):
        rows = ablate_triangulation(["c17", "pcler8"])
        assert len(rows) == 4
        heuristics = {r["heuristic"] for r in rows}
        assert heuristics == {"min_fill", "min_degree"}

    def test_segmentation(self):
        rows = ablate_segmentation("alu", n_pairs=10_000)
        assert len(rows) == 8
        assert {r["boundary"] for r in rows} == {"independent", "tree"}

    def test_compile_vs_propagate(self):
        rows = ablate_compile_vs_propagate(["c17", "alu"], n_statistics=3)
        for row in rows:
            assert row["mean_propagate_s"] > 0
            assert row["compile_s"] > 0

    def test_input_models(self):
        rows = ablate_input_models("alu", n_pairs=20_000)
        assert len(rows) == 4
        for row in rows:
            assert row["mu_abs_err"] < 0.02
        # Lower input activity must lower circuit activity.
        by_label = {r["input_model"]: r for r in rows}
        assert (
            by_label["temporal a=0.1"]["mean_activity"]
            < by_label["temporal a=0.4"]["mean_activity"]
        )


class TestCli:
    def test_estimate_command(self, capsys):
        from repro.cli import main

        assert main(["estimate", "--circuit", "c17"]) == 0
        out = capsys.readouterr().out
        assert "mean switching activity" in out

    def test_figures_command(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_table1_command_subset(self, capsys):
        from repro.cli import main

        assert main(["table1", "--circuits", "c17", "--pairs", "5000"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "sigma_err" in out
