"""The cross-backend differential fuzz harness."""

import json

import numpy as np
import pytest

from repro.circuits.bench import parse_bench_file
from repro.core.backend import register_backend
from repro.core.backend.base import Backend, CompiledModel
from repro.core.backend.registry import _REGISTRY
from repro.core.estimator import SwitchingEstimate, exact_switching_by_enumeration
from repro.testing import (
    input_model_from_json,
    input_model_to_json,
    make_case,
    run_fuzz,
)
from repro.errors import ReproError
from repro.testing.differential import parse_backend_spec, restrict_model_spec


class TestCaseGeneration:
    def test_deterministic(self):
        c1, s1 = make_case(7)
        c2, s2 = make_case(7)
        assert c1.inputs == c2.inputs
        assert [str(c1.driver(g)) for g in c1.gates] == [
            str(c2.driver(g)) for g in c2.gates
        ]
        assert s1 == s2

    def test_all_model_kinds_appear(self):
        kinds = {make_case(seed)[1]["kind"] for seed in range(8)}
        assert kinds == {"independent", "correlated", "trace", "temporal"}

    def test_respects_bounds(self):
        for seed in range(8):
            circuit, _ = make_case(seed, max_gates=15, max_inputs=4)
            assert circuit.num_inputs <= 4
            assert circuit.num_gates <= 15


class TestModelJsonRoundTrip:
    @pytest.mark.parametrize("seed", range(4))  # one seed per model kind
    def test_round_trip_preserves_marginals(self, seed):
        circuit, spec = make_case(seed, max_gates=10, max_inputs=4)
        doc = json.loads(json.dumps(input_model_to_json(spec)))
        model = input_model_from_json(doc)
        again = input_model_from_json(json.loads(json.dumps(doc)))
        for name in circuit.inputs:
            np.testing.assert_allclose(
                model.marginal_distribution(name),
                again.marginal_distribution(name),
            )

    def test_restriction_keeps_surviving_inputs(self):
        _, spec = make_case(1, max_gates=10, max_inputs=4)  # correlated seed
        assert spec["kind"] == "correlated"
        keep = spec["groups"][0][:2]
        restricted = restrict_model_spec(spec, keep)
        model = input_model_from_json(input_model_to_json(restricted))
        for name in keep:
            assert model.marginal_distribution(name).shape == (4,)


class TestCleanRun:
    def test_exact_backends_agree_with_oracle(self, tmp_path):
        report = run_fuzz(seeds=6, max_gates=15, max_inputs=4, out_dir=tmp_path)
        assert report.ok, report.summary()
        assert len(report.cases) == 6
        assert not list(tmp_path.iterdir())  # no reproducers on success

    def test_summary_mentions_scale(self):
        report = run_fuzz(seeds=2, max_gates=8, max_inputs=3)
        assert "2 seed(s)" in report.summary()


class TestBackendSpecs:
    def test_bare_name(self):
        assert parse_backend_spec("segmented") == ("segmented", {}, None)

    def test_options_and_atol(self):
        name, options, atol = parse_backend_spec(
            "segmented(refine=2, max_gates_per_segment=10, atol=0.5)"
        )
        assert name == "segmented"
        assert options == {"refine": 2, "max_gates_per_segment": 10}
        assert atol == 0.5

    def test_string_values(self):
        name, options, atol = parse_backend_spec("segmented(boundary='tree')")
        assert options == {"boundary": "tree"}
        assert atol is None

    @pytest.mark.parametrize(
        "spec",
        ["segmented(refine=2", "(refine=2)", "segmented(refine)", "segmented(x=!)"],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ReproError, match="malformed backend spec"):
            parse_backend_spec(spec)

    def test_refined_segmented_rides_the_harness(self, tmp_path):
        # Small segments force real cuts, so this configuration is
        # genuinely approximate; the per-spec atol keeps it a sanity
        # gate (bounded error, no crash) rather than an exactness one.
        report = run_fuzz(
            seeds=4,
            max_gates=25,
            max_inputs=5,
            backends=(
                "junction-tree",
                "segmented(refine=2, max_gates_per_segment=8, "
                "lookback=1, atol=0.75)",
            ),
            out_dir=tmp_path,
        )
        assert report.ok, report.summary()


class _OffByEpsilonModel(CompiledModel):
    """A deliberately wrong backend: perturbs one line's distribution."""

    def __init__(self, circuit, inputs):
        super().__init__("broken-for-test", circuit)
        self._circuit = circuit
        self._inputs = inputs

    def query(self, inputs=None):
        model = inputs if inputs is not None else self._inputs
        dists = exact_switching_by_enumeration(self._circuit, model)
        victim = sorted(self._circuit.gates)[0]
        skewed = dict(dists)
        wrong = skewed[victim].copy()
        wrong[0] += 0.01
        wrong /= wrong.sum()
        skewed[victim] = wrong
        return SwitchingEstimate(
            distributions=skewed, compile_seconds=0.0, propagate_seconds=0.0
        )


class _BrokenBackend(Backend):
    name = "broken-for-test"

    def compile(self, circuit, inputs=None, **options):
        return _OffByEpsilonModel(circuit, inputs)


@pytest.fixture
def broken_backend():
    backend = _BrokenBackend()
    register_backend(backend)
    try:
        yield backend
    finally:
        _REGISTRY.pop(backend.name, None)


class TestMismatchPath:
    def test_broken_backend_is_flagged_and_reproduced(self, tmp_path, broken_backend):
        report = run_fuzz(
            seeds=1,
            max_gates=10,
            max_inputs=4,
            backends=("junction-tree", broken_backend.name),
            out_dir=tmp_path,
        )
        assert not report.ok
        case = report.failures[0]
        assert {m.backend for m in case.mismatches} == {broken_backend.name}
        assert case.mismatches[0].max_abs_error > 1e-10

        # Reproducer trio: .bench + .inputs.json + .report.json.
        assert case.reproducer is not None and case.reproducer.exists()
        inputs_doc = json.loads(
            (tmp_path / "seed0.inputs.json").read_text()
        )
        input_model_from_json(inputs_doc)  # loads back
        report_doc = json.loads((tmp_path / "seed0.report.json").read_text())
        assert report_doc["mismatches"]

        # The reproducer .bench re-parses and still fails differentially.
        sub = parse_bench_file(case.reproducer)
        assert sub.num_gates >= 1

    def test_shrinking_does_not_grow_the_case(self, tmp_path, broken_backend):
        report = run_fuzz(
            seeds=1,
            max_gates=20,
            max_inputs=4,
            backends=(broken_backend.name,),
            out_dir=tmp_path,
        )
        case = report.failures[0]
        original, _ = make_case(0, max_gates=20, max_inputs=4)
        assert case.circuit.num_gates <= original.num_gates

    def test_crashing_backend_is_a_finding(self, tmp_path):
        class _Crash(Backend):
            name = "crash-for-test"

            def compile(self, circuit, inputs=None, **options):
                raise RuntimeError("kaboom")

        backend = _Crash()
        register_backend(backend)
        try:
            report = run_fuzz(
                seeds=1, max_gates=8, max_inputs=3,
                backends=(backend.name,), out_dir=tmp_path,
            )
        finally:
            _REGISTRY.pop(backend.name, None)
        assert not report.ok
        mismatch = report.failures[0].mismatches[0]
        assert mismatch.error is not None and "kaboom" in mismatch.error
