"""Tests for pairwise correlation-coefficient propagation."""

import pytest

from repro.baselines.pairwise import pairwise_switching
from repro.bdd import exact_signal_probabilities
from repro.circuits import examples, generate
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate
from repro.core import IndependentInputs


class TestPairwiseSwitching:
    def test_exact_on_simple_reconvergence(self):
        """y = AND(a, NOT a): pairwise correlation captures a two-line
        dependency exactly, so p_y = 0."""
        circuit = examples.reconvergent_circuit()
        result = pairwise_switching(circuit)
        assert result.signal_probabilities["y"] == pytest.approx(0.0, abs=1e-9)
        assert result.switching("y") == pytest.approx(0.0, abs=1e-9)

    def test_or_of_same_line(self):
        circuit = Circuit(
            "idem", ["a"],
            [Gate("n", GateType.BUF, ("a",)), Gate("y", GateType.OR, ("a", "n"))],
        )
        result = pairwise_switching(circuit, IndependentInputs(0.3))
        assert result.signal_probabilities["y"] == pytest.approx(0.3, abs=1e-9)

    def test_better_than_independence_on_c17(self):
        circuit = examples.c17()
        exact_p = exact_signal_probabilities(circuit)
        result = pairwise_switching(circuit)
        for line in circuit.lines:
            assert result.signal_probabilities[line] == pytest.approx(
                exact_p[line], abs=0.02
            )

    def test_exact_on_trees(self):
        gates = [
            Gate("x", GateType.NAND, ("a", "b")),
            Gate("y", GateType.NOR, ("c", "d")),
            Gate("z", GateType.XNOR, ("x", "y")),
        ]
        circuit = Circuit("tree", ["a", "b", "c", "d"], gates)
        model = IndependentInputs(0.35)
        exact_p = exact_signal_probabilities(
            circuit, {n: 0.35 for n in circuit.inputs}
        )
        result = pairwise_switching(circuit, model)
        for line in circuit.lines:
            assert result.signal_probabilities[line] == pytest.approx(
                exact_p[line], abs=1e-9
            )

    def test_probabilities_in_range(self):
        circuit = generate.random_layered_circuit(10, 80, seed=11)
        result = pairwise_switching(circuit)
        for p in result.signal_probabilities.values():
            assert 0.0 <= p <= 1.0
        for a in result.activities.values():
            assert 0.0 <= a <= 0.5 + 1e-12

    def test_closer_than_independence_on_average(self):
        """Aggregate sanity: pairwise should beat plain independence on
        reconvergent random circuits."""
        from repro.baselines.independent import transition_density

        total_pairwise, total_indep = 0.0, 0.0
        for seed in (1, 2, 3):
            circuit = generate.random_layered_circuit(8, 35, seed=seed)
            exact_p = exact_signal_probabilities(circuit)
            pw = pairwise_switching(circuit).signal_probabilities
            td = transition_density(circuit).signal_probabilities
            for line in circuit.lines:
                total_pairwise += abs(pw[line] - exact_p[line])
                total_indep += abs(td[line] - exact_p[line])
        assert total_pairwise < total_indep

    def test_mean_activity(self):
        result = pairwise_switching(examples.c17())
        assert 0.0 < result.mean_activity() <= 0.5

    def test_all_gate_types_covered(self):
        gates = [
            Gate("g_and", GateType.AND, ("a", "b")),
            Gate("g_or", GateType.OR, ("a", "c")),
            Gate("g_nand", GateType.NAND, ("b", "c")),
            Gate("g_nor", GateType.NOR, ("g_and", "g_or")),
            Gate("g_xor", GateType.XOR, ("g_nand", "a")),
            Gate("g_xnor", GateType.XNOR, ("g_xor", "b")),
            Gate("g_not", GateType.NOT, ("g_xnor",)),
            Gate("g_buf", GateType.BUF, ("g_not",)),
        ]
        circuit = Circuit("all", ["a", "b", "c"], gates)
        result = pairwise_switching(circuit)
        assert set(result.signal_probabilities) == set(circuit.lines)
