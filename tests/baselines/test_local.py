"""Tests for depth-bounded local-cone propagation."""

import numpy as np
import pytest

from repro.baselines.local import local_cone_switching
from repro.circuits import examples, generate
from repro.core import IndependentInputs, exact_switching_by_enumeration


class TestLocalCone:
    def test_exact_when_cone_covers_circuit(self):
        circuit = examples.c17()
        result = local_cone_switching(circuit, depth=10, max_cut_inputs=8)
        exact = exact_switching_by_enumeration(circuit)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-10)

    def test_depth_one_equals_independence(self):
        from repro.baselines.independent import independence_switching

        circuit = examples.c17()
        cone = local_cone_switching(circuit, depth=1)
        indep = independence_switching(circuit)
        for line in circuit.lines:
            assert np.allclose(
                cone.distributions[line], indep.distributions[line], atol=1e-10
            )

    def test_accuracy_improves_with_depth(self):
        circuit = generate.random_layered_circuit(7, 30, seed=9)
        exact = exact_switching_by_enumeration(circuit)

        def mean_error(depth):
            result = local_cone_switching(circuit, depth=depth, max_cut_inputs=7)
            return np.mean(
                [
                    abs(result.switching(l) - (exact[l][1] + exact[l][2]))
                    for l in circuit.lines
                ]
            )

        assert mean_error(4) <= mean_error(1) + 1e-12

    def test_reconvergence_within_depth_captured(self):
        circuit = examples.reconvergent_circuit()
        result = local_cone_switching(circuit, depth=2)
        assert result.switching("y") == pytest.approx(0.0, abs=1e-12)

    def test_cut_budget_shrinks_depth(self):
        circuit = generate.random_layered_circuit(10, 40, seed=3)
        result = local_cone_switching(circuit, depth=5, max_cut_inputs=3)
        assert max(result.depths.values()) <= 5
        # With such a tight budget some line must have been shrunk.
        internal_depths = [
            result.depths[l] for l in circuit.internal_lines
        ]
        assert min(internal_depths) < 5

    def test_input_model_respected(self):
        circuit = examples.c17()
        model = IndependentInputs(0.2)
        result = local_cone_switching(circuit, depth=10, max_cut_inputs=8, input_model=model)
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-10)

    def test_distributions_normalized(self):
        circuit = generate.random_layered_circuit(6, 25, seed=1)
        result = local_cone_switching(circuit, depth=2)
        for dist in result.distributions.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_mean_activity(self):
        result = local_cone_switching(examples.c17(), depth=2)
        assert 0.0 < result.mean_activity() < 1.0
