"""Tests for the logic-simulation ground truth."""

import numpy as np
import pytest

from repro.baselines.simulation import simulate_switching
from repro.circuits import examples
from repro.core import (
    TemporalInputs,
    CorrelatedGroupInputs,
    exact_switching_by_enumeration,
)


class TestSimulation:
    def test_converges_to_exact(self):
        circuit = examples.c17()
        exact = exact_switching_by_enumeration(circuit)
        sim = simulate_switching(circuit, n_pairs=200_000, rng=np.random.default_rng(0))
        for line in circuit.lines:
            assert np.allclose(sim.distributions[line], exact[line], atol=0.01)

    def test_converges_under_temporal_inputs(self):
        circuit = examples.paper_circuit()
        model = TemporalInputs(p_one=0.5, activity=0.15)
        exact = exact_switching_by_enumeration(circuit, model)
        sim = simulate_switching(
            circuit, model, n_pairs=200_000, rng=np.random.default_rng(1)
        )
        for line in circuit.lines:
            assert np.allclose(sim.distributions[line], exact[line], atol=0.01)

    def test_converges_under_correlated_inputs(self):
        circuit = examples.paper_circuit()
        model = CorrelatedGroupInputs([("1", "2")], rho=0.8)
        exact = exact_switching_by_enumeration(circuit, model)
        sim = simulate_switching(
            circuit, model, n_pairs=200_000, rng=np.random.default_rng(2)
        )
        for line in circuit.lines:
            assert np.allclose(sim.distributions[line], exact[line], atol=0.01)

    def test_distributions_sum_to_one(self):
        sim = simulate_switching(
            examples.c17(), n_pairs=1000, rng=np.random.default_rng(3)
        )
        for dist in sim.distributions.values():
            assert dist.sum() == pytest.approx(1.0)
        assert sim.n_pairs == 1000

    def test_batching_consistency(self):
        circuit = examples.c17()
        a = simulate_switching(
            circuit, n_pairs=10_000, rng=np.random.default_rng(4), batch_size=1000
        )
        b = simulate_switching(
            circuit, n_pairs=10_000, rng=np.random.default_rng(4), batch_size=10_000
        )
        # Same seed, same draws regardless of batching granularity?  Not
        # guaranteed bitwise (different call pattern), but statistically
        # both must be near the exact value.
        exact = exact_switching_by_enumeration(circuit)
        for line in circuit.lines:
            assert np.allclose(a.distributions[line], exact[line], atol=0.03)
            assert np.allclose(b.distributions[line], exact[line], atol=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_switching(examples.c17(), n_pairs=0)

    def test_constant_line_never_switches(self):
        circuit = examples.reconvergent_circuit()
        sim = simulate_switching(circuit, n_pairs=5000, rng=np.random.default_rng(5))
        assert sim.switching("y") == 0.0

    def test_mean_activity(self):
        sim = simulate_switching(
            examples.c17(), n_pairs=5000, rng=np.random.default_rng(6)
        )
        acts = list(sim.activities.values())
        assert sim.mean_activity() == pytest.approx(np.mean(acts))
