"""Tests for adaptive Monte-Carlo estimation."""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_switching
from repro.circuits import examples
from repro.core import exact_switching_by_enumeration


class TestMonteCarlo:
    def test_converges_near_exact(self):
        circuit = examples.c17()
        exact = exact_switching_by_enumeration(circuit)
        result = monte_carlo_switching(
            circuit, relative_error=0.02, rng=np.random.default_rng(0)
        )
        assert result.converged
        for line in circuit.lines:
            exact_sw = exact[line][1] + exact[line][2]
            assert result.switching(line) == pytest.approx(exact_sw, abs=0.03)

    def test_tighter_tolerance_needs_more_samples(self):
        circuit = examples.c17()
        loose = monte_carlo_switching(
            circuit, relative_error=0.05, rng=np.random.default_rng(1)
        )
        tight = monte_carlo_switching(
            circuit, relative_error=0.005, rng=np.random.default_rng(1)
        )
        assert tight.n_pairs >= loose.n_pairs

    def test_budget_cap(self):
        circuit = examples.c17()
        result = monte_carlo_switching(
            circuit,
            relative_error=1e-9,
            max_pairs=20_000,
            rng=np.random.default_rng(2),
        )
        assert not result.converged
        assert result.n_pairs <= 20_000 + 4_096

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_switching(examples.c17(), relative_error=0)

    def test_half_width_reported(self):
        result = monte_carlo_switching(
            examples.c17(), relative_error=0.05, rng=np.random.default_rng(3)
        )
        assert result.half_width < float("inf")
        assert result.mean_activity() > 0
