"""Tests for independence propagation and transition density."""

import numpy as np
import pytest

from repro.baselines.independent import (
    independence_switching,
    transition_density,
)
from repro.circuits import examples, generate
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate
from repro.core import IndependentInputs, TemporalInputs, exact_switching_by_enumeration


def tree_circuit():
    """Fanout-free circuit: independence propagation must be exact."""
    gates = [
        Gate("x", GateType.AND, ("a", "b")),
        Gate("y", GateType.OR, ("c", "d")),
        Gate("z", GateType.XOR, ("x", "y")),
    ]
    return Circuit("tree", ["a", "b", "c", "d"], gates)


class TestIndependenceSwitching:
    def test_exact_on_trees(self):
        circuit = tree_circuit()
        model = IndependentInputs(0.3)
        result = independence_switching(circuit, model)
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-12)

    def test_exact_on_trees_with_temporal_inputs(self):
        circuit = tree_circuit()
        model = TemporalInputs(p_one=0.4, activity=0.2)
        result = independence_switching(circuit, model)
        exact = exact_switching_by_enumeration(circuit, model)
        for line in circuit.lines:
            assert np.allclose(result.distributions[line], exact[line], atol=1e-12)

    def test_biased_on_reconvergence(self):
        """y = AND(a, NOT a) is constant 0 but independence predicts
        nonzero switching -- the canonical failure."""
        circuit = examples.reconvergent_circuit()
        result = independence_switching(circuit)
        assert result.switching("y") > 0.1

    def test_c17_output_error_sign(self):
        circuit = examples.c17()
        result = independence_switching(circuit)
        exact = exact_switching_by_enumeration(circuit)
        # Line 22 is downstream of reconvergent fanout: must deviate.
        exact_sw = exact["22"][1] + exact["22"][2]
        assert result.switching("22") != pytest.approx(exact_sw, abs=1e-6)

    def test_distributions_normalized(self):
        result = independence_switching(generate.random_layered_circuit(6, 30, seed=0))
        for dist in result.distributions.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_mean_activity(self):
        result = independence_switching(examples.c17())
        assert 0.0 < result.mean_activity() < 1.0


class TestTransitionDensity:
    def test_input_densities(self):
        result = transition_density(examples.c17(), IndependentInputs(0.5))
        for name in ("1", "2", "3", "6", "7"):
            assert result.density(name) == pytest.approx(0.5)

    def test_xor_density_is_sum(self):
        circuit = Circuit(
            "x", ["a", "b"], [Gate("y", GateType.XOR, ("a", "b"))]
        )
        result = transition_density(circuit)
        # XOR passes every toggle: D(y) = D(a) + D(b) = 1.0.
        assert result.density("y") == pytest.approx(1.0)

    def test_and_density_weighted_by_side_probability(self):
        circuit = Circuit(
            "a", ["a", "b"], [Gate("y", GateType.AND, ("a", "b"))]
        )
        result = transition_density(circuit, IndependentInputs({"a": 0.5, "b": 0.5}))
        # D(y) = p_b D(a) + p_a D(b) = 0.5*0.5 + 0.5*0.5.
        assert result.density("y") == pytest.approx(0.5)

    def test_density_overestimates_on_xor_tree(self):
        """Densities double count simultaneous toggles: on a parity tree
        the density exceeds the true switching activity."""
        circuit = generate.parity_tree(8)
        result = transition_density(circuit)
        assert result.density("parity") > 1.0  # true activity is 0.5

    def test_signal_probabilities_reported(self):
        result = transition_density(examples.c17())
        assert result.signal_probabilities["10"] == pytest.approx(0.75)

    def test_mean_density(self):
        result = transition_density(examples.c17())
        assert result.mean_density() > 0
