"""Dynamic batcher coalescing, ordering, and failure semantics."""

import threading
import time

import pytest

from repro.serve.batcher import DynamicBatcher


def _echo_batcher(calls, **kwargs):
    lock = threading.Lock()

    def run_batch(key, items):
        with lock:
            calls.append((key, list(items)))
        return [(key, item) for item in items]

    return DynamicBatcher(run_batch, **kwargs)


class TestCoalescing:
    def test_single_item_round_trip(self):
        calls = []
        batcher = _echo_batcher(calls, max_batch=4, linger_seconds=0.0)
        try:
            assert batcher.submit("k", 1).result(timeout=5.0) == ("k", 1)
        finally:
            batcher.close()
        assert calls == [("k", [1])]

    def test_queued_burst_coalesces(self):
        """Items submitted while the worker is busy merge into one batch."""
        release = threading.Event()
        calls = []

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
            calls.append((key, list(items)))
            return list(items)

        batcher = DynamicBatcher(
            run_batch, max_batch=8, linger_seconds=0.0, workers=1
        )
        try:
            plug = batcher.submit("k", "plug")  # occupies the lone worker
            time.sleep(0.05)
            futures = [batcher.submit("k", i) for i in range(5)]
            release.set()
            assert [f.result(timeout=5.0) for f in futures] == list(range(5))
            plug.result(timeout=5.0)
        finally:
            batcher.close()
        sizes = [len(items) for _, items in calls if items != ["plug"]]
        assert sizes == [5]  # one coalesced batch, not five singletons

    def test_max_batch_caps_drain(self):
        release = threading.Event()
        calls = []

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
            calls.append(list(items))
            return list(items)

        batcher = DynamicBatcher(
            run_batch, max_batch=3, linger_seconds=0.0, workers=1
        )
        try:
            batcher.submit("k", "plug")
            time.sleep(0.05)
            futures = [batcher.submit("k", i) for i in range(7)]
            release.set()
            for future in futures:
                future.result(timeout=5.0)
        finally:
            batcher.close()
        sizes = [len(items) for items in calls if items != ["plug"]]
        assert all(size <= 3 for size in sizes)
        assert sum(sizes) == 7

    def test_lanes_do_not_mix(self):
        calls = []
        batcher = _echo_batcher(calls, max_batch=8, linger_seconds=0.05)
        try:
            fa = [batcher.submit("a", i) for i in range(3)]
            fb = [batcher.submit("b", i) for i in range(3)]
            for f in fa:
                assert f.result(timeout=5.0)[0] == "a"
            for f in fb:
                assert f.result(timeout=5.0)[0] == "b"
        finally:
            batcher.close()
        for key, items in calls:
            assert len(items) <= 3

    def test_results_keep_submission_order(self):
        calls = []
        batcher = _echo_batcher(calls, max_batch=16, linger_seconds=0.02)
        try:
            futures = [batcher.submit("k", i) for i in range(10)]
            assert [f.result(timeout=5.0)[1] for f in futures] == list(range(10))
        finally:
            batcher.close()

    def test_stats_accumulate(self):
        calls = []
        batcher = _echo_batcher(calls, max_batch=4, linger_seconds=0.0)
        try:
            for i in range(3):
                batcher.submit("k", i).result(timeout=5.0)
        finally:
            batcher.close()
        assert batcher.stats.items == 3
        assert batcher.stats.batches >= 1
        assert batcher.stats.mean_batch_size() > 0


class TestSingleFlightDedup:
    def test_parked_duplicates_share_one_slot(self):
        """Identical parked scenarios run once and fan out one result."""
        release = threading.Event()
        calls = []

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
            calls.append(list(items))
            return list(items)

        batcher = DynamicBatcher(
            run_batch, max_batch=8, linger_seconds=0.0, workers=1
        )
        try:
            plug = batcher.submit("k", "plug")  # occupies the lone worker
            time.sleep(0.05)
            futures = [
                batcher.submit("k", "same", dedup_key="digest-a")
                for _ in range(4)
            ]
            other = batcher.submit("k", "other", dedup_key="digest-b")
            release.set()
            assert [f.result(timeout=5.0) for f in futures] == ["same"] * 4
            assert other.result(timeout=5.0) == "other"
            plug.result(timeout=5.0)
        finally:
            batcher.close()
        sizes = [len(items) for items in calls if items != ["plug"]]
        # Four duplicate submissions collapsed onto one slot: the batch
        # carried two items ("same" once, "other" once), not five.
        assert sum(sizes) == 2
        assert batcher.stats.deduped == 3
        assert batcher.stats.items == 3  # plug + 2 slots

    def test_no_dedup_without_key(self):
        release = threading.Event()
        calls = []

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
            calls.append(list(items))
            return list(items)

        batcher = DynamicBatcher(
            run_batch, max_batch=8, linger_seconds=0.0, workers=1
        )
        try:
            plug = batcher.submit("k", "plug")
            time.sleep(0.05)
            futures = [batcher.submit("k", "same") for _ in range(3)]
            release.set()
            assert [f.result(timeout=5.0) for f in futures] == ["same"] * 3
            plug.result(timeout=5.0)
        finally:
            batcher.close()
        sizes = [len(items) for items in calls if items != ["plug"]]
        assert sum(sizes) == 3  # identical payloads, but no key: no merge
        assert batcher.stats.deduped == 0

    def test_dedup_keys_do_not_cross_lanes(self):
        """A parked slot in lane "a" must not absorb lane "b" traffic."""
        release = threading.Event()
        calls = []

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
            calls.append((key, list(items)))
            return [(key, item) for item in items]

        batcher = DynamicBatcher(
            run_batch, max_batch=8, linger_seconds=0.0, workers=1
        )
        try:
            plug = batcher.submit("a", "plug")
            time.sleep(0.05)
            fa = batcher.submit("a", "x", dedup_key="digest")
            fb = batcher.submit("b", "x", dedup_key="digest")
            release.set()
            assert fa.result(timeout=5.0) == ("a", "x")
            assert fb.result(timeout=5.0) == ("b", "x")
            plug.result(timeout=5.0)
        finally:
            batcher.close()
        assert batcher.stats.deduped == 0

    def test_dedup_failure_fans_out_to_every_waiter(self):
        class Boom(RuntimeError):
            pass

        release = threading.Event()

        def run_batch(key, items):
            if items == ["plug"]:
                release.wait(timeout=10.0)
                return list(items)
            raise Boom("bad batch")

        batcher = DynamicBatcher(
            run_batch, max_batch=8, linger_seconds=0.0, workers=1
        )
        try:
            plug = batcher.submit("k", "plug")
            time.sleep(0.05)
            futures = [
                batcher.submit("k", "same", dedup_key="digest")
                for _ in range(3)
            ]
            release.set()
            plug.result(timeout=5.0)
            for future in futures:
                with pytest.raises(Boom):
                    future.result(timeout=5.0)
        finally:
            batcher.close()


class TestFailureSemantics:
    def test_exception_fails_every_future_in_batch(self):
        class Boom(RuntimeError):
            pass

        def run_batch(key, items):
            raise Boom("bad batch")

        batcher = DynamicBatcher(run_batch, max_batch=4, linger_seconds=0.05)
        try:
            futures = [batcher.submit("k", i) for i in range(3)]
            for future in futures:
                with pytest.raises(Boom):
                    future.result(timeout=5.0)
        finally:
            batcher.close()

    def test_result_count_mismatch_is_an_error(self):
        def run_batch(key, items):
            return items[:-1]  # one short

        batcher = DynamicBatcher(run_batch, max_batch=4, linger_seconds=0.0)
        try:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit("k", 1).result(timeout=5.0)
        finally:
            batcher.close()

    def test_submit_after_close_raises(self):
        batcher = _echo_batcher([], max_batch=2, linger_seconds=0.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("k", 1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            DynamicBatcher(lambda k, i: i, max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(lambda k, i: i, workers=0)
