"""Live-server integration tests: one in-process server per class.

Responses travel the full path (HTTP parse -> pool -> batcher ->
engine replica -> JSON), so the bitwise comparisons below also pin
that JSON float round-tripping is exact (``json`` emits ``repr``
floats, which round-trip float64 exactly).
"""

import numpy as np
import pytest

from repro import estimate
from repro.circuits import suite
from repro.core.inputs import input_model_from_spec
from repro.obs import validate_report
from repro.serve import EstimationServer, ServeClient, ServerConfig, run_load
from repro.serve.client import ServeRequestError, scenario_spec


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(
        port=0, cache=None, max_batch=8, linger_ms=1.0, workers=2
    )
    with EstimationServer(config) as live:
        yield live


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.address, timeout=30.0)


class TestEstimate:
    def test_matches_local_estimate_bitwise(self, client):
        spec = {"kind": "independent", "p_one": 0.37}
        response = client.estimate("c17", spec, detail="distributions")
        expect = estimate(
            suite.load_circuit("c17"), input_model_from_spec(spec),
            backend="auto", cache=None,
        )
        assert response["circuit"] == "c17"
        assert response["method"] == expect.method
        assert response["mean_activity"] == float(expect.mean_activity())
        for line, activity in expect.activities.items():
            assert response["activities"][line] == float(activity)
        for line, dist in expect.distributions.items():
            assert np.array_equal(
                np.asarray(response["distributions"][line]), dist
            )

    def test_default_scenario_and_detail(self, client):
        response = client.estimate("c17")
        assert "activities" in response
        assert "distributions" not in response
        expect = estimate(
            suite.load_circuit("c17"), input_model_from_spec(
                {"kind": "independent", "p_one": 0.5}
            ),
            backend="auto", cache=None,
        )
        assert response["mean_activity"] == float(expect.mean_activity())

    def test_detail_mean_omits_activities(self, client):
        response = client.estimate("c17", detail="mean")
        assert "activities" not in response
        assert "mean_activity" in response

    def test_estimate_many_round_trip(self, client):
        specs = [scenario_spec(i) for i in range(5)]
        response = client.estimate_many("c17", specs)
        assert response["circuit"] == "c17"
        assert len(response["results"]) == 5
        for spec, result in zip(specs, response["results"]):
            expect = estimate(
                suite.load_circuit("c17"), input_model_from_spec(spec),
                backend="auto", cache=None,
            )
            assert result["mean_activity"] == float(expect.mean_activity())

    def test_explicit_backend_is_honored(self, client):
        response = client.estimate("c17", backend="enumeration")
        assert response["backend"] == "enumeration"
        assert response["method"] == "enumeration"


class TestErrors:
    def test_unknown_circuit_is_400(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate("no-such-circuit")
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "UnknownCircuitError"

    def test_malformed_scenario_is_400(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate("c17", {"kind": "independent", "p_one": "high"})
        assert excinfo.value.status == 400

    def test_out_of_range_probability_is_400(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate("c17", {"kind": "independent", "p_one": 1.5})
        assert excinfo.value.status == 400

    def test_unknown_detail_is_400(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate("c17", detail="everything")
        assert excinfo.value.status == 400

    def test_empty_scenarios_is_400(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate_many("c17", [])
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeRequestError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_body_is_400(self, client):
        connection = client._connection()
        connection.request(
            "POST", "/estimate", body="{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        response.read()
        assert response.status == 400


class TestMetrics:
    def test_metrics_report_is_valid_obs_document(self, client):
        client.estimate("c17")
        report = client.metrics()
        validate_report(report)  # raises on schema violations
        meta = report["meta"]
        assert meta["kind"] == "repro-serve"
        assert meta["pool"]["resident"] >= 1
        assert meta["batcher"]["items"] >= 1
        metrics = report["metrics"]
        assert "serve.requests.estimate" in metrics["counters"]
        assert "serve.latency.estimate" in metrics["histograms"]

    def test_health_endpoint(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0


class TestLoadGenerator:
    def test_closed_loop_report(self, server):
        report = run_load(
            server.address, "c17", mode="closed", concurrency=4, requests=16
        )
        assert report.errors == 0
        assert report.requests == 16
        assert report.scenarios_per_sec > 0
        assert report.p50_latency_seconds <= report.p99_latency_seconds
        row = report.to_row()
        assert row["mode"] == "closed" and "rate" not in row

    def test_open_loop_counts_queueing_delay(self, server):
        report = run_load(
            server.address, "c17", mode="open", concurrency=2,
            requests=10, rate=200.0,
        )
        assert report.errors == 0
        assert report.to_row()["rate"] == 200.0

    def test_scenario_stream_is_deterministic(self):
        assert scenario_spec(3) == scenario_spec(3)
        assert scenario_spec(3) != scenario_spec(4)
        p = scenario_spec(12345)["p_one"]
        assert 0.05 <= p <= 0.95
