"""Concurrency stress: batched serving must be bitwise-deterministic.

The serving path's determinism contract: every propagation is a full
pass over freshly-installed potentials (replicas are reset before each
batch), so a scenario's result is a pure function of its potentials --
regardless of which replica ran it, which batch it landed in, or what
its batch-mates were.  N client threads hammering mixed circuits
through a live server (compile cache ON) must therefore produce
results bitwise-equal to a single-threaded ``estimate`` oracle, with
zero model-pool evictions.
"""

import threading

import numpy as np
import pytest

from repro import estimate
from repro.circuits import suite
from repro.core.inputs import input_model_from_spec
from repro.serve import EstimationServer, ServeClient, ServerConfig
from repro.serve.client import scenario_spec

#: (circuit, scenario index) pairs interleaved across client threads.
CIRCUITS = ("c17", "pcler8")
ITERATIONS = 100
THREADS = 8


@pytest.fixture(scope="module")
def oracle():
    """Single-threaded ground truth, fresh compile per circuit."""
    expected = {}
    for name in CIRCUITS:
        circuit = suite.load_circuit(name)
        for index in range(ITERATIONS // len(CIRCUITS)):
            spec = scenario_spec(index)
            expected[(name, index)] = estimate(
                circuit, input_model_from_spec(spec),
                backend="auto", cache=None,
            )
    return expected


def test_stress_bitwise_vs_single_threaded(tmp_path, oracle):
    config = ServerConfig(
        port=0,
        cache=str(tmp_path / "cache"),
        max_models=8,  # both circuits stay resident: no evictions
        engines_per_model=2,
        max_batch=8,
        linger_ms=1.0,
        workers=2,
    )
    work = sorted(oracle)  # (circuit, index), deterministic order
    with EstimationServer(config) as server:
        client = ServeClient(server.address, timeout=60.0)
        results = {}
        failures = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def worker():
            try:
                while True:
                    with lock:
                        if cursor["next"] >= len(work):
                            return
                        item = work[cursor["next"]]
                        cursor["next"] += 1
                    name, index = item
                    response = client.estimate(
                        name, scenario_spec(index), detail="distributions"
                    )
                    with lock:
                        results[item] = response
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, name=f"stress-{i}")
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not failures, failures[:3]
        assert len(results) == len(work)

        stats = server.pool.stats()
        batch_stats = server.batcher.stats

    # Zero evictions: both models stayed resident for the whole run.
    assert stats["evictions"] == 0
    assert stats["resident"] == len(CIRCUITS)
    # The run exercised actual coalescing, not accidental singletons.
    assert batch_stats.items == len(work)
    assert batch_stats.batches < len(work)

    for (name, index), response in results.items():
        expect = oracle[(name, index)]
        assert response["mean_activity"] == float(expect.mean_activity())
        for line, activity in expect.activities.items():
            assert response["activities"][line] == float(activity)
        for line, dist in expect.distributions.items():
            got = np.asarray(response["distributions"][line])
            assert np.array_equal(got, dist), (
                f"{name} scenario {index} line {line}: "
                f"served {got} != oracle {dist}"
            )


def test_stress_cached_bitwise_vs_single_threaded(tmp_path, oracle):
    """Cache-on variant: repeated scenarios under concurrency.

    Every request is issued three times, so most of them resolve from
    the result cache or join an in-flight duplicate's batch slot --
    the replayed marginals must still be bitwise-equal to the
    single-threaded fresh-compile oracle.  ``batch_stats.items`` is
    *not* asserted against the request count here: cache hits never
    reach the batcher, and single-flight dedup makes joined requests
    share one slot.
    """
    config = ServerConfig(
        port=0,
        cache=str(tmp_path / "cache"),
        max_models=8,
        engines_per_model=2,
        max_batch=8,
        linger_ms=1.0,
        workers=2,
        result_cache_entries=1024,
    )
    copies = 3
    work = sorted(oracle) * copies
    with EstimationServer(config) as server:
        client = ServeClient(server.address, timeout=60.0)
        results = {}
        hit_flags = []
        failures = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def worker():
            try:
                while True:
                    with lock:
                        if cursor["next"] >= len(work):
                            return
                        item = work[cursor["next"]]
                        cursor["next"] += 1
                    name, index = item
                    response = client.estimate(
                        name, scenario_spec(index), detail="distributions"
                    )
                    with lock:
                        results[item] = response
                        hit_flags.append(response.get("result_cache_hit"))
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, name=f"stress-cached-{i}")
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not failures, failures[:3]
        assert len(results) == len(work) // copies

        cache_stats = server.rcache.stats()

    # Repetition must actually exercise the reuse layer: every lookup
    # is counted, and two extra copies of each scenario guarantee hits
    # (a duplicate either finds the stored entry or joins the original
    # request's in-flight slot -- both are reuse, at least one of the
    # two repeats of each scenario lands after its first store).
    assert cache_stats["hits"] > 0
    assert any(flag is True for flag in hit_flags)

    for (name, index), response in results.items():
        expect = oracle[(name, index)]
        assert response["mean_activity"] == float(expect.mean_activity())
        for line, dist in expect.distributions.items():
            got = np.asarray(response["distributions"][line])
            assert np.array_equal(got, dist), (
                f"{name} scenario {index} line {line}: "
                f"served {got} != oracle {dist}"
            )
