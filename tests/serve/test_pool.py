"""Model-pool and engine-pool semantics (no HTTP involved)."""

import threading

import numpy as np
import pytest

from repro.circuits import suite
from repro.circuits.examples import c17
from repro.core.backend import compile_model
from repro.core.inputs import IndependentInputs
from repro.serve.pool import EnginePool, ModelPool, PoolTimeout


class TestEnginePool:
    def test_replicas_are_private_and_reusable(self):
        pool = EnginePool(compile_model(c17(), backend="junction-tree"), capacity=2)
        a = pool.checkout(timeout=5.0)
        b = pool.checkout(timeout=5.0)
        assert a is not b
        assert pool.created == 2
        pool.checkin(a)
        c = pool.checkout(timeout=5.0)
        assert c is a  # the freed replica is reused, not a third copy
        assert pool.created == 2
        pool.checkin(b)
        pool.checkin(c)

    def test_checkout_blocks_until_checkin(self):
        pool = EnginePool(compile_model(c17(), backend="junction-tree"), capacity=1)
        replica = pool.checkout(timeout=5.0)
        got = []

        def blocked():
            got.append(pool.checkout(timeout=10.0))

        thread = threading.Thread(target=blocked)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive() and not got  # still waiting
        pool.checkin(replica)
        thread.join(timeout=10.0)
        assert got == [replica]
        pool.checkin(got[0])

    def test_checkout_timeout_raises_pool_timeout(self):
        pool = EnginePool(compile_model(c17(), backend="junction-tree"), capacity=1)
        replica = pool.checkout(timeout=5.0)
        with pytest.raises(PoolTimeout):
            pool.checkout(timeout=0.05)
        pool.checkin(replica)

    def test_replica_results_match_master(self):
        master = compile_model(c17(), backend="junction-tree")
        pool = EnginePool(master, capacity=1)
        replica = pool.checkout(timeout=5.0)
        scenario = IndependentInputs(0.3)
        expect = master.query(scenario)
        got = replica.query(scenario)
        for line, dist in expect.distributions.items():
            assert np.array_equal(dist, got.distributions[line])
        pool.checkin(replica)

    def test_capacity_must_be_positive(self):
        master = compile_model(c17(), backend="junction-tree")
        with pytest.raises(ValueError):
            EnginePool(master, capacity=0)


class TestModelPool:
    def test_hit_returns_same_entry(self):
        pool = ModelPool(max_models=4)
        circuit = c17()
        first = pool.get(circuit, backend="junction-tree")
        second = pool.get(circuit, backend="junction-tree")
        assert first is second
        assert second.hits == 1

    def test_key_matches_compile_cache_fingerprint(self):
        """The resident pool and the on-disk cache agree on identity."""
        pool = ModelPool(max_models=4)
        circuit = c17()
        key = pool.key_for(circuit, backend="junction-tree")
        assert key == pool.key_for(circuit, backend="junction-tree")
        assert key != pool.key_for(circuit, backend="enumeration")
        entry = pool.get(circuit, backend="junction-tree")
        assert entry.key == key

    def test_options_split_entries(self):
        pool = ModelPool(max_models=4)
        circuit = c17()
        dense = pool.get(circuit, backend="junction-tree", kernel="dense")
        sparse = pool.get(circuit, backend="junction-tree", kernel="sparse")
        assert dense is not sparse
        assert dense.key != sparse.key

    def test_lru_eviction_counts(self):
        pool = ModelPool(max_models=2)
        names = ["c17", "pcler8", "comp"]
        entries = [pool.get(suite.load_circuit(n)) for n in names]
        assert pool.evictions == 1
        stats = pool.stats()
        assert stats["resident"] == 2
        resident = {m["circuit"] for m in stats["models"]}
        assert "c17" not in resident  # oldest went first
        # Re-requesting the evicted circuit recompiles a fresh entry.
        again = pool.get(suite.load_circuit("c17"))
        assert again is not entries[0]
        assert pool.evictions == 2

    def test_touch_refreshes_lru_order(self):
        pool = ModelPool(max_models=2)
        a = pool.get(suite.load_circuit("c17"))
        pool.get(suite.load_circuit("pcler8"))
        pool.get(suite.load_circuit("c17"))  # touch: c17 is now newest
        pool.get(suite.load_circuit("comp"))  # evicts pcler8, not c17
        assert pool.get(suite.load_circuit("c17")) is a
        assert pool.evictions == 1

    def test_concurrent_same_key_compiles_once(self):
        pool = ModelPool(max_models=4)
        circuit = suite.load_circuit("c17")
        results, failures = [], []
        barrier = threading.Barrier(4)

        def worker():
            try:
                barrier.wait(timeout=10.0)
                results.append(pool.get(circuit, timeout=30.0))
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures
        assert len({id(entry) for entry in results}) == 1

    def test_on_disk_cache_round_trip(self, tmp_path):
        from repro.core.backend.cache import CompileCache

        cache = CompileCache(tmp_path)
        pool = ModelPool(cache=cache, max_models=1)
        pool.get(c17(), backend="junction-tree")  # miss: compiles + stores
        pool.get(suite.load_circuit("pcler8"))  # evicts the c17 entry
        entry = pool.get(c17(), backend="junction-tree")  # disk hit
        assert entry.model.query(IndependentInputs(0.5)).mean_activity() > 0
        # The second c17 admission was served from disk, not recompiled.
        assert pool.stats()["cache"]["hits"] >= 1
