"""Tests for the ROBDD package."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import (
    ONE,
    ZERO,
    BDDManager,
    build_line_bdds,
    exact_signal_probabilities,
)
from repro.circuits import examples, generate
from repro.circuits.gates import GateType


class TestBasicOperations:
    def test_terminals(self):
        m = BDDManager(["a"])
        assert m.apply_and(ZERO, ONE) == ZERO
        assert m.apply_or(ZERO, ONE) == ONE
        assert m.apply_xor(ONE, ONE) == ZERO

    def test_var_and_negate(self):
        m = BDDManager(["a"])
        a = m.var("a")
        na = m.negate(a)
        assert m.evaluate(a, {"a": 1}) == 1
        assert m.evaluate(na, {"a": 1}) == 0

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            BDDManager(["a"]).var("b")

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            BDDManager(["a", "a"])

    def test_canonicity(self):
        """Equivalent functions share the same node id."""
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        f = m.apply_or(m.apply_and(a, b), m.apply_and(a, m.negate(b)))
        assert f == a  # ab + a!b == a

    def test_contradiction_collapses_to_zero(self):
        m = BDDManager(["a"])
        a = m.var("a")
        assert m.apply_and(a, m.negate(a)) == ZERO

    def test_tautology_collapses_to_one(self):
        m = BDDManager(["a"])
        a = m.var("a")
        assert m.apply_or(a, m.negate(a)) == ONE

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_apply_matches_truth_table(self, seed):
        rng = np.random.default_rng(seed)
        m = BDDManager(["a", "b", "c"])
        nodes = {v: m.var(v) for v in "abc"}
        # Random expression tree of depth 3.
        ops = [m.apply_and, m.apply_or, m.apply_xor]

        def rand_expr(depth):
            if depth == 0 or rng.random() < 0.3:
                node = nodes[list("abc")[rng.integers(3)]]
                return m.negate(node) if rng.random() < 0.5 else node
            op = ops[rng.integers(3)]
            return op(rand_expr(depth - 1), rand_expr(depth - 1))

        # Build the same function symbolically and by brute force.
        rng_clone = np.random.default_rng(seed)

        def rand_fn(depth, assignment):
            if depth == 0 or rng_clone.random() < 0.3:
                value = assignment[list("abc")[rng_clone.integers(3)]]
                return 1 - value if rng_clone.random() < 0.5 else value
            op_idx = rng_clone.integers(3)
            lhs = rand_fn(depth - 1, assignment)
            rhs = rand_fn(depth - 1, assignment)
            return [lhs & rhs, lhs | rhs, lhs ^ rhs][op_idx]

        node = rand_expr(3)
        for bits in itertools.product((0, 1), repeat=3):
            assignment = dict(zip("abc", bits))
            rng_clone = np.random.default_rng(seed)
            assert m.evaluate(node, assignment) == rand_fn(3, assignment)


class TestGateApplication:
    def test_nary_gates(self):
        m = BDDManager(["a", "b", "c"])
        operands = [m.var(v) for v in "abc"]
        for gate_type in GateType:
            ops = operands[:1] if gate_type in (GateType.NOT, GateType.BUF) else operands
            node = m.apply_gate(gate_type, ops)
            from repro.circuits.gates import evaluate_gate

            for bits in itertools.product((0, 1), repeat=3):
                assignment = dict(zip("abc", bits))
                vals = [assignment[v] for v in "abc"][: len(ops)]
                assert m.evaluate(node, assignment) == evaluate_gate(gate_type, vals)


class TestProbabilities:
    def test_single_variable(self):
        m = BDDManager(["a"])
        assert m.signal_probability(m.var("a"), {"a": 0.3}) == pytest.approx(0.3)

    def test_and_probability(self):
        m = BDDManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        assert m.signal_probability(f, {"a": 0.5, "b": 0.4}) == pytest.approx(0.2)

    def test_skipped_level_handled(self):
        """P must be correct when a node's child skips levels."""
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("a"), m.var("c"))  # b never appears
        assert m.signal_probability(f, {"a": 0.5, "b": 0.9, "c": 0.5}) == pytest.approx(0.25)

    def test_satisfy_count(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_or(m.var("a"), m.var("b"))
        assert m.satisfy_count(f) == 6  # 8 - 2 (a=b=0)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_enumeration_on_random_circuits(self, seed):
        circuit = generate.random_layered_circuit(6, 20, seed=seed)
        probs = exact_signal_probabilities(circuit)
        # Enumerate ground truth.
        counts = {line: 0 for line in circuit.lines}
        for bits in itertools.product((0, 1), repeat=6):
            values = circuit.evaluate(dict(zip(circuit.inputs, bits)))
            for line, v in values.items():
                counts[line] += v
        for line in circuit.lines:
            assert probs[line] == pytest.approx(counts[line] / 64)


class TestCircuitBdds:
    def test_c17(self):
        manager, nodes = build_line_bdds(examples.c17())
        # Line 10 = NAND(1, 3): P = 1 - 0.25 = 0.75 under fair inputs.
        p = manager.signal_probability(nodes["10"], {n: 0.5 for n in "12367"})
        assert p == pytest.approx(0.75)

    def test_selected_lines_only(self):
        _, nodes = build_line_bdds(examples.c17(), lines=["22"])
        assert set(nodes) == {"22"}

    def test_node_budget(self):
        circuit = generate.array_multiplier(8)
        with pytest.raises(MemoryError):
            build_line_bdds(circuit, max_nodes=500)

    def test_constant_line(self):
        circuit = examples.reconvergent_circuit()
        probs = exact_signal_probabilities(circuit)
        assert probs["y"] == 0.0
