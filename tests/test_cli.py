"""End-to-end CLI coverage: estimate (with cache), stats, cache."""

import json
import re

import pytest

from repro.cli import main
from repro.core.backend.cache import CACHE_DIR_ENV


@pytest.fixture
def cache_dir(monkeypatch, tmp_path):
    """Point the default cache at a throwaway directory."""
    directory = tmp_path / "cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(directory))
    return directory


def _activities(output: str) -> dict:
    """Parse the output-switching table printed by ``estimate``."""
    acts = {}
    for line, value in re.findall(r"^\s*(\S+)\s+([0-9.]+)\s*$", output, re.M):
        acts[line] = value
    return acts


def test_estimate_second_run_hits_cache(capsys, cache_dir):
    assert main(["estimate", "--circuit", "c432s"]) == 0
    first = capsys.readouterr().out
    assert "cache miss" in first

    assert main(["estimate", "--circuit", "c432s"]) == 0
    second = capsys.readouterr().out
    assert "cache hit" in second

    # The artifact landed in the overridden default directory and the
    # cached run reproduces the exact same reported activities.
    assert list(cache_dir.glob("*.repro.pkl"))
    assert _activities(first)
    assert _activities(first) == _activities(second)


def test_estimate_no_cache_flag(capsys, cache_dir):
    assert main(["estimate", "--circuit", "c17", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "cache off" in out
    assert not cache_dir.exists()


def test_estimate_cache_dir_flag(capsys, tmp_path):
    explicit = tmp_path / "explicit"
    assert main(
        ["estimate", "--circuit", "c17", "--cache-dir", str(explicit)]
    ) == 0
    assert "cache miss" in capsys.readouterr().out
    assert list(explicit.glob("*.repro.pkl"))


def test_estimate_backend_flag(capsys, cache_dir):
    assert main(
        ["estimate", "--circuit", "c17", "--backend", "enumeration"]
    ) == 0
    assert "method enumeration" in capsys.readouterr().out


def test_cache_ls_and_clear(capsys, cache_dir):
    main(["estimate", "--circuit", "c17"])
    capsys.readouterr()

    assert main(["cache", "ls"]) == 0
    listing = capsys.readouterr().out
    assert "1 artifact(s)" in listing
    assert "c17" in listing

    assert main(["cache", "clear"]) == 0
    assert "removed 1 artifact(s)" in capsys.readouterr().out

    assert main(["cache", "ls"]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_dir_option_overrides_env(capsys, cache_dir, tmp_path):
    other = tmp_path / "other"
    main(["estimate", "--circuit", "c17", "--cache-dir", str(other)])
    capsys.readouterr()
    assert main(["cache", "ls", "--dir", str(other)]) == 0
    assert "1 artifact(s)" in capsys.readouterr().out
    assert main(["cache", "ls"]) == 0
    assert "empty" in capsys.readouterr().out


@pytest.fixture
def disable_obs_after():
    yield
    from repro import obs

    obs.disable()
    obs.reset()


def test_stats_subcommand_reports_span_tree(
    capsys, cache_dir, tmp_path, disable_obs_after
):
    report_path = tmp_path / "stats.json"
    assert main(
        ["stats", "--circuit", "c17", "--json", str(report_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "stats.run" in out
    assert "backend.compile" in out
    assert "re-propagate" in out

    report = json.loads(report_path.read_text())
    assert report["schema"] == "repro.obs/v2"
    names = set()

    def walk(span):
        names.add(span["name"])
        for child in span["children"]:
            walk(child)

    for span in report["spans"]:
        walk(span)
    assert "backend.compile" in names
    assert "backend.query" in names
    assert "estimator.compile" in names or "segmented.compile" in names


class TestErrorHandling:
    """Anticipated failures: exit 1 with a one-line message, no traceback."""

    def test_unknown_circuit_name(self, capsys):
        assert main(["estimate", "--circuit", "nonesuch", "--no-cache"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error: unknown circuit")
        assert "Traceback" not in captured.err

    def test_unparseable_bench_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.bench"
        bad.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        assert main(["estimate", "--circuit", str(bad), "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "ghost" in err and "line 3" in err

    def test_missing_bench_file(self, capsys, tmp_path):
        assert main(
            ["estimate", "--circuit", str(tmp_path / "no.bench"), "--no-cache"]
        ) == 1
        assert "no such .bench file" in capsys.readouterr().err

    def test_unknown_backend(self, capsys):
        assert main(
            ["estimate", "--circuit", "c17", "--backend", "warp", "--no-cache"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown backend")
        assert "Traceback" not in err

    def test_stats_unknown_circuit(self, capsys, disable_obs_after):
        assert main(["stats", "--circuit", "nonesuch"]) == 1
        assert "repro: error:" in capsys.readouterr().err


def test_estimate_accepts_bench_path(capsys, tmp_path):
    bench = tmp_path / "mini.bench"
    bench.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
    assert main(["estimate", "--circuit", str(bench), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "mini: 1 gates" in out


def test_estimate_fallback_flag_reports_degradation(capsys, cache_dir):
    assert main(
        [
            "estimate", "--circuit", "c17", "--no-cache",
            "--backend", "junction-tree", "--fallback",
        ]
    ) == 0
    # c17 compiles fine: no degradation lines, but the flag parses.
    assert "fallback:" not in capsys.readouterr().out


def test_fuzz_smoke_clean(capsys, tmp_path):
    assert main(
        [
            "fuzz", "--seeds", "3", "--max-gates", "10", "--max-inputs", "4",
            "--out", str(tmp_path / "failures"),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "3 ok, 0 failing" in out
    assert not (tmp_path / "failures").exists() or not list(
        (tmp_path / "failures").iterdir()
    )


def test_fuzz_unknown_backend(capsys):
    assert main(["fuzz", "--seeds", "1", "--backends", "warp"]) == 1
    assert "unknown backend" in capsys.readouterr().err


class TestSweep:
    """`repro sweep`: batch-propagate a scenario file over one compile."""

    def _write_scenarios(self, tmp_path, payload):
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_sweep_reports_per_scenario_activity(self, capsys, tmp_path):
        scenarios = self._write_scenarios(
            tmp_path,
            [
                {"kind": "independent", "p_one": 0.5},
                {"kind": "independent", "p_one": 0.2},
                {"kind": "temporal", "p_one": 0.6, "activity": 0.3},
            ],
        )
        assert main(
            ["sweep", "--circuit", "c17", "--scenarios", scenarios, "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 scenario(s)" in out
        assert "scenarios/sec" in out
        # One activity row per scenario, and the fair-coin scenario
        # reproduces the known c17 mean activity.
        assert "0.470170" in out

    def test_sweep_batch_flag_chunks_without_changing_results(
        self, capsys, tmp_path
    ):
        scenarios = self._write_scenarios(
            tmp_path,
            {"scenarios": [
                {"kind": "independent", "p_one": p} for p in (0.1, 0.4, 0.7)
            ]},
        )
        assert main(
            [
                "sweep", "--circuit", "c17", "--scenarios", scenarios,
                "--batch", "2", "--no-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "batch 2" in out
        assert "3 scenario(s)" in out

    def test_sweep_uses_compile_cache(self, capsys, cache_dir, tmp_path):
        scenarios = self._write_scenarios(
            tmp_path, [{"kind": "independent", "p_one": 0.5}]
        )
        assert main(["sweep", "--circuit", "c17", "--scenarios", scenarios]) == 0
        assert "cache miss" in capsys.readouterr().out
        assert main(["sweep", "--circuit", "c17", "--scenarios", scenarios]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_sweep_missing_file_exits_one(self, capsys, tmp_path):
        assert main(
            [
                "sweep", "--circuit", "c17", "--no-cache",
                "--scenarios", str(tmp_path / "nope.json"),
            ]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error: cannot read scenario file")
        assert "Traceback" not in err

    def test_sweep_malformed_scenarios_exit_one(self, capsys, tmp_path):
        for payload in ([], {"scenarios": "nope"}, [{"kind": "warp"}], [42]):
            scenarios = self._write_scenarios(tmp_path, payload)
            assert main(
                [
                    "sweep", "--circuit", "c17", "--scenarios", scenarios,
                    "--no-cache",
                ]
            ) == 1
            err = capsys.readouterr().err
            assert err.startswith("repro: error:")
            assert "Traceback" not in err

    def test_sweep_invalid_json_exits_one(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(
            ["sweep", "--circuit", "c17", "--scenarios", str(path), "--no-cache"]
        ) == 1
        assert "malformed JSON" in capsys.readouterr().err
