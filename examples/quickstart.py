"""Quickstart: estimate switching activity of a small circuit.

Demonstrates the core flow of the library on ISCAS c17:

1. load/build a circuit,
2. compile its LIDAG-structured Bayesian network into a junction tree,
3. read per-line switching activities,
4. validate against logic simulation,
5. re-propagate under new input statistics without recompiling.

Run with: ``python examples/quickstart.py``
"""

import numpy as np

from repro import IndependentInputs, SwitchingActivityEstimator
from repro.analysis.tables import format_table
from repro.baselines import simulate_switching
from repro.circuits.examples import c17


def main():
    circuit = c17()
    print(f"Circuit: {circuit!r}")

    # Compile once (moralize -> triangulate -> junction tree)...
    estimator = SwitchingActivityEstimator(circuit)
    estimate = estimator.estimate()
    print(
        f"compiled in {estimate.compile_seconds * 1e3:.1f} ms, "
        f"propagated in {estimate.propagate_seconds * 1e3:.1f} ms"
    )

    # ...and compare the exact estimates with logic simulation.
    simulation = simulate_switching(
        circuit, n_pairs=200_000, rng=np.random.default_rng(0)
    )
    rows = [
        [line, estimate.switching(line), simulation.switching(line)]
        for line in circuit.lines
    ]
    print()
    print(
        format_table(
            ["line", "BN estimate", "simulation (200k pairs)"],
            rows,
            title="Switching activity under random inputs (p=0.5)",
        )
    )

    # New input statistics are a cheap re-propagation, not a recompile.
    estimator.update_inputs(IndependentInputs(0.9))
    biased = estimator.estimate()
    print(
        f"\nWith P(input=1)=0.9 the mean activity drops from "
        f"{estimate.mean_activity():.4f} to {biased.mean_activity():.4f} "
        f"(re-propagated in {biased.propagate_seconds * 1e3:.1f} ms)."
    )


if __name__ == "__main__":
    main()
