"""Sequential-circuit switching estimation by state fixpoint iteration.

Scan-converted sequential circuits (flip-flops split into pseudo
inputs/outputs, as the ``.bench`` parser does for DFF cells) are handled
by iterating the state statistics to a fixpoint.  This example runs the
flow on two machines:

- a 4-bit shift register driven by a biased serial stream (the fixpoint
  is exact: each stage relays the stream's statistics), and
- a 4-bit enabled counter (the classic case where the chained bits
  carry *cross-cycle* correlation a single-cycle model cannot
  represent -- the example shows the documented overestimate next to
  true sequential simulation).

Run with: ``python examples/sequential_fsm.py``
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.simulation import simulate_sequential_switching
from repro.circuits.bench import parse_bench
from repro.circuits.generate import counter_next_state
from repro.core import IndependentInputs, SequentialSwitchingEstimator

SHIFT_BENCH = """
INPUT(d)
OUTPUT(tap)
q0 = DFF(nq0)
q1 = DFF(nq1)
q2 = DFF(nq2)
q3 = DFF(nq3)
nq0 = BUFF(d)
nq1 = BUFF(q0)
nq2 = BUFF(q1)
nq3 = BUFF(q2)
tap = XOR(q1, q3)
"""


def main():
    # --- shift register from a sequential .bench netlist ------------------
    shift = parse_bench(SHIFT_BENCH, name="shift4")
    state_map = {f"q{i}": f"nq{i}" for i in range(4)}
    model = IndependentInputs(0.2)  # biased serial stream
    estimator = SequentialSwitchingEstimator(shift, state_map, model)
    result = estimator.estimate()
    sim = simulate_sequential_switching(
        shift, state_map, model, n_cycles=100_000, rng=np.random.default_rng(0)
    )
    print(
        f"shift register: converged in {result.iterations} iterations "
        f"(residual {result.residual:.2e})"
    )
    rows = [
        [line, result.switching(line), sim.switching(line)]
        for line in ("nq0", "nq1", "nq3", "tap")
    ]
    print(
        format_table(
            ["line", "fixpoint", "sequential sim"],
            rows,
            title="Shift register, serial stream P(1)=0.2",
        )
    )

    # --- enabled counter: the documented cross-cycle limitation -----------
    counter = counter_next_state(4)
    state_map = {f"q{i}": f"nq{i}" for i in range(4)}
    estimator = SequentialSwitchingEstimator(counter, state_map)
    result = estimator.estimate()
    sim = simulate_sequential_switching(
        counter, state_map, n_cycles=200_000, rng=np.random.default_rng(1)
    )
    rows = [
        [line, result.switching(line), sim.switching(line)]
        for line in ("nq0", "nq1", "nq2", "ovf")
    ]
    print()
    print(
        format_table(
            ["line", "fixpoint", "sequential sim"],
            rows,
            title="Enabled counter (random enable)",
        )
    )
    print(
        "\nnq0 and the overflow are captured; the chained bits nq1/nq2 "
        "overestimate because their correlation with the enable spans two "
        "cycles -- the documented limit of single-cycle fixpoint models."
    )


if __name__ == "__main__":
    main()
