"""Dynamic power estimation of an ALU under different workloads.

Switching activity is the circuit half of CMOS dynamic power; this
example closes the loop: estimate per-line activity of an 8-bit ALU
under three workload models (random, low-toggle temporal, spatially
correlated operands), convert to watts with a fanout-capacitance model,
and rank the hottest nets.

Run with: ``python examples/power_alu.py``
"""

from repro import (
    CorrelatedGroupInputs,
    IndependentInputs,
    SwitchingActivityEstimator,
    TemporalInputs,
)
from repro.analysis.tables import format_table
from repro.circuits.generate import alu
from repro.power import Technology, power_from_activities


def main():
    circuit = alu(8, name="alu8")
    print(f"Circuit: {circuit!r}")
    technology = Technology(vdd=1.8, clock_hz=200e6)

    workloads = [
        ("random operands", IndependentInputs(0.5)),
        ("quiet bus (10% toggle)", TemporalInputs(p_one=0.5, activity=0.1)),
        (
            "correlated operand bytes",
            CorrelatedGroupInputs(
                [tuple(f"a{i}" for i in range(8)), tuple(f"b{i}" for i in range(8))],
                rho=0.6,
            ),
        ),
    ]

    estimator = SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10)
    estimator.compile()
    print(f"compiled once in {estimator.compile_seconds:.3f}s\n")

    rows = []
    reports = {}
    for label, model in workloads:
        try:
            estimator.update_inputs(model)
        except ValueError:
            # Correlation groups change the LIDAG structure: recompile.
            estimator = SwitchingActivityEstimator(
                circuit, model, max_clique_states=4 ** 10
            )
        estimate = estimator.estimate()
        report = power_from_activities(circuit, estimate.activities, technology)
        reports[label] = report
        rows.append(
            [
                label,
                estimate.mean_activity(),
                report.total_watts * 1e6,
                estimate.propagate_seconds * 1e3,
            ]
        )

    print(
        format_table(
            ["workload", "mean activity", "power (uW)", "propagate (ms)"],
            rows,
            title="ALU dynamic power under three workload models",
        )
    )

    print("\nTop power consumers under random operands:")
    for line, watts in reports["random operands"].top_consumers(5):
        gate = circuit.driver(line)
        source = str(gate) if gate else "primary input"
        print(f"  {line:>12}: {watts * 1e9:8.2f} nW   ({source})")


if __name__ == "__main__":
    main()
