"""Multi-BN segmentation of a large circuit (paper Section 6).

Circuits too large for one junction tree are cut into segments; line
marginals (and, in ``tree`` mode, a spanning forest of pairwise joints)
cross the cuts.  This example estimates the c7552-class stand-in
(~2.4k gates) with the segmented estimator, validates against logic
simulation, and reports the segment structure including which segments
used the junction tree versus the enumeration backend.

Run with: ``python examples/large_circuit_segmentation.py``
"""

import numpy as np

from repro import SegmentedEstimator
from repro.analysis import error_statistics, format_table
from repro.baselines import simulate_switching
from repro.circuits.suite import load_circuit


def main():
    circuit = load_circuit("c7552s")
    print(f"{circuit!r} depth={circuit.depth}")

    estimator = SegmentedEstimator(circuit, max_gates_per_segment=60, lookback=3)
    estimate = estimator.estimate()
    print(
        f"\n{estimator.num_segments} segments; compile "
        f"{estimate.compile_seconds:.2f}s, propagate "
        f"{estimate.propagate_seconds:.2f}s"
    )

    stats = estimator.segment_stats()
    backends = {}
    for entry in stats:
        backends[entry["backend"]] = backends.get(entry["backend"], 0) + 1
    print(f"backends used: {backends}")

    largest = sorted(stats, key=lambda s: -s["total_table_entries"])[:5]
    rows = [
        [s["name"].split(".")[-1], s["backend"], s["gates"], s["owned_gates"],
         s["max_clique_states"], s["total_table_entries"]]
        for s in largest
    ]
    print(
        format_table(
            ["segment", "backend", "gates", "owned", "max clique", "entries"],
            rows,
            title="Five largest segments",
        )
    )

    print("\nValidating against 50k-pair logic simulation...")
    sim = simulate_switching(circuit, n_pairs=50_000, rng=np.random.default_rng(0))
    err = error_statistics(estimate.activities, sim.activities)
    print(
        f"mean |error| = {err.mean_abs_error:.4f}, sigma = {err.std_error:.4f}, "
        f"%error of means = {err.percent_error_of_means:.2f}%"
    )
    print(
        "(single-BN circuits are exact; the residual here is the "
        "segmentation boundary approximation plus simulation noise)"
    )


if __name__ == "__main__":
    main()
