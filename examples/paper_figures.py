"""Walk through the paper's Figures 1-4 on the five-gate example circuit.

Reproduces, as text:

- Figure 1: the example combinational circuit,
- Figure 2: its LIDAG-structured Bayesian network and the Eq. 7
  factorization of the joint transition distribution,
- Figure 3: the moralized and triangulated undirected graph (marriage
  edges and the triangulation fill-in),
- Figure 4: the junction tree of cliques with separator sets,

then quantifies the network and prints each line's exact switching
activity, including the conditional-probability example from Section 4
(``P(X5 = x01 | X1 = x01, X2 = x00) = 1`` for the OR gate).

Run with: ``python examples/paper_figures.py``
"""

from repro.core import SwitchingActivityEstimator, TransitionState
from repro.core.cpt import gate_transition_cpd
from repro.experiments.figures import figure_walkthrough


def main():
    data = figure_walkthrough()
    circuit = data["circuit"]

    print("=== Figure 1: the example circuit ===")
    for line in circuit.internal_lines:
        print(f"  {circuit.driver(line)}")

    print("\n=== Figure 2: LIDAG-structured Bayesian network ===")
    print(f"  Eq. 7 factorization: {data['factorization']}")
    for u, v in data["lidag_edges"]:
        print(f"  X{u} -> X{v}")

    print("\n=== Section 4: gate CPT entries are deterministic ===")
    or_cpd = gate_transition_cpd(circuit.driver("5"))
    probability = or_cpd.probability(
        int(TransitionState.X01),
        {"1": int(TransitionState.X01), "2": int(TransitionState.X00)},
    )
    print(f"  P(X5=x01 | X1=x01, X2=x00) = {probability}  (paper: always 1)")
    print(f"  full CPT size: {or_cpd.factor.size} entries  (paper: 4^3)")

    print("\n=== Figure 3: moralization + triangulation ===")
    print(f"  marriage edges: {data['marriages']}")
    print(f"  fill-in edges:  {data['fill_ins']}")

    print("\n=== Figure 4: junction tree of cliques ===")
    for clique in data["cliques"]:
        print(f"  clique {{{', '.join('X' + x for x in clique)}}}")
    for left, right, sep in data["separators"]:
        print(f"  {left} --[sep {sep}]-- {right}")

    print("\n=== Exact switching activities (random inputs, p=0.5) ===")
    estimate = SwitchingActivityEstimator(circuit).estimate()
    for line in circuit.lines:
        dist = estimate.distributions[line]
        states = ", ".join(f"{p:.4f}" for p in dist)
        print(f"  X{line}: sw={estimate.switching(line):.4f}  [{states}]")


if __name__ == "__main__":
    main()
