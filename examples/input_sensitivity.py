"""Input-statistics sensitivity: the compile-once / propagate-often win.

The paper's advantage #3: after junction-tree compilation, re-estimating
under new input statistics costs milliseconds.  This example sweeps the
input one-probability of the ``comp`` (16-bit comparator) circuit over
a grid, re-propagating the compiled network each time, and shows how
mean switching activity and the outputs' activity respond -- then
contrasts the accumulated propagate time with the one-off compile time.

Run with: ``python examples/input_sensitivity.py``
"""

import numpy as np

from repro import IndependentInputs, SwitchingActivityEstimator
from repro.analysis.tables import format_table
from repro.circuits.suite import load_circuit


def main():
    circuit = load_circuit("comp")
    estimator = SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10)
    estimator.compile()
    print(f"{circuit!r}\ncompile time: {estimator.compile_seconds:.3f}s\n")

    rows = []
    total_propagate = 0.0
    for p_one in np.linspace(0.1, 0.9, 9):
        estimator.update_inputs(IndependentInputs(float(p_one)))
        estimate = estimator.estimate()
        total_propagate += estimate.propagate_seconds
        rows.append(
            [
                round(float(p_one), 2),
                estimate.mean_activity(),
                estimate.switching("a_gt_b"),
                estimate.switching("a_eq_b"),
                estimate.propagate_seconds * 1e3,
            ]
        )

    print(
        format_table(
            ["P(input=1)", "mean activity", "sw(a>b)", "sw(a=b)", "propagate (ms)"],
            rows,
            title="Sweep of input statistics on the 16-bit comparator",
        )
    )
    print(
        f"\n9 sweeps propagated in {total_propagate:.3f}s total vs. "
        f"{estimator.compile_seconds:.3f}s compile -- the paper's "
        "precompile-once advantage."
    )
    # With 16 bits, P(a=b) is vanishingly small for balanced inputs and
    # grows toward biased ones, so the equality output is most active at
    # the extremes of the sweep.
    activities = [row[3] for row in rows]
    print(f"sw(a=b) peaks at P(1)={rows[int(np.argmax(activities))][0]}")


if __name__ == "__main__":
    main()
