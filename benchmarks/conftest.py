"""Shared configuration for the benchmark harness.

By default the benchmarks run a representative subset so a full
``pytest benchmarks/ --benchmark-only`` pass finishes in minutes; set
``REPRO_BENCH_FULL=1`` to run every Table 1 row including the
multi-thousand-gate circuits.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Table 1 rows always benchmarked.
TABLE1_FAST = [
    "c17",
    "c432s",
    "c499s",
    "c880s",
    "alu",
    "malu",
    "max_flat",
    "voter",
    "b9s",
    "c8s",
    "count",
    "comp",
    "pcler8",
]

#: Added when REPRO_BENCH_FULL=1.
TABLE1_SLOW = ["c1355s", "c1908s", "c2670s", "c3540s", "c5315s", "c6288s", "c7552s"]

TABLE1_CIRCUITS = TABLE1_FAST + (TABLE1_SLOW if FULL else [])

TABLE2_CIRCUITS = ["c17", "c432s", "c499s"] + (["c880s", "c1355s"] if FULL else [])

#: Simulation pairs for ground truth in benchmark mode.
N_PAIRS = 100_000 if FULL else 30_000


@pytest.fixture(scope="session")
def report_rows():
    """Session-scoped accumulator printed at the end of the run."""
    rows = {}
    yield rows
    from repro.analysis.tables import format_table, rows_from_dicts

    for title, (columns, data) in rows.items():
        if data:
            print("\n" + format_table(columns, rows_from_dicts(data, columns), title=title))
