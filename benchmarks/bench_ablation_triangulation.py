"""Ablation: triangulation heuristic (min-fill vs. min-degree).

Design choice from DESIGN.md section 5: the elimination-order heuristic
controls the largest clique's state space, which is the exponential
term of junction-tree inference.
"""

import pytest

from repro.bayesian.junction import JunctionTree
from repro.circuits import suite
from repro.core.lidag import build_lidag

CIRCUITS = ["c17", "alu", "voter", "comp", "pcler8", "count"]


@pytest.mark.parametrize("name", CIRCUITS)
@pytest.mark.parametrize("heuristic", ["min_fill", "min_degree"])
def test_triangulation_heuristic(benchmark, name, heuristic, report_rows):
    circuit = suite.load_circuit(name)
    bn = build_lidag(circuit)

    jt = benchmark.pedantic(
        JunctionTree.from_network, args=(bn,), kwargs={"heuristic": heuristic},
        rounds=3, iterations=1,
    )
    stats = jt.stats()
    report_rows.setdefault(
        "Ablation: triangulation heuristic",
        (["circuit", "heuristic", "fill_ins", "max_clique_states", "total_entries"], []),
    )[1].append(
        {
            "circuit": name,
            "heuristic": heuristic,
            "fill_ins": stats["fill_ins"],
            "max_clique_states": stats["max_clique_states"],
            "total_entries": stats["total_table_entries"],
        }
    )
    assert jt.check_running_intersection()


@pytest.mark.parametrize("name", CIRCUITS)
def test_min_fill_no_worse_tables(name):
    """min-fill should not produce (much) larger total tables."""
    circuit = suite.load_circuit(name)
    bn = build_lidag(circuit)
    fill = JunctionTree.from_network(bn, heuristic="min_fill").stats()
    degree = JunctionTree.from_network(bn, heuristic="min_degree").stats()
    assert fill["total_table_entries"] <= degree["total_table_entries"] * 4
