"""Table 2: the Bayesian network versus approximate dependency models.

Regenerates the paper's comparison against the pairwise-correlation
(Marculescu-style) and approximate higher-order (Schneider-style)
methods, plus the plain independence reference.  The benchmark times
each method's end-to-end estimation; the printed table reports error
statistics against simulation.  The reproduced *shape*: the exact BN's
node errors are several times smaller than every approximation's.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_PAIRS, TABLE2_CIRCUITS
from repro.analysis.metrics import error_statistics
from repro.baselines.independent import independence_switching
from repro.baselines.local import local_cone_switching
from repro.baselines.pairwise import pairwise_switching
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.core.inputs import IndependentInputs
from repro.experiments.table1 import make_estimator
from repro.experiments.table2 import TABLE2_COLUMNS

_SIM_CACHE = {}


def _ground_truth(name, circuit):
    if name not in _SIM_CACHE:
        _SIM_CACHE[name] = simulate_switching(
            circuit,
            IndependentInputs(0.5),
            n_pairs=N_PAIRS,
            rng=np.random.default_rng(0),
        ).activities
    return _SIM_CACHE[name]


def _record(report_rows, name, method, activities, sim_acts, seconds):
    stats = error_statistics(activities, sim_acts)
    row = {
        "circuit": name,
        "method": method,
        "mu_err": float(np.mean([activities[l] - sim_acts[l] for l in activities])),
        "mu_abs_err": stats.mean_abs_error,
        "sigma_err": stats.std_error,
        "max_err": stats.max_abs_error,
        "time_s": seconds,
    }
    report_rows.setdefault(
        "Table 2: BN vs approximate dependency models", (TABLE2_COLUMNS, [])
    )[1].append(row)
    return stats


@pytest.mark.parametrize("name", TABLE2_CIRCUITS)
def test_bayesian_network(benchmark, name, report_rows):
    circuit = suite.load_circuit(name)
    sim_acts = _ground_truth(name, circuit)

    def run():
        return make_estimator(circuit, IndependentInputs(0.5)).estimate()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = _record(
        report_rows, name, "bayesian-network", result.activities, sim_acts,
        benchmark.stats["mean"],
    )
    assert stats.std_error < 0.06


@pytest.mark.parametrize("name", TABLE2_CIRCUITS)
def test_pairwise(benchmark, name, report_rows):
    circuit = suite.load_circuit(name)
    sim_acts = _ground_truth(name, circuit)
    result = benchmark(pairwise_switching, circuit, IndependentInputs(0.5))
    _record(
        report_rows, name, "pairwise", result.activities, sim_acts,
        benchmark.stats["mean"],
    )


@pytest.mark.parametrize("name", TABLE2_CIRCUITS)
def test_local_cone(benchmark, name, report_rows):
    circuit = suite.load_circuit(name)
    sim_acts = _ground_truth(name, circuit)
    result = benchmark.pedantic(
        local_cone_switching, args=(circuit, IndependentInputs(0.5)),
        kwargs={"depth": 3, "max_cut_inputs": 6}, rounds=1, iterations=1,
    )
    _record(
        report_rows, name, "local-cone", result.activities, sim_acts,
        benchmark.stats["mean"],
    )


@pytest.mark.parametrize("name", TABLE2_CIRCUITS)
def test_independence(benchmark, name, report_rows):
    circuit = suite.load_circuit(name)
    sim_acts = _ground_truth(name, circuit)
    result = benchmark(independence_switching, circuit, IndependentInputs(0.5))
    _record(
        report_rows, name, "independence", result.activities, sim_acts,
        benchmark.stats["mean"],
    )


@pytest.mark.parametrize("name", ["c432s"])
def test_bn_beats_approximations(name, report_rows):
    """The headline Table 2 shape on a reconvergent circuit."""
    circuit = suite.load_circuit(name)
    sim_acts = _ground_truth(name, circuit)
    bn = make_estimator(circuit, IndependentInputs(0.5)).estimate()
    indep = independence_switching(circuit)
    bn_err = error_statistics(bn.activities, sim_acts).mean_abs_error
    indep_err = error_statistics(indep.activities, sim_acts).mean_abs_error
    assert bn_err < indep_err
