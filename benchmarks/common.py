"""Helpers shared by the benchmark runners.

``bench_propagation.py`` and ``bench_throughput.py`` used to carry
private copies of the compile rule, the scenario salting, and the
timing loop; those now live in :mod:`repro.perf.collect` (the perf
subsystem records profiles with the *same* methodology, so the two can
never drift apart) and are re-exported here for the runners.

This module also provides the runners' ``--store`` mode: after
emitting the usual ``BENCH_*.json`` report, the report is ingested
into the append-only perf profile store so the datapoint lands in the
version trajectory without a separate ``repro perf record`` run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.perf.collect import (  # noqa: F401  (re-exported for runners)
    DEFAULT_CIRCUITS,
    PHI,
    SWEEP,
    compile_or_fallback,
    repeat_cycles,
    salted_scenarios,
    timed,
)


def compile_estimator(circuit, parallelism: int, kernel: str):
    """Estimator-level view of :func:`compile_or_fallback`."""
    model, method = compile_or_fallback(circuit, parallelism, kernel)
    return model.estimator, method


def engine_counters(estimator) -> Dict[str, int]:
    """Cumulative engine counters, tolerant of pre-engine checkouts."""
    if hasattr(estimator, "propagation_counters"):
        return estimator.propagation_counters().as_dict()
    return {}


def store_report(store_dir: str, kind: str, report: Dict, note: str = "") -> None:
    """Ingest a just-emitted benchmark report into the profile store."""
    from repro.perf import PerfStore, ingest_bench_documents

    documents = {kind: report}
    profile = ingest_bench_documents(note=note, **documents)
    path = PerfStore(store_dir).append(profile)
    print(
        f"recorded perf profile for {profile['git']['short']} "
        f"({len(profile['measurements'])} circuit(s)) into {path}"
    )


def add_store_argument(parser) -> None:
    """The shared ``--store`` flag (both runners emit into the store)."""
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="also record this run as a perf profile in the given "
             "profile store directory (see `repro perf`)",
    )


def parse_csv_names(spec: str) -> List[str]:
    """``"a, b,c"`` -> ``["a", "b", "c"]`` (empty entries dropped)."""
    return [name.strip() for name in spec.split(",") if name.strip()]
