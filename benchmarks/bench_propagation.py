"""Propagation-engine benchmark: compile vs. propagate vs. marginal extraction.

Emits ``BENCH_propagation.json`` (schema version 4) -- the perf
trajectory datapoint.  The paper's headline claim is the *compile once,
re-propagate in milliseconds* split; this runner times the three phases
separately so regressions in any one of them are visible:

- ``compile_seconds``      -- LIDAG + triangulation + junction tree(s),
- ``first_estimate_seconds`` -- first calibration + marginal read-off,
- ``repeat_estimate_min_seconds`` -- minimum over ``update_inputs`` +
  ``estimate()`` cycles with fresh input statistics.  **The primary
  metric since schema v3**: the min is the least noise-contaminated
  observation of the fast path's true cost, which is what regression
  comparisons should use (the mean is retained as
  ``repeat_estimate_seconds`` for context),
- ``marginal_extraction_seconds`` -- reading every line's 4-state
  marginal from an already calibrated tree (batched when available).

Since schema version 2 every row also carries a ``breakdown`` section
with the engine's structural work counters (messages passed, dirty
cliques skipped versus repropagated, FLOP estimate, preallocated buffer
bytes) read from the always-on :class:`PropagationCounters` -- timings
can then be *explained*, not just compared.  The counters are plain
integer adds inside the engine, so recording them does not perturb the
timed phases.

Since schema version 4 the primary run uses the sparse message-kernel
path (``--kernel``, default ``auto``) and every row additionally
records the compile-time support analysis (``support_density``,
``feasible_states``, ``total_states``, ``sparse_cliques``) plus a
dense-kernel comparison run over the same sweep:
``dense_repeat_estimate_min_seconds`` (the same repeat-phase timing
with ``kernel="dense"``), ``sparse_speedup`` (dense over primary), and
``max_abs_diff_vs_dense`` (worst per-line distribution delta between
the two kernels across the sweep -- the recorded exactness evidence,
expected at the 1e-15 association-order level, hard-bounded by 1e-12).

Usage::

    PYTHONPATH=src python benchmarks/bench_propagation.py \
        [--circuits c17,alu,comp,voter,pcler8,c432s] [--repeats 5] \
        [--kernel auto|dense|sparse] [--output BENCH_propagation.json] \
        [--store .repro-perf]

``--store DIR`` additionally records the run into the perf profile
store (see ``repro perf``), so the datapoint joins the version
trajectory without a separate ``repro perf record`` pass.

Compilation goes through the backend facade: the ``"junction-tree"``
backend first, falling back to ``"segmented"`` on
:class:`CliqueBudgetExceeded` (the c432 class), exactly as the CLI
does.  Phase timings run against the raw estimator under the artifact
so the numbers measure the engine, not the facade.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from typing import Dict, List

try:  # package import (pytest benchmarks/, repo-root scripts)
    from benchmarks.common import (
        DEFAULT_CIRCUITS,
        SWEEP,
        add_store_argument,
        compile_estimator,
        engine_counters,
        parse_csv_names,
        repeat_cycles,
        store_report,
    )
except ImportError:  # direct execution: python benchmarks/bench_propagation.py
    from common import (
        DEFAULT_CIRCUITS,
        SWEEP,
        add_store_argument,
        compile_estimator,
        engine_counters,
        parse_csv_names,
        repeat_cycles,
        store_report,
    )

from repro.circuits import suite
from repro.core.inputs import IndependentInputs
from repro.core.segmentation import SegmentedEstimator

#: Bump when the emitted JSON shape changes (v2: added ``schema_version``
#: and per-row ``breakdown`` with engine work counters; v3:
#: ``repeat_estimate_min_seconds`` is the primary repeat-phase metric
#: and the breakdown carries the batched-engine counters; v4: rows
#: record the support analysis -- ``kernel``, ``support_density``,
#: ``feasible_states``, ``total_states``, ``sparse_cliques`` -- and a
#: dense-kernel comparison: ``dense_repeat_estimate_min_seconds``,
#: ``sparse_speedup``, ``max_abs_diff_vs_dense``).
BENCH_SCHEMA_VERSION = 4


def _extract_marginals(estimator, lines: List[str]) -> float:
    """Seconds to read every line marginal from a calibrated tree.

    Uses the batched :meth:`JunctionTree.marginals` sweep when the
    engine provides it, falling back to per-line ``marginal`` calls so
    the runner also works against pre-engine checkouts.
    """
    jt = estimator.junction_tree
    start = time.perf_counter()
    if hasattr(jt, "marginals"):
        jt.marginals(lines)
    else:
        for line in lines:
            jt.marginal(line)
    return time.perf_counter() - start


def _max_abs_diff(estimator_a, estimator_b) -> float:
    """Worst per-line distribution delta between two estimators' sweeps."""
    worst = 0.0
    for p in SWEEP:
        model = IndependentInputs(p)
        estimator_a.update_inputs(model)
        estimator_b.update_inputs(model)
        got = estimator_a.estimate().distributions
        ref = estimator_b.estimate().distributions
        for line, dist in ref.items():
            delta = float(abs(dist - got[line]).max())
            if delta > worst:
                worst = delta
    return worst


def bench_circuit(
    name: str, repeats: int, parallelism: int, kernel: str = "auto"
) -> Dict[str, object]:
    circuit = suite.load_circuit(name)
    row: Dict[str, object] = {
        "circuit": name,
        "gates": circuit.num_gates,
        "lines": len(circuit.lines),
        "kernel": kernel,
    }

    start = time.perf_counter()
    estimator, method = compile_estimator(circuit, parallelism, kernel)
    row["method"] = method
    if method == "segmented":
        row["segments"] = estimator.num_segments
    row["compile_seconds"] = time.perf_counter() - start
    if hasattr(estimator, "support_stats"):
        stats = estimator.support_stats()
        row["support_density"] = stats["support_density"]
        row["feasible_states"] = stats["feasible_states"]
        row["total_states"] = stats["total_states"]
        row["sparse_cliques"] = stats["sparse_cliques"]

    start = time.perf_counter()
    first = estimator.estimate()
    row["first_estimate_seconds"] = time.perf_counter() - start
    after_first = engine_counters(estimator)

    cycle_seconds = repeat_cycles(estimator, repeats)
    row["repeat_estimate_seconds"] = statistics.mean(cycle_seconds)
    row["repeat_estimate_min_seconds"] = min(cycle_seconds)

    # Dense-kernel comparison over the same sweep: the speedup the
    # packed kernels buy, and the recorded evidence that they change
    # nothing (worst per-line delta, expected at float association-
    # order level).
    if kernel != "dense":
        dense, _ = compile_estimator(circuit, parallelism, "dense")
        dense.estimate()  # first calibration outside the timed region
        dense_cycles = repeat_cycles(dense, repeats)
        row["dense_repeat_estimate_min_seconds"] = min(dense_cycles)
        row["sparse_speedup"] = (
            row["dense_repeat_estimate_min_seconds"]
            / row["repeat_estimate_min_seconds"]
        )
        row["max_abs_diff_vs_dense"] = _max_abs_diff(estimator, dense)
    else:
        row["dense_repeat_estimate_min_seconds"] = row[
            "repeat_estimate_min_seconds"
        ]
        row["sparse_speedup"] = 1.0
        row["max_abs_diff_vs_dense"] = 0.0

    if not isinstance(estimator, SegmentedEstimator):
        row["marginal_extraction_seconds"] = _extract_marginals(
            estimator, list(circuit.lines)
        )
    row["mean_activity"] = first.mean_activity()

    totals = engine_counters(estimator)
    if totals:
        # Repeat-phase deltas isolate the dirty-clique fast path: the
        # skipped count is the work the engine *avoided* re-doing.
        repeat_totals = {
            key: totals[key] - after_first.get(key, 0) for key in totals
        }
        row["breakdown"] = {
            "messages_passed": totals["messages"],
            "cliques_repropagated": totals["cliques_repropagated"],
            "cliques_skipped": totals["cliques_skipped"],
            "flop_estimate": totals["flops"],
            "scenarios_propagated": totals.get("scenarios_propagated", 0),
            "potentials_unchanged": totals.get("potentials_unchanged", 0),
            "factor_bytes": (
                estimator.factor_bytes()
                if hasattr(estimator, "factor_bytes")
                else 0
            ),
            "repeat_phase": {
                "messages_passed": repeat_totals["messages"],
                "cliques_repropagated": repeat_totals["cliques_repropagated"],
                "cliques_skipped": repeat_totals["cliques_skipped"],
                "flop_estimate": repeat_totals["flops"],
            },
        }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuits", default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated circuit names from the Table 1 suite",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--parallelism", type=int, default=0,
        help="worker threads for segmented circuits (0 = serial)",
    )
    parser.add_argument(
        "--kernel", default="auto", choices=("auto", "dense", "sparse"),
        help="message-kernel mode for the primary run",
    )
    parser.add_argument("--output", default="BENCH_propagation.json")
    add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    rows = []
    for name in parse_csv_names(args.circuits):
        row = bench_circuit(name, args.repeats, args.parallelism, args.kernel)
        rows.append(row)
        print(
            f"{name:>10s}  {row['method']:>9s}  "
            f"compile {row['compile_seconds']:7.3f}s  "
            f"first {row['first_estimate_seconds']:7.3f}s  "
            f"repeat(min) {row['repeat_estimate_min_seconds']:7.3f}s  "
            f"dense(min) {row['dense_repeat_estimate_min_seconds']:7.3f}s  "
            f"x{row['sparse_speedup']:5.2f}  "
            f"density {row.get('support_density', 1.0):5.3f}  "
            f"diff {row['max_abs_diff_vs_dense']:.1e}"
        )

    report = {
        "benchmark": "propagation",
        "schema_version": BENCH_SCHEMA_VERSION,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.store:
        store_report(args.store, "propagation", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
