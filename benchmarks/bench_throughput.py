"""Multi-scenario sweep throughput: batched vs. looped vs. delta.

Emits ``BENCH_throughput.json`` (schema version 3).  PR 5's tentpole
claim is that K input-statistics queries against one compiled model
should cost one batched einsum pass, not K sequential propagations;
this runner measures exactly that ratio:

- ``looped_scenarios_per_sec``  -- sequential ``update_inputs()`` +
  ``estimate()`` per scenario on a persistent compiled estimator (the
  pre-batching fast path, dirty-clique tracking and all),
- ``batched_scenarios_per_sec`` -- one ``estimate_many()`` call
  propagating all K scenarios through the engine's leading batch axis,
- ``speedup``                   -- batched rate over looped rate,
- ``bitwise_equal``             -- whether the batched sweep's
  distributions match a looped full-propagation oracle bit for bit
  (checked outside the timed region on fresh compiles; a full pass is
  a pure function of the potentials, so equality is exact, not
  approximate).

Schema version 3 adds one ``"sweep": "delta"`` row per circuit at the
largest configured K: a *low-Hamming sorted* sweep (every request
perturbs only the first primary input's statistics, and each of the
K/4 operating points is re-evaluated four times -- the synthesis-loop
what-if shape) run through ``sweep_mode="delta"`` -- the dedup +
incremental CPD-update chain -- against the same sweep run as a fresh
batched pass.  Delta rows carry:

- ``batched_scenarios_per_sec`` -- the row's canonical rate metric
  (scenarios/sec through the delta chain; the ``sweep`` tag in the
  row key keeps it from colliding with plain batched rows),
- ``fresh_batched_scenarios_per_sec`` / ``delta_speedup`` -- the
  fresh batched pass on the identical sweep and the ratio,
- ``bitwise_equal`` -- delta results vs. a *fresh-compile* batched
  oracle, exact equality (the delta chain restarts propagation from
  reset potentials, so its marginals are bit-identical to a fresh
  pass by construction).

Each timing repeat uses a *different* deterministic scenario set so
the skip-unchanged-potential fast path never turns a repeat into a
no-op; the minimum over repeats is reported (least noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py \
        [--circuits c17,alu,comp,voter,pcler8,c432s] \
        [--batch-sizes 1,8,64,256] [--repeats 3] [--quick] \
        [--output BENCH_throughput.json] [--store .repro-perf]

``--quick`` shrinks the run to the CI smoke configuration (c17 only,
K in {1, 64}, 2 repeats).  ``--store DIR`` additionally records the
run into the perf profile store (see ``repro perf``), so the datapoint
joins the version trajectory without a separate ``repro perf record``
pass.

Since schema version 2 compiles are kernel-aware (``--kernel``, default
``auto`` -- the sparse message-kernel path) and every row records the
``kernel`` mode plus the compile-time ``support_density`` and
``sparse_cliques`` of the model it timed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List

import numpy as np

try:  # package import (pytest benchmarks/, repo-root scripts)
    from benchmarks.common import (
        DEFAULT_CIRCUITS,
        add_store_argument,
        compile_or_fallback,
        parse_csv_names,
        salted_scenarios,
        store_report,
        timed,
    )
except ImportError:  # direct execution: python benchmarks/bench_throughput.py
    from common import (
        DEFAULT_CIRCUITS,
        add_store_argument,
        compile_or_fallback,
        parse_csv_names,
        salted_scenarios,
        store_report,
        timed,
    )

from repro.circuits import suite
from repro.core.inputs import IndependentInputs

DEFAULT_BATCH_SIZES = [1, 8, 64, 256]

#: Bump when the emitted JSON shape changes (v2: kernel-aware
#: compiles; rows carry ``kernel``, ``support_density`` and
#: ``sparse_cliques`` from the compile-time support analysis.
#: v3: low-Hamming ``"sweep": "delta"`` rows with ``delta_speedup``).
BENCH_SCHEMA_VERSION = 3


def _loop_sweep(estimator, models) -> None:
    for model in models:
        estimator.update_inputs(model)
        estimator.estimate()


#: golden-ratio increment for the delta sweep's perturbed input
_PHI = 0.6180339887498949


def delta_scenarios(circuit, k: int, salt: int, distinct: int = 0):
    """``k`` requests sweeping the *first* primary input, sorted, with
    each operating point re-evaluated ``k // distinct`` times.

    This is the skewed sweep-traffic shape the delta planner exists
    for (a synthesis loop scoring many candidates against few stimulus
    models): every scenario holds all inputs at the 0.5 default except
    ``circuit.inputs[0]``, whose ``p_one`` steps through ``distinct``
    (default ``k // 4``) sorted low-discrepancy values -- so
    consecutive requests are Hamming distance <= 1 apart in changed
    input CPDs, and exact repeats collapse in the planner's dedup
    stage while the fresh batched baseline propagates all ``k``.
    """
    if distinct <= 0:
        distinct = max(1, k // 4)
    hot = list(circuit.inputs)[0]
    values = sorted(
        0.05 + 0.9 * ((i * _PHI + salt * 0.2718 + 0.041) % 1.0)
        for i in range(distinct)
    )
    return [
        IndependentInputs({hot: values[(i * distinct) // k]})
        for i in range(k)
    ]


def _bitwise_check(
    circuit, parallelism: int, k: int, kernel: str
) -> Dict[str, object]:
    """Fresh-compile oracle: batched sweep vs. looped full propagations.

    Both sides force complete propagations (``reset_propagation`` marks
    every clique dirty), making each result a pure function of the
    installed potentials -- so the comparison is exact equality, and
    any difference is a real kernel divergence, not float noise.
    """
    models = salted_scenarios(k, salt=0)
    loop_model, _ = compile_or_fallback(circuit, parallelism, kernel)
    oracle = []
    for model in models:
        loop_model.estimator.reset_propagation()
        loop_model.estimator.update_inputs(model)
        oracle.append(loop_model.estimator.estimate())
    batch_model, _ = compile_or_fallback(circuit, parallelism, kernel)
    batched = batch_model.query_many(models)
    worst = 0.0
    equal = True
    for expect, got in zip(oracle, batched):
        for line, dist in expect.distributions.items():
            other = got.distributions[line]
            if not np.array_equal(dist, other):
                equal = False
                worst = max(worst, float(np.abs(dist - other).max()))
    return {"bitwise_equal": equal, "max_abs_diff": worst}


def bench_circuit(
    name: str,
    batch_sizes: List[int],
    repeats: int,
    parallelism: int,
    kernel: str = "auto",
) -> List[Dict[str, object]]:
    circuit = suite.load_circuit(name)
    model, method = compile_or_fallback(circuit, parallelism, kernel)
    estimator = model.estimator
    stats = (
        estimator.support_stats()
        if hasattr(estimator, "support_stats")
        else {"support_density": 1.0, "sparse_cliques": 0}
    )
    rows: List[Dict[str, object]] = []
    for k in batch_sizes:
        # Warm both paths once (outside timing) so one-time costs --
        # the batch engine allocation in particular -- are excluded.
        _loop_sweep(estimator, salted_scenarios(k, salt=repeats + 1))
        model.query_many(salted_scenarios(k, salt=repeats + 2))

        looped = min(
            timed(_loop_sweep, estimator, salted_scenarios(k, salt=r))
            for r in range(repeats)
        )
        batched = min(
            timed(model.query_many, salted_scenarios(k, salt=r))
            for r in range(repeats)
        )
        row: Dict[str, object] = {
            "circuit": name,
            "gates": circuit.num_gates,
            "method": method,
            "kernel": kernel,
            "support_density": stats["support_density"],
            "sparse_cliques": stats["sparse_cliques"],
            "batch_size": k,
            "looped_seconds": looped,
            "batched_seconds": batched,
            "looped_scenarios_per_sec": k / looped,
            "batched_scenarios_per_sec": k / batched,
            "speedup": looped / batched,
        }
        row.update(_bitwise_check(circuit, parallelism, k, kernel))
        rows.append(row)
        print(
            f"{name:>10s}  K={k:<4d} "
            f"looped {row['looped_scenarios_per_sec']:9.1f}/s  "
            f"batched {row['batched_scenarios_per_sec']:9.1f}/s  "
            f"speedup {row['speedup']:6.2f}x  "
            f"bitwise={'yes' if row['bitwise_equal'] else 'NO'}"
        )
    return rows


def _delta_bitwise_check(
    circuit, parallelism: int, k: int, kernel: str
) -> Dict[str, object]:
    """Fresh-compile oracle for the delta chain.

    The batched side must be a *fresh* estimator: a reused one carries
    the documented 1-ULP dirty-path drift across sweeps, which would
    make the comparison measure the baseline's noise instead of the
    delta chain's correctness.
    """
    models = delta_scenarios(circuit, k, salt=0)
    oracle_model, _ = compile_or_fallback(circuit, parallelism, kernel)
    oracle = oracle_model.query_many(models)
    fresh_model, _ = compile_or_fallback(circuit, parallelism, kernel)
    got = fresh_model.query_many(models, sweep_mode="delta")
    worst = 0.0
    equal = True
    for expect, actual in zip(oracle, got):
        for line, dist in expect.distributions.items():
            other = actual.distributions[line]
            if not np.array_equal(dist, other):
                equal = False
                worst = max(worst, float(np.abs(dist - other).max()))
    return {"bitwise_equal": equal, "max_abs_diff": worst}


def bench_delta_circuit(
    name: str,
    k: int,
    repeats: int,
    parallelism: int,
    kernel: str = "auto",
) -> Dict[str, object]:
    """One low-Hamming delta-sweep row: delta chain vs. fresh batched."""
    circuit = suite.load_circuit(name)
    model, method = compile_or_fallback(circuit, parallelism, kernel)

    # Warm both modes once (outside timing), same protocol as the
    # batched rows.
    model.query_many(delta_scenarios(circuit, k, salt=repeats + 1))
    model.query_many(
        delta_scenarios(circuit, k, salt=repeats + 2), sweep_mode="delta"
    )

    batched = min(
        timed(model.query_many, delta_scenarios(circuit, k, salt=r))
        for r in range(repeats)
    )
    delta = min(
        timed(
            lambda scens: model.query_many(scens, sweep_mode="delta"),
            delta_scenarios(circuit, k, salt=r),
        )
        for r in range(repeats)
    )
    row: Dict[str, object] = {
        "circuit": name,
        "gates": circuit.num_gates,
        "method": method,
        "kernel": kernel,
        "batch_size": k,
        "sweep": "delta",
        "distinct_scenarios": max(1, k // 4),
        "delta_seconds": delta,
        "fresh_batched_seconds": batched,
        # The kind's canonical rate metric: scenarios/sec in this row's
        # sweep mode (the "sweep" key field keeps delta and plain
        # batched rows from colliding in diffs).
        "batched_scenarios_per_sec": k / delta,
        "fresh_batched_scenarios_per_sec": k / batched,
        "delta_speedup": batched / delta,
    }
    row.update(_delta_bitwise_check(circuit, parallelism, k, kernel))
    print(
        f"{name:>10s}  K={k:<4d} "
        f"fresh   {row['fresh_batched_scenarios_per_sec']:9.1f}/s  "
        f"delta   {row['batched_scenarios_per_sec']:9.1f}/s  "
        f"speedup {row['delta_speedup']:6.2f}x  "
        f"bitwise={'yes' if row['bitwise_equal'] else 'NO'}"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuits", default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated circuit names from the Table 1 suite",
    )
    parser.add_argument(
        "--batch-sizes", default=",".join(map(str, DEFAULT_BATCH_SIZES)),
        help="comma-separated scenario counts K",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--parallelism", type=int, default=0,
        help="worker threads for segmented circuits (0 = serial)",
    )
    parser.add_argument(
        "--kernel", default="auto", choices=("auto", "dense", "sparse"),
        help="message-kernel mode for every compile",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: c17 only, K in {1, 64}, 2 repeats",
    )
    parser.add_argument("--output", default="BENCH_throughput.json")
    add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.quick:
        circuits = ["c17"]
        batch_sizes = [1, 64]
        repeats = 2
    else:
        circuits = parse_csv_names(args.circuits)
        batch_sizes = [
            int(k) for k in parse_csv_names(args.batch_sizes)
        ]
        repeats = args.repeats
    if repeats < 1:
        parser.error("--repeats must be >= 1")
    if any(k < 1 for k in batch_sizes):
        parser.error("--batch-sizes entries must be >= 1")

    # Delta rows exercise the warm-sweep shape; a K=1 "sweep" has no
    # chain to amortize.  K=64 is the canonical gated size (the
    # committed c432s baseline row); fall back to the largest
    # configured batch when 64 is not in the sweep.
    delta_k = 64 if 64 in batch_sizes else max(batch_sizes)

    rows: List[Dict[str, object]] = []
    for name in circuits:
        rows.extend(
            bench_circuit(
                name, batch_sizes, repeats, args.parallelism, args.kernel
            )
        )
        if delta_k > 1:
            rows.append(
                bench_delta_circuit(
                    name, delta_k, repeats, args.parallelism, args.kernel
                )
            )

    report = {
        "benchmark": "throughput",
        "schema_version": BENCH_SCHEMA_VERSION,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.store:
        store_report(args.store, "throughput", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
