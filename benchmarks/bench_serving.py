"""Serving throughput: dynamic batching vs. request-at-a-time vs. cached.

Emits ``BENCH_serving.json`` (schema version 2).  The resident server
(``repro.serve``) only earns its keep if concurrent clients' single
scenarios coalesce into one batched propagation; this runner measures
that end to end -- HTTP parsing, the batcher's linger window, engine
checkout, and the propagation itself -- by driving a live server with
closed-loop clients:

- ``unbatched`` rows -- the server runs with ``max_batch=1``, linger
  ``0``: every request is its own propagation (the PR 5 fast path
  behind an HTTP endpoint).
- ``batched`` rows -- the same server configured with the default
  ``max_batch``/linger; concurrent requests merge into ``query_many``
  sweeps.  The result cache is *off* in both legacy modes so the rows
  keep measuring exactly what they did at schema version 1.
- ``cached`` rows (schema 2) -- the batched configuration plus the
  fingerprint-keyed result cache, driven with a *skewed* scenario
  stream (``--cached-workload``, default ``zipf:1.1``): the
  synthesis-loop traffic shape where most requests revisit a small
  scenario universe.  Rows record the per-run ``cache_hit_rate`` and a
  ``bitwise_equal`` flag: a post-run cache *hit* for the hottest
  scenario is compared byte-for-byte against a fresh, uncached
  in-process propagation.
- ``speedup`` (batched rows) -- batched over unbatched scenarios/sec
  at the same concurrency.
- ``cached_speedup`` (cached rows) -- cached over *batched*
  scenarios/sec at the same concurrency: the reuse win on top of the
  batching win.

At concurrency 1 the two legacy modes should be within noise of each
other (a lone request never waits out the linger window); the batching
win appears as concurrency grows, and the caching win grows with the
stream's skew.  Latency percentiles are nearest-rank over every
request in the cell.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--circuits c17,comp,voter,alu] [--concurrency 1,4,16] \
        [--requests-per-client 20] [--max-batch 16] [--linger-ms 5] \
        [--cached-workload zipf:1.1] [--result-cache-entries 4096] \
        [--quick] [--output BENCH_serving.json] [--store .repro-perf]

``--quick`` shrinks the run to the CI smoke configuration (c17 only,
concurrency {1, 4}, 8 requests per client).  ``--store DIR`` records
the run into the perf profile store (see ``repro perf``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List, Optional, Tuple

try:  # package import (pytest benchmarks/, repo-root scripts)
    from benchmarks.common import add_store_argument, parse_csv_names, store_report
except ImportError:  # direct execution: python benchmarks/bench_serving.py
    from common import add_store_argument, parse_csv_names, store_report

from repro.serve import EstimationServer, ServerConfig, run_load
from repro.serve.client import ServeClient, scenario_spec

#: Serving is propagation-bound on these: comp/voter/alu have 5-7x raw
#: batch leverage at K=16, c17 shows the HTTP-bound small-circuit case.
DEFAULT_CIRCUITS = ["c17", "comp", "voter", "alu"]
DEFAULT_CONCURRENCY = [1, 4, 16]

BENCH_SCHEMA_VERSION = 2

#: the three server configurations a schema-2 report covers
MODES = ("unbatched", "batched", "cached")


def _cache_counts(server: EstimationServer) -> Tuple[int, int]:
    """(hits, misses) so far, or (0, 0) when the cache is off."""
    if server.rcache is None:
        return 0, 0
    stats = server.rcache.stats()
    return int(stats["hits"]), int(stats["misses"])


def _verify_cached_bitwise(
    server: EstimationServer, circuit: str, salt: float
) -> bool:
    """Compare a cache *hit* for the hottest scenario against a fresh
    uncached propagation, byte for byte.

    The skewed workloads all hammer scenario id 0, so after a cached
    cell has run, requesting it again replays the stored marginals
    (``result_cache_hit`` must say so).  JSON serializes float64 via
    ``repr`` which round-trips exactly, so list equality here is
    bitwise equality of the underlying doubles.
    """
    from repro.circuits import suite
    from repro.core.backend import estimate as backend_estimate
    from repro.core.inputs import input_model_from_spec

    spec = scenario_spec(0, salt)
    client = ServeClient(server.address)
    payload = client.estimate(circuit, spec, detail="distributions")
    if payload.get("result_cache_hit") is not True:
        return False
    fresh = backend_estimate(
        suite.load_circuit(circuit),
        input_model_from_spec(spec),
        backend=server.config.backend,
        cache=None,
        **server.config.options,
    )
    oracle = {
        line: [float(v) for v in dist]
        for line, dist in fresh.distributions.items()
    }
    return payload["distributions"] == oracle


def bench_mode(
    mode: str,
    circuits: List[str],
    concurrency_levels: List[int],
    requests_per_client: int,
    max_batch: int,
    linger_ms: float,
    workers: int,
    repeats: int,
    cached_workload: str,
    result_cache_entries: int,
) -> List[Dict[str, object]]:
    """One server lifetime per mode; every (circuit, concurrency) cell
    runs against it so the model pool stays warm across cells."""
    if mode == "unbatched":
        config = ServerConfig(port=0, cache=None, max_batch=1, linger_ms=0.0,
                              workers=workers, result_cache_entries=0)
    elif mode == "batched":
        config = ServerConfig(port=0, cache=None, max_batch=max_batch,
                              linger_ms=linger_ms, workers=workers,
                              result_cache_entries=0)
    else:
        config = ServerConfig(port=0, cache=None, max_batch=max_batch,
                              linger_ms=linger_ms, workers=workers,
                              result_cache_entries=result_cache_entries)
    workload = cached_workload if mode == "cached" else "uniform"
    rows: List[Dict[str, object]] = []
    with EstimationServer(config) as server:
        for name in circuits:
            for concurrency in concurrency_levels:
                # Best of ``repeats`` runs per cell (the repo-wide
                # min-over-repeats idiom): closed-loop throughput on a
                # shared box is one-sided noise -- interference only
                # ever slows it down.  Each repeat's salt changes every
                # scenario, so a cached repeat never rides the previous
                # repeat's entries; its hit rate comes from the
                # hits/misses counter deltas it contributed itself.
                best = None
                best_hit_rate: Optional[float] = None
                best_salt = 0.0
                for r in range(repeats):
                    hits0, misses0 = _cache_counts(server)
                    report = run_load(
                        server.address,
                        name,
                        mode="closed",
                        concurrency=concurrency,
                        requests=concurrency * requests_per_client,
                        salt=float(r),
                        workload=workload,
                    )
                    if best is None or report.scenarios_per_sec > best.scenarios_per_sec:
                        best = report
                        best_salt = float(r)
                        if mode == "cached":
                            hits1, misses1 = _cache_counts(server)
                            lookups = (hits1 - hits0) + (misses1 - misses0)
                            best_hit_rate = (
                                (hits1 - hits0) / lookups if lookups else 0.0
                            )
                report = best
                row: Dict[str, object] = {
                    "circuit": name,
                    "mode": mode,
                    "concurrency": concurrency,
                    "requests": report.requests,
                    "errors": report.errors,
                    "scenarios_per_sec": report.scenarios_per_sec,
                    "p50_latency_seconds": report.p50_latency_seconds,
                    "p99_latency_seconds": report.p99_latency_seconds,
                }
                if mode == "cached":
                    row["workload"] = workload
                    row["cache_hit_rate"] = best_hit_rate
                    row["bitwise_equal"] = _verify_cached_bitwise(
                        server, name, best_salt
                    )
                rows.append(row)
                hit_note = (
                    f"  hit_rate {best_hit_rate:5.2f}"
                    if best_hit_rate is not None
                    else ""
                )
                print(
                    f"{name:>10s}  {mode:>9s}  c={concurrency:<3d} "
                    f"{report.scenarios_per_sec:9.1f}/s  "
                    f"p50 {report.p50_latency_seconds * 1e3:7.1f}ms  "
                    f"p99 {report.p99_latency_seconds * 1e3:7.1f}ms"
                    + hit_note
                    + (f"  errors={report.errors}" if report.errors else "")
                )
        batcher = server.batcher.stats
        for row in rows:
            if mode in ("batched", "cached"):
                row["mean_batch_size"] = batcher.mean_batch_size()
            if mode == "cached":
                row["deduped_requests"] = batcher.deduped
    return rows


def annotate_speedups(rows: List[Dict[str, object]]) -> None:
    """Attach ``speedup`` to batched rows (batched / unbatched rate)
    and ``cached_speedup`` to cached rows (cached / batched rate)."""
    unbatched = {
        (row["circuit"], row["concurrency"]): row["scenarios_per_sec"]
        for row in rows
        if row["mode"] == "unbatched"
    }
    batched = {
        (row["circuit"], row["concurrency"]): row["scenarios_per_sec"]
        for row in rows
        if row["mode"] == "batched"
    }
    for row in rows:
        if row["mode"] == "batched":
            base = unbatched.get((row["circuit"], row["concurrency"]))
            if base:
                row["speedup"] = row["scenarios_per_sec"] / base
                print(
                    f"{row['circuit']:>10s}  c={row['concurrency']:<3d} "
                    f"batching speedup {row['speedup']:5.2f}x"
                )
        elif row["mode"] == "cached":
            base = batched.get((row["circuit"], row["concurrency"]))
            if base:
                row["cached_speedup"] = row["scenarios_per_sec"] / base
                print(
                    f"{row['circuit']:>10s}  c={row['concurrency']:<3d} "
                    f"caching speedup {row['cached_speedup']:5.2f}x "
                    f"(hit_rate {row['cache_hit_rate']:.2f})"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuits", default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated circuit names from the Table 1 suite",
    )
    parser.add_argument(
        "--concurrency", default=",".join(map(str, DEFAULT_CONCURRENCY)),
        help="comma-separated closed-loop client counts",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=20,
        help="requests each client issues per cell (default: 20)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="batched-mode scenario ceiling per propagation (default: 16)",
    )
    parser.add_argument(
        "--linger-ms", type=float, default=5.0,
        help="batched-mode linger window (default: 5.0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="batch drain threads in both modes (default: 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="load runs per cell; the fastest is reported (default: 3)",
    )
    parser.add_argument(
        "--cached-workload", default="zipf:1.1",
        help="scenario stream for cached-mode rows (default: zipf:1.1)",
    )
    parser.add_argument(
        "--result-cache-entries", type=int, default=4096,
        help="result-cache capacity in cached mode (default: 4096)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: c17 only, concurrency {1, 4}, "
             "8 requests per client, 1 repeat",
    )
    parser.add_argument("--output", default="BENCH_serving.json")
    add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.quick:
        circuits = ["c17"]
        concurrency_levels = [1, 4]
        requests_per_client = 8
        repeats = 1
    else:
        circuits = parse_csv_names(args.circuits)
        concurrency_levels = [
            int(c) for c in parse_csv_names(args.concurrency)
        ]
        requests_per_client = args.requests_per_client
        repeats = args.repeats
    if repeats < 1:
        parser.error("--repeats must be >= 1")
    if requests_per_client < 1:
        parser.error("--requests-per-client must be >= 1")
    if any(c < 1 for c in concurrency_levels):
        parser.error("--concurrency entries must be >= 1")
    if args.result_cache_entries < 1:
        parser.error("--result-cache-entries must be >= 1 (cached mode "
                     "is the point of schema 2)")

    rows: List[Dict[str, object]] = []
    for mode in MODES:
        rows.extend(
            bench_mode(
                mode, circuits, concurrency_levels, requests_per_client,
                args.max_batch, args.linger_ms, args.workers, repeats,
                args.cached_workload, args.result_cache_entries,
            )
        )
    annotate_speedups(rows)

    report = {
        "benchmark": "serving",
        "schema_version": BENCH_SCHEMA_VERSION,
        "requests_per_client": requests_per_client,
        "repeats": repeats,
        "max_batch": args.max_batch,
        "linger_ms": args.linger_ms,
        "workers": args.workers,
        "cached_workload": args.cached_workload,
        "result_cache_entries": args.result_cache_entries,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.store:
        store_report(args.store, "serving", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
