"""Serving throughput: dynamic batching vs. request-at-a-time.

Emits ``BENCH_serving.json`` (schema version 1).  The resident server
(``repro.serve``) only earns its keep if concurrent clients' single
scenarios coalesce into one batched propagation; this runner measures
that end to end -- HTTP parsing, the batcher's linger window, engine
checkout, and the propagation itself -- by driving a live server with
closed-loop clients:

- ``unbatched`` rows -- the server runs with ``max_batch=1``, linger
  ``0``: every request is its own propagation (the PR 5 fast path
  behind an HTTP endpoint).
- ``batched`` rows -- the same server configured with the default
  ``max_batch``/linger; concurrent requests merge into ``query_many``
  sweeps.
- ``speedup`` (batched rows) -- batched over unbatched scenarios/sec
  at the same concurrency.

At concurrency 1 the two modes should be within noise of each other
(a lone request never waits out the linger window); the batching win
appears as concurrency grows.  Latency percentiles are nearest-rank
over every request in the cell.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--circuits c17,comp,voter,alu] [--concurrency 1,4,16] \
        [--requests-per-client 20] [--max-batch 16] [--linger-ms 5] \
        [--quick] [--output BENCH_serving.json] [--store .repro-perf]

``--quick`` shrinks the run to the CI smoke configuration (c17 only,
concurrency {1, 4}, 8 requests per client).  ``--store DIR`` records
the run into the perf profile store (see ``repro perf``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List

try:  # package import (pytest benchmarks/, repo-root scripts)
    from benchmarks.common import add_store_argument, parse_csv_names, store_report
except ImportError:  # direct execution: python benchmarks/bench_serving.py
    from common import add_store_argument, parse_csv_names, store_report

from repro.serve import EstimationServer, ServerConfig, run_load

#: Serving is propagation-bound on these: comp/voter/alu have 5-7x raw
#: batch leverage at K=16, c17 shows the HTTP-bound small-circuit case.
DEFAULT_CIRCUITS = ["c17", "comp", "voter", "alu"]
DEFAULT_CONCURRENCY = [1, 4, 16]

BENCH_SCHEMA_VERSION = 1


def bench_mode(
    mode: str,
    circuits: List[str],
    concurrency_levels: List[int],
    requests_per_client: int,
    max_batch: int,
    linger_ms: float,
    workers: int,
    repeats: int,
) -> List[Dict[str, object]]:
    """One server lifetime per mode; every (circuit, concurrency) cell
    runs against it so the model pool stays warm across cells."""
    if mode == "unbatched":
        config = ServerConfig(port=0, cache=None, max_batch=1, linger_ms=0.0,
                              workers=workers)
    else:
        config = ServerConfig(port=0, cache=None, max_batch=max_batch,
                              linger_ms=linger_ms, workers=workers)
    rows: List[Dict[str, object]] = []
    with EstimationServer(config) as server:
        for name in circuits:
            for concurrency in concurrency_levels:
                # Best of ``repeats`` runs per cell (the repo-wide
                # min-over-repeats idiom): closed-loop throughput on a
                # shared box is one-sided noise -- interference only
                # ever slows it down.
                report = max(
                    (
                        run_load(
                            server.address,
                            name,
                            mode="closed",
                            concurrency=concurrency,
                            requests=concurrency * requests_per_client,
                            salt=float(r),
                        )
                        for r in range(repeats)
                    ),
                    key=lambda rep: rep.scenarios_per_sec,
                )
                row: Dict[str, object] = {
                    "circuit": name,
                    "mode": mode,
                    "concurrency": concurrency,
                    "requests": report.requests,
                    "errors": report.errors,
                    "scenarios_per_sec": report.scenarios_per_sec,
                    "p50_latency_seconds": report.p50_latency_seconds,
                    "p99_latency_seconds": report.p99_latency_seconds,
                }
                rows.append(row)
                print(
                    f"{name:>10s}  {mode:>9s}  c={concurrency:<3d} "
                    f"{report.scenarios_per_sec:9.1f}/s  "
                    f"p50 {report.p50_latency_seconds * 1e3:7.1f}ms  "
                    f"p99 {report.p99_latency_seconds * 1e3:7.1f}ms"
                    + (f"  errors={report.errors}" if report.errors else "")
                )
        batcher = server.batcher.stats
        for row in rows:
            if mode == "batched":
                row["mean_batch_size"] = batcher.mean_batch_size()
    return rows


def annotate_speedups(rows: List[Dict[str, object]]) -> None:
    """Attach ``speedup`` to batched rows: batched / unbatched rate."""
    unbatched = {
        (row["circuit"], row["concurrency"]): row["scenarios_per_sec"]
        for row in rows
        if row["mode"] == "unbatched"
    }
    for row in rows:
        if row["mode"] != "batched":
            continue
        base = unbatched.get((row["circuit"], row["concurrency"]))
        if base:
            row["speedup"] = row["scenarios_per_sec"] / base
            print(
                f"{row['circuit']:>10s}  c={row['concurrency']:<3d} "
                f"batching speedup {row['speedup']:5.2f}x"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuits", default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated circuit names from the Table 1 suite",
    )
    parser.add_argument(
        "--concurrency", default=",".join(map(str, DEFAULT_CONCURRENCY)),
        help="comma-separated closed-loop client counts",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=20,
        help="requests each client issues per cell (default: 20)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="batched-mode scenario ceiling per propagation (default: 16)",
    )
    parser.add_argument(
        "--linger-ms", type=float, default=5.0,
        help="batched-mode linger window (default: 5.0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="batch drain threads in both modes (default: 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="load runs per cell; the fastest is reported (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: c17 only, concurrency {1, 4}, "
             "8 requests per client, 1 repeat",
    )
    parser.add_argument("--output", default="BENCH_serving.json")
    add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.quick:
        circuits = ["c17"]
        concurrency_levels = [1, 4]
        requests_per_client = 8
        repeats = 1
    else:
        circuits = parse_csv_names(args.circuits)
        concurrency_levels = [
            int(c) for c in parse_csv_names(args.concurrency)
        ]
        requests_per_client = args.requests_per_client
        repeats = args.repeats
    if repeats < 1:
        parser.error("--repeats must be >= 1")
    if requests_per_client < 1:
        parser.error("--requests-per-client must be >= 1")
    if any(c < 1 for c in concurrency_levels):
        parser.error("--concurrency entries must be >= 1")

    rows: List[Dict[str, object]] = []
    for mode in ("unbatched", "batched"):
        rows.extend(
            bench_mode(
                mode, circuits, concurrency_levels, requests_per_client,
                args.max_batch, args.linger_ms, args.workers, repeats,
            )
        )
    annotate_speedups(rows)

    report = {
        "benchmark": "serving",
        "schema_version": BENCH_SCHEMA_VERSION,
        "requests_per_client": requests_per_client,
        "repeats": repeats,
        "max_batch": args.max_batch,
        "linger_ms": args.linger_ms,
        "workers": args.workers,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.store:
        store_report(args.store, "serving", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
