"""Figures 1-4: compile-pipeline microbenchmarks on the paper's example.

The figures themselves are structural (see ``examples/paper_figures.py``
and ``python -m repro.cli figures``); this benchmark times the pipeline
stages that produce them -- LIDAG construction, moralization +
triangulation, junction-tree build, and calibration -- and asserts the
structures match the paper.
"""

import pytest

from repro.bayesian.junction import JunctionTree
from repro.bayesian.moral import moral_graph_with_fill_report
from repro.circuits.examples import paper_circuit
from repro.core.lidag import build_lidag


@pytest.fixture(scope="module")
def lidag():
    return build_lidag(paper_circuit())


def test_figure2_lidag_build(benchmark):
    circuit = paper_circuit()
    bn = benchmark(build_lidag, circuit)
    assert set(bn.parents("9")) == {"7", "8"}


def test_figure3_moralize(benchmark, lidag):
    moral, marriages = benchmark(moral_graph_with_fill_report, lidag)
    assert sorted(tuple(sorted(e)) for e in marriages) == [
        ("1", "2"),
        ("3", "4"),
        ("5", "6"),
        ("7", "8"),
    ]


def test_figure4_junction_tree(benchmark, lidag):
    jt = benchmark(JunctionTree.from_network, lidag)
    assert len(jt.fill_ins) == 1
    assert all(len(c) == 3 for c in jt.cliques)
    assert jt.check_running_intersection()


def test_figure4_calibration(benchmark, lidag):
    jt = JunctionTree.from_network(lidag)

    def calibrate():
        jt._init_potentials()
        jt.calibrate()
        return jt.marginal("9")

    marginal = benchmark(calibrate)
    assert marginal.sum() == pytest.approx(1.0)
