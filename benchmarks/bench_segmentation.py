"""Segment-graph scaling benchmark: error and time vs refine iterations.

Emits ``BENCH_segmentation.json`` -- the scaling-tier perf datapoint.
DESIGN.md section 14's claim is that iterative boundary refinement buys
back cut-induced error at a bounded propagation cost; this runner
records both sides of that trade per ``(circuit, refine)`` point:

- ``compile_seconds``              -- partition + per-segment compile
  (at ``refine > 0`` this includes glue-cone compilation),
- ``repeat_estimate_min_seconds``  -- minimum over ``update_inputs`` +
  ``estimate`` cycles (the primary regression metric; refinement cost
  is inside the estimate),
- ``max_abs_error``                -- worst per-line distribution entry
  vs. the exact enumeration oracle, on circuits whose input count fits
  the ``4^n`` budget (the ``refineA``/``refineB`` demo circuits),
- ``mean_activity``, ``refine_iterations``, ``refine_delta`` -- the
  estimate itself and the refinement's convergence telemetry.

Circuits come from the suite's scale tier (see
:mod:`repro.circuits.suite`): the enumeration-feasible refinement demos
always run; ``layered2k`` joins in the default configuration and
``layered10k`` under ``--full``.  ``--quick`` keeps only the demos (the
CI smoke configuration) and additionally *asserts* the refinement
contract: at the highest refine level the oracle error must be at most
half the unrefined error on every demo circuit.

Usage::

    PYTHONPATH=src python benchmarks/bench_segmentation.py \
        [--quick | --full] [--repeats 3] [--parallelism 4] \
        [--output BENCH_segmentation.json] [--store .repro-perf]

``--store DIR`` additionally records the run into the perf profile
store (see ``repro perf``), one measurement block per
``(circuit, refine)`` point, so the scaling trajectory joins the
version history and ``repro perf diff`` gates it like any other metric.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

try:  # package import (pytest benchmarks/, repo-root scripts)
    from benchmarks.common import add_store_argument, repeat_cycles, store_report
except ImportError:  # direct execution
    import os

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )
    from common import add_store_argument, repeat_cycles, store_report

import numpy as np

from repro.circuits import suite
from repro.core.estimator import exact_switching_by_enumeration
from repro.core.inputs import IndependentInputs
from repro.core.segments import SegmentedEstimator

BENCH_SCHEMA_VERSION = 1

#: Oracle input probability for the error measurement.
P_ONE = 0.4

#: Per-circuit configuration: estimator knobs, refine levels, and
#: whether the 4^inputs enumeration oracle is feasible.  The demo
#: circuits use deliberately small segments with no lookback, so their
#: cuts are lossy enough for refinement to have visible work to do.
_CONFIGS: List[Dict] = [
    {
        "circuit": "refineA",
        "kwargs": {"max_gates_per_segment": 10, "lookback": 0},
        "refine_levels": [0, 1, 2, 3],
        "oracle": True,
        "tier": "demo",
    },
    {
        "circuit": "refineB",
        "kwargs": {"max_gates_per_segment": 10, "lookback": 0},
        "refine_levels": [0, 1, 2, 3],
        "oracle": True,
        "tier": "demo",
    },
    {
        "circuit": "layered2k",
        "kwargs": {},
        "refine_levels": [0, 1, 2],
        "oracle": False,
        "tier": "default",
    },
    {
        "circuit": "layered10k",
        "kwargs": {},
        "refine_levels": [0, 2],
        "oracle": False,
        "tier": "full",
    },
]


def _oracle_error(result, oracle) -> float:
    """Worst per-line distribution entry vs. the enumeration oracle."""
    worst = 0.0
    for line, expected in oracle.items():
        got = result.distributions.get(line)
        if got is None:
            return float("inf")
        worst = max(worst, float(np.abs(np.asarray(got) - expected).max()))
    return worst


def bench_point(
    circuit,
    refine: int,
    kwargs: Dict,
    repeats: int,
    parallelism: int,
    oracle: Optional[Dict],
) -> Dict[str, object]:
    estimator = SegmentedEstimator(
        circuit,
        input_model=IndependentInputs(P_ONE),
        refine=refine,
        parallelism=parallelism,
        **kwargs,
    )
    start = time.perf_counter()
    estimator.compile()
    compile_seconds = time.perf_counter() - start

    result = estimator.estimate()
    row: Dict[str, object] = {
        "circuit": circuit.name,
        "gates": circuit.num_gates,
        "refine": refine,
        "segments": estimator.num_segments,
        "glue_edges": (
            len(estimator._refiner.edges) if estimator._refiner else 0
        ),
        "compile_seconds": compile_seconds,
        "mean_activity": result.mean_activity(),
        "refine_iterations": result.refine_iterations,
        "refine_delta": result.refine_delta,
    }
    if oracle is not None:
        row["max_abs_error"] = _oracle_error(result, oracle)

    cycle_seconds = repeat_cycles(estimator, repeats)
    row["repeat_estimate_min_seconds"] = min(cycle_seconds)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true",
        help="CI smoke: enumeration-feasible demo circuits only, and "
             "assert the refinement accuracy contract (>= 2x error "
             "reduction at the highest refine level)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="also run layered10k (several minutes of compile)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--parallelism", type=int, default=0,
        help="worker threads for segment compile/propagate (0 = serial)",
    )
    parser.add_argument("--output", default="BENCH_segmentation.json")
    add_store_argument(parser)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    tiers = {"demo"}
    if not args.quick:
        tiers.add("default")
    if args.full:
        tiers.add("full")

    rows: List[Dict[str, object]] = []
    errors: Dict[str, Dict[int, float]] = {}
    for config in _CONFIGS:
        if config["tier"] not in tiers:
            continue
        circuit = suite.load_circuit(config["circuit"])
        oracle = (
            exact_switching_by_enumeration(circuit, IndependentInputs(P_ONE))
            if config["oracle"]
            else None
        )
        for refine in config["refine_levels"]:
            row = bench_point(
                circuit,
                refine,
                config["kwargs"],
                args.repeats,
                args.parallelism,
                oracle,
            )
            rows.append(row)
            if "max_abs_error" in row:
                errors.setdefault(circuit.name, {})[refine] = row[
                    "max_abs_error"
                ]
            err = (
                f"  err {row['max_abs_error']:.3e}"
                if "max_abs_error" in row
                else ""
            )
            print(
                f"{circuit.name:>10s}  refine={refine}  "
                f"segs {row['segments']:4d}  glue {row['glue_edges']:3d}  "
                f"compile {row['compile_seconds']:7.2f}s  "
                f"repeat(min) {row['repeat_estimate_min_seconds']:7.3f}s  "
                f"it {row['refine_iterations']}  "
                f"delta {row['refine_delta']:.2e}{err}"
            )

    # The refinement contract, asserted where the oracle is feasible:
    # refinement must at least halve the unrefined cut error.
    if args.quick:
        for name, by_refine in errors.items():
            base = by_refine[0]
            best_level = max(by_refine)
            refined = by_refine[best_level]
            assert refined <= base / 2, (
                f"{name}: refine={best_level} error {refined:.3e} is not "
                f"<= half the refine=0 error {base:.3e}"
            )
            print(
                f"{name}: refine={best_level} error {refined:.3e} vs "
                f"refine=0 {base:.3e} ({base / max(refined, 1e-300):.1f}x) -- ok"
            )

    report = {
        "benchmark": "segmentation",
        "schema_version": BENCH_SCHEMA_VERSION,
        "repeats": args.repeats,
        "p_one": P_ONE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.store:
        store_report(args.store, "segmentation", report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
