"""Ablation: the compile-once / propagate-per-statistics split.

The paper's advantage #3: "After a compilation process ... further
computation time is small.  Thus, repeated computation of switching
activity of the circuit with different input statistics does not
require much time."  This benchmark times compilation and per-update
propagation separately and asserts propagation is much cheaper.
"""

import pytest

from repro.circuits import suite
from repro.core.estimator import SwitchingActivityEstimator
from repro.core.inputs import IndependentInputs

CIRCUITS = ["c17", "alu", "comp", "voter", "pcler8"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_compile_phase(benchmark, name):
    circuit = suite.load_circuit(name)

    def compile_once():
        return SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10).compile()

    estimator = benchmark.pedantic(compile_once, rounds=3, iterations=1)
    assert estimator.junction_tree.check_running_intersection()


@pytest.mark.parametrize("name", CIRCUITS)
def test_propagate_phase(benchmark, name):
    circuit = suite.load_circuit(name)
    estimator = SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10).compile()
    probabilities = iter([0.2, 0.35, 0.5, 0.65, 0.8] * 200)

    def update_and_propagate():
        estimator.update_inputs(IndependentInputs(next(probabilities)))
        return estimator.estimate()

    result = benchmark(update_and_propagate)
    assert 0.0 <= result.mean_activity() <= 1.0


@pytest.mark.parametrize("name", CIRCUITS)
def test_propagate_much_cheaper_than_compile(name):
    circuit = suite.load_circuit(name)
    estimator = SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10).compile()
    first = estimator.estimate()
    estimator.update_inputs(IndependentInputs(0.3))
    second = estimator.estimate()
    # Propagation must not dwarf compilation; for all but trivial
    # circuits it is at least comparable (usually much smaller).
    assert second.propagate_seconds < max(first.compile_seconds * 2.0, 0.05)
