"""Compare two benchmark JSON artifacts and flag perf regressions.

The CI non-regression gate: given an *old* (committed) and a *new*
(freshly generated) benchmark report produced by
``bench_propagation.py`` or ``bench_throughput.py``, compare the
primary metric row by row and fail when the new run is worse than the
old one by more than a configurable noise band.

Primary metrics (chosen per the ``"benchmark"`` field):

- ``propagation`` -- ``repeat_estimate_min_seconds`` per circuit row;
  a regression is ``new > old * (1 + band)``.  Rows where *both* sides
  are below ``--floor-seconds`` are skipped: sub-millisecond timings
  are timer noise, not signal.
- ``throughput`` -- ``batched_scenarios_per_sec`` per
  ``(circuit, batch_size)`` row; a regression is
  ``new < old * (1 - band)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_diff.py OLD.json NEW.json \
        [--noise-band 0.25] [--floor-seconds 0.001]

Exit codes: ``0`` no regression, ``1`` at least one metric regressed,
``2`` the two files are not comparable (different benchmark kinds,
unknown kind, or rows present in the old report missing from the new).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: metric name, row-key fields, and direction per benchmark kind;
#: ``higher_is_better`` flips the regression inequality.
_BENCH_KINDS: Dict[str, Dict[str, object]] = {
    "propagation": {
        "metric": "repeat_estimate_min_seconds",
        "key_fields": ("circuit",),
        "higher_is_better": False,
    },
    "throughput": {
        "metric": "batched_scenarios_per_sec",
        "key_fields": ("circuit", "batch_size"),
        "higher_is_better": True,
    },
}


class BenchDiffError(Exception):
    """The two reports are not comparable (exit code 2)."""


def _row_key(row: Dict, key_fields: Tuple[str, ...]) -> Tuple:
    return tuple(row.get(field) for field in key_fields)


def compare(
    old_doc: Dict,
    new_doc: Dict,
    noise_band: float = 0.25,
    floor_seconds: float = 0.001,
) -> List[Dict[str, object]]:
    """Row-by-row comparison; returns one record per common row.

    Each record carries ``key``, ``metric``, ``old``, ``new``,
    ``ratio`` (new/old) and ``status`` (``"ok"``, ``"regression"`` or
    ``"skipped"`` for below-floor timing rows).  Raises
    :class:`BenchDiffError` when the reports cannot be compared.
    """
    old_kind = old_doc.get("benchmark")
    new_kind = new_doc.get("benchmark")
    if old_kind != new_kind:
        raise BenchDiffError(
            f"benchmark kinds differ: old is {old_kind!r}, new is {new_kind!r}"
        )
    spec = _BENCH_KINDS.get(old_kind)
    if spec is None:
        raise BenchDiffError(f"unknown benchmark kind {old_kind!r}")
    metric = spec["metric"]
    key_fields = spec["key_fields"]
    higher_is_better = spec["higher_is_better"]

    new_rows = {
        _row_key(row, key_fields): row for row in new_doc.get("results", [])
    }
    records: List[Dict[str, object]] = []
    missing: List[Tuple] = []
    for row in old_doc.get("results", []):
        key = _row_key(row, key_fields)
        if metric not in row:
            continue  # old row predates the metric; nothing to compare
        other = new_rows.get(key)
        if other is None or metric not in other:
            missing.append(key)
            continue
        old_val = float(row[metric])
        new_val = float(other[metric])
        record = {
            "key": key,
            "metric": metric,
            "old": old_val,
            "new": new_val,
            "ratio": new_val / old_val if old_val else float("inf"),
        }
        if (
            not higher_is_better
            and old_val < floor_seconds
            and new_val < floor_seconds
        ):
            record["status"] = "skipped"
        elif higher_is_better:
            record["status"] = (
                "regression" if new_val < old_val * (1.0 - noise_band) else "ok"
            )
        else:
            record["status"] = (
                "regression" if new_val > old_val * (1.0 + noise_band) else "ok"
            )
        records.append(record)
    if missing:
        raise BenchDiffError(
            f"rows present in the old report are missing from the new one: "
            f"{missing}"
        )
    if not records:
        raise BenchDiffError("no comparable rows between the two reports")
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="committed baseline benchmark JSON")
    parser.add_argument("new", help="freshly generated benchmark JSON")
    parser.add_argument(
        "--noise-band", type=float, default=0.25,
        help="fractional tolerance before a delta counts as a regression",
    )
    parser.add_argument(
        "--floor-seconds", type=float, default=0.001,
        help="timing rows where both sides are below this are skipped",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.old) as fh:
            old_doc = json.load(fh)
        with open(args.new) as fh:
            new_doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read reports: {exc}", file=sys.stderr)
        return 2
    try:
        records = compare(
            old_doc,
            new_doc,
            noise_band=args.noise_band,
            floor_seconds=args.floor_seconds,
        )
    except BenchDiffError as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    worst = 0
    for record in records:
        key = ",".join(str(part) for part in record["key"])
        flag = {"ok": " ", "skipped": "~", "regression": "!"}[record["status"]]
        print(
            f"{flag} {key:>16s}  {record['metric']}  "
            f"old {record['old']:12.6g}  new {record['new']:12.6g}  "
            f"x{record['ratio']:.3f}  {record['status']}"
        )
        if record["status"] == "regression":
            worst = 1
    if worst:
        print(
            f"bench_diff: regression beyond the {args.noise_band:.0%} "
            f"noise band",
            file=sys.stderr,
        )
    return worst


if __name__ == "__main__":
    sys.exit(main())
