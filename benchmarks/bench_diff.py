"""Compare two benchmark JSON artifacts and flag perf regressions.

Thin wrapper over :func:`repro.perf.diff.compare_bench_documents` --
the comparison engine moved into the perf subsystem (PR 7) so the
``repro perf diff`` profile gate and this raw-report gate share one
set of band/floor rules.  The historical CLI contract is unchanged:
given an *old* (committed) and a *new* (freshly generated) benchmark
report produced by ``bench_propagation.py`` or
``bench_throughput.py``, compare the primary metric row by row and
fail when the new run is worse than the old one by more than a
configurable noise band.

Primary metrics (chosen per the ``"benchmark"`` field):

- ``propagation`` -- ``repeat_estimate_min_seconds`` per circuit row;
  a regression is ``new > old * (1 + band)``.  Rows where *both* sides
  are below ``--floor-seconds`` are skipped: sub-millisecond timings
  are timer noise, not signal.
- ``throughput`` -- ``batched_scenarios_per_sec`` per
  ``(circuit, batch_size)`` row; a regression is
  ``new < old * (1 - band)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_diff.py OLD.json NEW.json \
        [--noise-band 0.25] [--floor-seconds 0.001]

Exit codes: ``0`` no regression, ``1`` at least one metric regressed,
``2`` the two files are not comparable (different benchmark kinds,
unknown kind, or rows present in the old report missing from the new).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

try:
    from repro.perf.diff import PerfDiffError, compare_bench_documents
except ImportError:  # direct execution without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )
    from repro.perf.diff import PerfDiffError, compare_bench_documents

#: Historical name for the not-comparable failure (exit code 2); kept
#: as an alias so callers that catch it keep working.
BenchDiffError = PerfDiffError


def compare(
    old_doc: Dict,
    new_doc: Dict,
    noise_band: float = 0.25,
    floor_seconds: float = 0.001,
    allow_missing: bool = False,
) -> List[Dict[str, object]]:
    """Row-by-row comparison; returns one record per common row.

    Each record carries ``key``, ``metric``, ``old``, ``new``,
    ``ratio`` (new/old) and ``status`` (``"ok"``, ``"regression"``,
    ``"skipped"`` for below-floor timing rows, or ``"missing"`` under
    ``allow_missing``).  Raises :class:`BenchDiffError` when the
    reports cannot be compared.
    """
    return compare_bench_documents(
        old_doc,
        new_doc,
        noise_band=noise_band,
        floor_seconds=floor_seconds,
        allow_missing=allow_missing,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="committed baseline benchmark JSON")
    parser.add_argument("new", help="freshly generated benchmark JSON")
    parser.add_argument(
        "--noise-band", type=float, default=0.25,
        help="fractional tolerance before a delta counts as a regression",
    )
    parser.add_argument(
        "--floor-seconds", type=float, default=0.001,
        help="timing rows where both sides are below this are skipped",
    )
    parser.add_argument(
        "--subset", action="store_true",
        help="tolerate baseline rows absent from the new report "
             "(quick regeneration vs. a fuller committed baseline)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.old) as fh:
            old_doc = json.load(fh)
        with open(args.new) as fh:
            new_doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read reports: {exc}", file=sys.stderr)
        return 2
    try:
        records = compare(
            old_doc,
            new_doc,
            noise_band=args.noise_band,
            floor_seconds=args.floor_seconds,
            allow_missing=args.subset,
        )
    except BenchDiffError as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    worst = 0
    for record in records:
        key = ",".join(str(part) for part in record["key"])
        flag = {"ok": " ", "skipped": "~", "regression": "!", "missing": "?"}[
            record["status"]
        ]
        print(
            f"{flag} {key:>16s}  {record['metric']}  "
            f"old {record['old']:12.6g}  new {record['new']:12.6g}  "
            f"x{record['ratio']:.3f}  {record['status']}"
        )
        if record["status"] == "regression":
            worst = 1
    if worst:
        print(
            f"bench_diff: regression beyond the {args.noise_band:.0%} "
            f"noise band",
            file=sys.stderr,
        )
    return worst


if __name__ == "__main__":
    sys.exit(main())
