"""Ablation: input statistics models (paper's advantage #2).

The estimator "can accommodate input correlation, temporal, and spatial
correlation efficiently": the same compiled circuit is re-propagated
under independent, lag-1 Markov temporal, and spatially correlated
input models, and stays accurate against simulation under each.
"""

import numpy as np
import pytest

from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.core.estimator import SwitchingActivityEstimator
from repro.core.inputs import (
    CorrelatedGroupInputs,
    IndependentInputs,
    TemporalInputs,
)

CIRCUIT = "alu"

MODELS = {
    "independent-fair": IndependentInputs(0.5),
    "independent-biased": IndependentInputs(0.2),
    "temporal-low-activity": TemporalInputs(p_one=0.5, activity=0.1),
    "temporal-high-activity": TemporalInputs(p_one=0.5, activity=0.45),
}


@pytest.mark.parametrize("label", list(MODELS))
def test_input_model(benchmark, label, report_rows):
    circuit = suite.load_circuit(CIRCUIT)
    model = MODELS[label]
    estimator = SwitchingActivityEstimator(circuit, max_clique_states=4 ** 10)
    estimator.compile()
    estimator.update_inputs(model)

    result = benchmark(estimator.estimate)

    sim = simulate_switching(
        circuit, model, n_pairs=50_000, rng=np.random.default_rng(0)
    )
    stats = error_statistics(result.activities, sim.activities)
    report_rows.setdefault(
        f"Ablation: input statistics models ({CIRCUIT})",
        (["model", "mean_activity", "sim_mean", "mu_abs_err", "sigma_err"], []),
    )[1].append(
        {
            "model": label,
            "mean_activity": result.mean_activity(),
            "sim_mean": sim.mean_activity(),
            "mu_abs_err": stats.mean_abs_error,
            "sigma_err": stats.std_error,
        }
    )
    # Single-BN estimation is exact: residual error is simulation noise.
    assert stats.mean_abs_error < 0.01


def test_spatially_correlated_inputs():
    """Correlated input groups stay exact (they add LIDAG edges)."""
    circuit = suite.load_circuit("c17")
    model = CorrelatedGroupInputs([("1", "3")], rho=0.8)
    estimator = SwitchingActivityEstimator(circuit, model)
    result = estimator.estimate()
    sim = simulate_switching(
        circuit, model, n_pairs=100_000, rng=np.random.default_rng(1)
    )
    stats = error_statistics(result.activities, sim.activities)
    assert stats.mean_abs_error < 0.01


def test_correlation_changes_activity():
    """Spatial input correlation must visibly change the estimate --
    the phenomenon independence-based tools cannot express."""
    circuit = suite.load_circuit("c17")
    independent = SwitchingActivityEstimator(circuit).estimate()
    correlated = SwitchingActivityEstimator(
        circuit, CorrelatedGroupInputs([("1", "3")], rho=0.95)
    ).estimate()
    deltas = [
        abs(independent.switching(l) - correlated.switching(l))
        for l in circuit.internal_lines
    ]
    assert max(deltas) > 0.01
