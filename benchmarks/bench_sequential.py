"""Extension benchmark: sequential-circuit fixpoint estimation.

Times the state-fixpoint iteration on scan-converted machines and
asserts the accuracy contract documented in
:mod:`repro.core.sequential`: shift-style feedback is exact against
true sequential simulation, counters capture the unchained lines.
"""

import numpy as np
import pytest

from repro.baselines.simulation import simulate_sequential_switching
from repro.circuits.gates import GateType
from repro.circuits.generate import counter_next_state, parity_clear_register
from repro.circuits.netlist import Circuit, Gate
from repro.core import SequentialSwitchingEstimator


def shift_register(width):
    gates = [Gate("nq0", GateType.BUF, ("d",))] + [
        Gate(f"nq{i}", GateType.BUF, (f"q{i-1}",)) for i in range(1, width)
    ]
    circuit = Circuit(
        f"shift{width}", ["d"] + [f"q{i}" for i in range(width)], gates
    )
    return circuit, {f"q{i}": f"nq{i}" for i in range(width)}


@pytest.mark.parametrize("width", [4, 8])
def test_shift_register_fixpoint(benchmark, width):
    circuit, state_map = shift_register(width)
    estimator = SequentialSwitchingEstimator(circuit, state_map)
    estimator.compile()

    result = benchmark(estimator.estimate)
    assert result.converged
    sim = simulate_sequential_switching(
        circuit, state_map, n_cycles=50_000, rng=np.random.default_rng(0)
    )
    for line in circuit.internal_lines:
        assert result.switching(line) == pytest.approx(sim.switching(line), abs=0.02)


def test_register_file_fixpoint(benchmark):
    """Parity/clear register: the hold path (``q' = q`` when not
    loading) couples consecutive cycles, so the per-cycle fixpoint
    overestimates mildly -- the documented contract is a bounded
    overestimate, not exactness."""
    circuit = parity_clear_register(8)
    state_map = {f"q{i}": f"nq{i}" for i in range(8)}
    estimator = SequentialSwitchingEstimator(circuit, state_map)
    estimator.compile()

    result = benchmark.pedantic(estimator.estimate, rounds=2, iterations=1)
    assert result.converged
    sim = simulate_sequential_switching(
        circuit, state_map, n_cycles=100_000, rng=np.random.default_rng(1)
    )
    for i in range(8):
        fix = result.switching(f"nq{i}")
        ref = sim.switching(f"nq{i}")
        assert ref - 0.02 <= fix <= ref + 0.12


def test_counter_unchained_lines(benchmark):
    circuit = counter_next_state(4)
    state_map = {f"q{i}": f"nq{i}" for i in range(4)}
    estimator = SequentialSwitchingEstimator(circuit, state_map)
    estimator.compile()

    result = benchmark.pedantic(estimator.estimate, rounds=2, iterations=1)
    sim = simulate_sequential_switching(
        circuit, state_map, n_cycles=100_000, rng=np.random.default_rng(2)
    )
    assert result.switching("nq0") == pytest.approx(sim.switching("nq0"), abs=0.02)
    assert result.switching("ovf") == pytest.approx(sim.switching("ovf"), abs=0.02)
