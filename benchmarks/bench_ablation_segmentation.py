"""Ablation: segmentation knobs (boundary mode and lookback).

Design choice from DESIGN.md section 5: how much correlation crosses a
segment cut.  ``boundary="independent"`` is the paper's preliminary
scheme; ``boundary="tree"`` carries a spanning forest of pairwise
boundary joints (the paper's stated future work); ``lookback`` controls
the duplicated upstream cone.
"""

import numpy as np
import pytest

from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.core.segmentation import SegmentedEstimator

CIRCUIT = "c880s"
COLUMNS = [
    "boundary",
    "lookback",
    "segments",
    "mu_abs_err",
    "sigma_err",
    "pct_err",
]

_sim_cache = {}


def _ground_truth(circuit):
    if CIRCUIT not in _sim_cache:
        _sim_cache[CIRCUIT] = simulate_switching(
            circuit, n_pairs=50_000, rng=np.random.default_rng(0)
        ).activities
    return _sim_cache[CIRCUIT]


@pytest.mark.parametrize("boundary", ["independent", "tree"])
@pytest.mark.parametrize("lookback", [0, 3])
def test_segmentation_knobs(benchmark, boundary, lookback, report_rows):
    circuit = suite.load_circuit(CIRCUIT)
    sim_acts = _ground_truth(circuit)

    def run():
        seg = SegmentedEstimator(
            circuit,
            max_gates_per_segment=60,
            lookback=lookback,
            boundary=boundary,
        )
        return seg, seg.estimate()

    seg, result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = error_statistics(result.activities, sim_acts)
    report_rows.setdefault(
        f"Ablation: segmentation knobs ({CIRCUIT})", (COLUMNS, [])
    )[1].append(
        {
            "boundary": boundary,
            "lookback": lookback,
            "segments": seg.num_segments,
            "mu_abs_err": stats.mean_abs_error,
            "sigma_err": stats.std_error,
            "pct_err": stats.percent_error_of_means,
        }
    )
    assert stats.std_error < 0.1


def test_lookback_and_tree_improve_accuracy():
    """The extension must not be worse than the naive scheme."""
    circuit = suite.load_circuit(CIRCUIT)
    sim_acts = _ground_truth(circuit)

    def error(boundary, lookback):
        result = SegmentedEstimator(
            circuit,
            max_gates_per_segment=60,
            lookback=lookback,
            boundary=boundary,
        ).estimate()
        return error_statistics(result.activities, sim_acts).mean_abs_error

    naive = error("independent", 0)
    extended = error("tree", 3)
    assert extended <= naive + 1e-4
