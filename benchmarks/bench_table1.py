"""Table 1: per-circuit accuracy and the compile/update timing split.

Regenerates the paper's Table 1 rows: mean/std error of Bayesian-network
switching estimates against logic simulation, total estimation time, and
the (tiny) update-only time.  ``pytest-benchmark`` times the *update*
phase -- the paper's headline timing claim -- while the printed table
carries the accuracy columns.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``; set
``REPRO_BENCH_FULL=1`` for the complete 20-circuit suite.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_PAIRS, TABLE1_CIRCUITS
from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.core.inputs import IndependentInputs
from repro.experiments.table1 import TABLE1_COLUMNS, make_estimator


@pytest.mark.parametrize("name", TABLE1_CIRCUITS)
def test_table1_row(benchmark, name, report_rows):
    """One Table 1 row: benchmark the propagate phase, report accuracy."""
    circuit = suite.load_circuit(name)
    model = IndependentInputs(0.5)
    estimator = make_estimator(circuit, model)
    estimator.estimate()  # includes compilation on first call

    result = benchmark(estimator.estimate)

    sim = simulate_switching(
        circuit, model, n_pairs=N_PAIRS, rng=np.random.default_rng(0)
    )
    stats = error_statistics(result.activities, sim.activities)
    signed = float(
        np.mean([result.switching(l) - sim.switching(l) for l in circuit.lines])
    )
    row = {
        "circuit": name,
        "gates": circuit.num_gates,
        "segments": result.segments,
        "mu_err": signed,
        "sigma_err": stats.std_error,
        "pct_err": stats.percent_error_of_means,
        "total_s": estimator.compile_seconds + result.propagate_seconds,
        "update_s": result.propagate_seconds,
    }
    report_rows.setdefault(
        "Table 1: BN switching estimation vs logic simulation",
        (TABLE1_COLUMNS, []),
    )[1].append(row)

    # The reproduction criterion: error statistics in the paper's band.
    # Single-BN circuits are exact up to simulation noise; segmented
    # circuits keep sigma at the paper's 1e-2 order.
    if result.segments == 1:
        assert stats.mean_abs_error < 0.01
    else:
        assert stats.std_error < 0.08
    assert stats.percent_error_of_means < 12.0
