"""Legacy setup shim: enables editable installs on toolchains without wheel."""

from setuptools import setup

setup()
