"""Reduced ordered binary decision diagrams with probability queries.

Classic Bryant-style implementation: a shared unique table guarantees
canonicity (two equivalent functions are the same node id), ``apply``
memoizes on operand pairs, and reduction happens on the fly (no node
with identical children, no duplicate (var, low, high) triples).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

#: Terminal node ids.
ZERO = 0
ONE = 1


class BDDManager:
    """A shared-node ROBDD manager over a fixed variable order.

    Parameters
    ----------
    variable_order:
        Variable names, top of the diagram first.
    max_nodes:
        Safety valve: raise once the unique table exceeds this many
        nodes (BDDs can blow up exponentially on multipliers).
    """

    def __init__(self, variable_order: Sequence[str], max_nodes: int = 2_000_000):
        self.order: List[str] = list(variable_order)
        if len(set(self.order)) != len(self.order):
            raise ValueError("duplicate variables in order")
        self._level: Dict[str, int] = {v: i for i, v in enumerate(self.order)}
        self.max_nodes = max_nodes
        # Node storage: nodes[id] = (level, low, high); terminals use
        # level = +inf sentinel (len(order)).
        self._nodes: List[Tuple[int, int, int]] = [
            (len(self.order), ZERO, ZERO),  # ZERO
            (len(self.order), ONE, ONE),  # ONE
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            if node > self.max_nodes:
                raise MemoryError(
                    f"BDD exceeded {self.max_nodes} nodes; "
                    "function too complex for this variable order"
                )
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of the single-variable function ``name``."""
        if name not in self._level:
            raise KeyError(f"unknown variable {name!r}")
        return self._make_node(self._level[name], ZERO, ONE)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def level_of(self, node: int) -> int:
        return self._nodes[node][0]

    def children(self, node: int) -> Tuple[int, int]:
        _, low, high = self._nodes[node]
        return low, high

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        return self._apply("and", f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply("or", f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply("xor", f, g)

    def negate(self, f: int) -> int:
        return self._apply("xor", f, ONE)

    def _terminal_op(self, op: str, f: int, g: int) -> Optional[int]:
        if op == "and":
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return ZERO
            if f == ZERO:
                return g
            if g == ZERO:
                return f
        return None

    def _apply(self, op: str, f: int, g: int) -> int:
        terminal = self._terminal_op(op, f, g)
        if terminal is not None:
            return terminal
        # Commutative ops: canonicalize the cache key.
        key = (op, f, g) if f <= g else (op, g, f)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        f_level, f_low, f_high = self._nodes[f]
        g_level, g_low, g_high = self._nodes[g]
        level = min(f_level, g_level)
        if f_level == level:
            f0, f1 = f_low, f_high
        else:
            f0 = f1 = f
        if g_level == level:
            g0, g1 = g_low, g_high
        else:
            g0 = g1 = g
        result = self._make_node(
            level, self._apply(op, f0, g0), self._apply(op, f1, g1)
        )
        self._apply_cache[key] = result
        return result

    def apply_gate(self, gate_type: GateType, operands: Sequence[int]) -> int:
        """Apply an n-ary circuit gate to BDD operands."""
        if gate_type is GateType.BUF:
            return operands[0]
        if gate_type is GateType.NOT:
            return self.negate(operands[0])
        if gate_type in (GateType.AND, GateType.NAND):
            result = operands[0]
            for operand in operands[1:]:
                result = self.apply_and(result, operand)
            return self.negate(result) if gate_type is GateType.NAND else result
        if gate_type in (GateType.OR, GateType.NOR):
            result = operands[0]
            for operand in operands[1:]:
                result = self.apply_or(result, operand)
            return self.negate(result) if gate_type is GateType.NOR else result
        if gate_type in (GateType.XOR, GateType.XNOR):
            result = operands[0]
            for operand in operands[1:]:
                result = self.apply_xor(result, operand)
            return self.negate(result) if gate_type is GateType.XNOR else result
        raise ValueError(f"unsupported gate type {gate_type}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, node: int, assignment: Mapping[str, int]) -> int:
        """Evaluate the function at a full variable assignment."""
        while node > ONE:
            level, low, high = self._nodes[node]
            node = high if assignment[self.order[level]] else low
        return node

    def signal_probability(
        self, node: int, probabilities: Mapping[str, float]
    ) -> float:
        """Exact ``P(f = 1)`` under independent variable probabilities.

        Linear in the BDD size via a memoized weighted traversal --
        the Parker-McCluskey computation made tractable by sharing.
        """
        memo: Dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(n: int) -> float:
            if n in memo:
                return memo[n]
            level, low, high = self._nodes[n]
            p = float(probabilities[self.order[level]])
            value = (1.0 - p) * walk(low) + p * walk(high)
            memo[n] = value
            return value

        return walk(node)

    def satisfy_count(self, node: int) -> int:
        """Number of satisfying assignments over the full variable set.

        Computed as the uniform-probability mass times ``2^n`` -- the
        weighted traversal already handles skipped levels correctly.
        """
        fraction = self.signal_probability(node, {v: 0.5 for v in self.order})
        return round(fraction * (1 << len(self.order)))


def build_line_bdds(
    circuit: Circuit,
    lines: Optional[Sequence[str]] = None,
    max_nodes: int = 2_000_000,
) -> Tuple[BDDManager, Dict[str, int]]:
    """Build BDDs for circuit lines in terms of the primary inputs.

    Returns the manager and a map from line name to BDD node.  Raises
    :class:`MemoryError` if the diagrams blow past ``max_nodes`` (e.g.
    multiplier outputs).
    """
    manager = BDDManager(circuit.inputs, max_nodes=max_nodes)
    nodes: Dict[str, int] = {name: manager.var(name) for name in circuit.inputs}
    wanted = set(lines) if lines is not None else None
    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is None:
            continue
        nodes[line] = manager.apply_gate(
            gate.gate_type, [nodes[s] for s in gate.inputs]
        )
    if wanted is not None:
        nodes = {ln: n for ln, n in nodes.items() if ln in wanted}
    return manager, nodes


def exact_signal_probabilities(
    circuit: Circuit,
    input_probabilities: Optional[Mapping[str, float]] = None,
    max_nodes: int = 2_000_000,
) -> Dict[str, float]:
    """Exact P(line = 1) for every line under independent inputs."""
    probs = dict(input_probabilities or {})
    for name in circuit.inputs:
        probs.setdefault(name, 0.5)
    manager, nodes = build_line_bdds(circuit, max_nodes=max_nodes)
    return {
        line: manager.signal_probability(node, probs)
        for line, node in nodes.items()
    }
