"""A small reduced ordered BDD (ROBDD) package.

Stands in for the OBDD machinery of the paper's references [10] (Bryant)
and [13] (tagged probabilistic simulation): Boolean functions of circuit
lines are built bottom-up with the classic ``apply`` algorithm, and
*exact* signal probabilities under independent inputs are computed by a
weighted traversal.  Under temporally independent input streams the
exact switching activity of a line is ``2 p (1 - p)`` with p from the
BDD, which provides an independent exact cross-check of the Bayesian
network on medium circuits.
"""

from repro.bdd.manager import BDDManager, build_line_bdds, exact_signal_probabilities

__all__ = ["BDDManager", "build_line_bdds", "exact_signal_probabilities"]
