"""Functional stand-ins for the ISCAS-85 benchmark circuits.

The real ISCAS-85 netlists are not redistributable here, but their
high-level functions are documented (Hansen, Yalcin & Hayes, "Unveiling
the ISCAS-85 benchmarks"):

- c432: 27-channel priority interrupt controller,
- c499/c1355: 32-bit single-error-correcting (SEC) circuit (c1355 is
  c499 with XORs expanded to NAND networks),
- c880: 8-bit ALU core,
- c1908: 16-bit SEC/DED error-correcting circuit,
- c2670: ALU + comparator + parity control,
- c3540: ALU with multiplication support,
- c5315: 9-bit ALU with parallel data paths,
- c6288: 16x16 array multiplier,
- c7552: 32-bit adder/comparator with parity.

This module rebuilds those *functions* from scratch at matching input
counts and comparable gate counts.  Structured functional logic carries
the cone-shaped, locally reconvergent correlation of real netlists --
which is what the paper's multi-BN segmentation is calibrated against
-- unlike random gate soup, whose long-range functional redundancy is
pathological for every probabilistic estimator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate


class _Net:
    """Tiny netlist builder (kept local to avoid import cycles)."""

    def __init__(self):
        self.gates: List[Gate] = []
        self._n = 0

    def emit(self, gate_type: GateType, srcs: Sequence[str], name: Optional[str] = None) -> str:
        out = name or f"n{self._n}"
        self._n += 1
        self.gates.append(Gate(out, gate_type, tuple(srcs)))
        return out

    def tree(self, gate_type: GateType, srcs: Sequence[str], fanin: int = 3) -> str:
        """Balanced reduction tree of ``gate_type`` over ``srcs``.

        For non-associative-looking types (NAND/NOR) the internal nodes
        use the associative core (AND/OR) and only the root inverts.
        """
        core = {
            GateType.NAND: GateType.AND,
            GateType.NOR: GateType.OR,
            GateType.XNOR: GateType.XOR,
        }.get(gate_type, gate_type)
        layer = list(srcs)
        while len(layer) > 1:
            nxt = []
            for k in range(0, len(layer), fanin):
                group = layer[k : k + fanin]
                if len(group) == 1:
                    nxt.append(group[0])
                else:
                    nxt.append(self.emit(core, group))
            layer = nxt
        root = layer[0]
        if gate_type is not core:
            root = self.emit(GateType.NOT, (root,))
        return root

    def xor2(self, a: str, b: str, expand: bool = False) -> str:
        """2-input XOR, optionally expanded to the classic 4-NAND net."""
        if not expand:
            return self.emit(GateType.XOR, (a, b))
        inner = self.emit(GateType.NAND, (a, b))
        left = self.emit(GateType.NAND, (a, inner))
        right = self.emit(GateType.NAND, (b, inner))
        return self.emit(GateType.NAND, (left, right))

    def xor_tree(self, srcs: Sequence[str], expand: bool = False, fanin: int = 3) -> str:
        if not expand and fanin > 2:
            return self.tree(GateType.XOR, srcs, fanin)
        layer = list(srcs)
        while len(layer) > 1:
            nxt = []
            for k in range(0, len(layer) - 1, 2):
                nxt.append(self.xor2(layer[k], layer[k + 1], expand))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]


def priority_controller(
    n_requests: int = 27, n_enables: int = 9, name: str = "c432s"
) -> Circuit:
    """Priority interrupt controller (the c432 function).

    ``n_requests`` request lines with fixed priority (0 highest) gated
    by ``n_enables`` enable lines; outputs the binary channel id of the
    highest-priority enabled request plus a valid flag.
    """
    net = _Net()
    requests = [f"r{i}" for i in range(n_requests)]
    enables = [f"e{i}" for i in range(n_enables)]
    # A channel competes only when requested AND enabled; masked
    # channels must not block lower-priority ones.
    effective = [
        net.emit(GateType.AND, (request, enables[i % n_enables]))
        for i, request in enumerate(requests)
    ]
    grants: List[str] = []
    blocked = None
    for i, active in enumerate(effective):
        if blocked is None:
            grants.append(net.emit(GateType.BUF, (active,)))
            blocked = net.emit(GateType.NOT, (active,))
        else:
            grants.append(net.emit(GateType.AND, (active, blocked)))
            blocked = net.emit(
                GateType.AND, (blocked, net.emit(GateType.NOT, (active,)))
            )
    id_bits = max(1, (n_requests - 1).bit_length())
    outputs = []
    for bit in range(id_bits):
        members = [grants[i] for i in range(n_requests) if (i >> bit) & 1]
        if members:
            outputs.append(net.emit(GateType.OR, members[:1], name=None)
                           if len(members) == 1 else net.tree(GateType.OR, members))
    named_outputs = []
    for bit, line in enumerate(outputs):
        named_outputs.append(net.emit(GateType.BUF, (line,), name=f"id{bit}"))
    valid = net.tree(GateType.OR, grants)
    named_outputs.append(net.emit(GateType.BUF, (valid,), name="valid"))
    return Circuit(name, requests + enables, net.gates, named_outputs)


def _parity_columns(data_bits: int, check_bits: int) -> List[int]:
    """Distinct non-unit H-matrix columns for a SEC code."""
    columns: List[int] = []
    candidate = 3
    while len(columns) < data_bits:
        if candidate & (candidate - 1):  # skip powers of two (unit columns)
            if candidate < (1 << check_bits):
                columns.append(candidate)
            else:
                raise ValueError(
                    f"{check_bits} check bits cannot cover {data_bits} data bits"
                )
        candidate += 1
    return columns


def sec_circuit(
    data_bits: int = 32,
    check_bits: int = 8,
    expand_xor: bool = False,
    name: str = "c499s",
) -> Circuit:
    """Single-error-correcting circuit (the c499/c1355/c1908 function).

    Inputs: ``data_bits`` data lines, ``check_bits`` stored check lines,
    and an ``en`` correction-enable line.  The circuit recomputes the
    syndrome, decodes the failing position, and outputs the corrected
    word.  ``expand_xor=True`` replaces every 2-input XOR with the
    classic four-NAND network -- exactly the relationship between c1355
    and c499.
    """
    net = _Net()
    data = [f"d{i}" for i in range(data_bits)]
    checks = [f"c{j}" for j in range(check_bits)]
    columns = _parity_columns(data_bits, check_bits)

    syndromes = []
    for j in range(check_bits):
        members = [data[i] for i in range(data_bits) if (columns[i] >> j) & 1]
        members.append(checks[j])
        syndromes.append(net.xor_tree(members, expand=expand_xor))
    not_syndromes = [net.emit(GateType.NOT, (s,)) for s in syndromes]

    outputs = []
    for i in range(data_bits):
        literals = [
            syndromes[j] if (columns[i] >> j) & 1 else not_syndromes[j]
            for j in range(check_bits)
        ]
        match = net.tree(GateType.AND, literals, fanin=3 if not expand_xor else 2)
        flip = net.emit(GateType.AND, (match, "en"))
        corrected = net.xor2(data[i], flip, expand=expand_xor)
        outputs.append(net.emit(GateType.BUF, (corrected,), name=f"o{i}"))
    return Circuit(name, data + checks + ["en"], net.gates, outputs)


def merge_circuits(
    name: str,
    blocks: Sequence[Tuple[str, Circuit]],
    shared_inputs: Optional[Dict[str, str]] = None,
) -> Circuit:
    """Merge sub-circuits into one netlist with optional input sharing.

    Each block's lines are prefixed with its label; ``shared_inputs``
    maps prefixed block-input names onto common (unprefixed) primary
    inputs, which is how composite stand-ins model blocks reading the
    same buses (the source of realistic inter-block correlation).
    """
    shared_inputs = dict(shared_inputs or {})
    inputs: List[str] = []
    gates: List[Gate] = []
    outputs: List[str] = []
    seen_inputs: set = set()

    for label, block in blocks:
        def rename(line: str, label=label) -> str:
            prefixed = f"{label}_{line}"
            return shared_inputs.get(prefixed, prefixed)

        for line in block.inputs:
            target = rename(line)
            if target not in seen_inputs:
                seen_inputs.add(target)
                inputs.append(target)
        for gate in block.gates.values():
            gates.append(
                Gate(rename(gate.output), gate.gate_type, tuple(rename(s) for s in gate.inputs))
            )
        outputs.extend(rename(line) for line in block.outputs)

    # Shared names that are actually driven by some block must not be
    # listed as primary inputs.
    driven = {g.output for g in gates}
    inputs = [ln for ln in inputs if ln not in driven]
    return Circuit(name, inputs, gates, outputs)


def share_bus(label: str, lines: Sequence[str], bus: str) -> Dict[str, str]:
    """Mapping that wires a block's input lines onto a shared bus."""
    return {f"{label}_{line}": f"{bus}{k}" for k, line in enumerate(lines)}
