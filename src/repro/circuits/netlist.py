"""Combinational netlist container.

A :class:`Circuit` is a set of named *lines* (signals) driven either by a
primary input or by exactly one :class:`Gate`.  The class provides the
structural queries every downstream consumer needs: topological order,
levelization, fanout counts, transitive fanin cones, and subcircuit
extraction (used by the multi-BN segmentation of large circuits), plus
scalar and vectorized evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import GateType, evaluate_gate
from repro.errors import CircuitError, CombinationalCycleError, UndefinedLineError

__all__ = ["Circuit", "CircuitError", "Gate"]


@dataclass(frozen=True)
class Gate:
    """A single logic gate: ``output = gate_type(inputs...)``."""

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) == 0:
            raise ValueError(f"gate driving {self.output!r} has no inputs")

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def __str__(self) -> str:
        return f"{self.output} = {self.gate_type}({', '.join(self.inputs)})"


class Circuit:
    """A combinational gate-level circuit.

    Parameters
    ----------
    name:
        Human-readable circuit name (e.g. ``"c17"``).
    inputs:
        Names of the primary-input lines, in declaration order.
    gates:
        The gates; each line may be driven by at most one gate, and gate
        inputs must be primary inputs or outputs of other gates.
    outputs:
        Names of the primary-output lines.  Defaults to all lines with no
        fanout.

    The constructor validates the netlist: no multiply-driven lines, no
    undriven non-input lines, no combinational cycles.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        gates: Iterable[Gate],
        outputs: Optional[Sequence[str]] = None,
    ):
        # Deferred to avoid a cycle at import time: repro.core imports
        # this module while initializing.
        from repro.core.validate import check_netlist

        self.name = name
        self.inputs: List[str] = list(inputs)
        self.gates: Dict[str, Gate] = check_netlist(name, self.inputs, gates)
        defined = set(self.inputs) | set(self.gates)

        self._topo_order = self._compute_topological_order()

        if outputs is None:
            fanout_targets = {src for g in self.gates.values() for src in g.inputs}
            self.outputs = [ln for ln in self._topo_order if ln not in fanout_targets]
        else:
            self.outputs = list(outputs)
            for line in self.outputs:
                if line not in defined:
                    raise UndefinedLineError(
                        f"{name}: undefined primary output {line!r}"
                    )

        self._levels: Optional[Dict[str, int]] = None
        self._fanout: Optional[Dict[str, List[str]]] = None

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    @property
    def lines(self) -> List[str]:
        """All line names in topological order (inputs first)."""
        return list(self._topo_order)

    @property
    def internal_lines(self) -> List[str]:
        """All gate-driven line names in topological order."""
        return [ln for ln in self._topo_order if ln in self.gates]

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def driver(self, line: str) -> Optional[Gate]:
        """Return the gate driving ``line``, or ``None`` for primary inputs."""
        return self.gates.get(line)

    def is_input(self, line: str) -> bool:
        return line not in self.gates and line in set(self.inputs)

    def topological_order(self) -> List[str]:
        """Lines ordered so every gate's inputs precede its output."""
        return list(self._topo_order)

    def _compute_topological_order(self) -> List[str]:
        order: List[str] = list(self.inputs)
        placed = set(self.inputs)
        remaining = dict(self.gates)
        # Kahn's algorithm over gate-driven lines.
        indegree = {
            out: sum(1 for src in g.inputs if src in self.gates)
            for out, g in remaining.items()
        }
        ready = [out for out, deg in indegree.items() if deg == 0]
        consumers: Dict[str, List[str]] = {}
        for out, g in remaining.items():
            for src in g.inputs:
                if src in self.gates:
                    consumers.setdefault(src, []).append(out)
        while ready:
            # Pop in insertion order for deterministic results.
            line = ready.pop(0)
            order.append(line)
            placed.add(line)
            for consumer in consumers.get(line, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.inputs) + len(self.gates):
            cyclic = sorted(set(self.gates) - placed)
            raise CombinationalCycleError(
                f"{self.name}: combinational cycle through {cyclic[:5]}"
            )
        return order

    def levels(self) -> Dict[str, int]:
        """Logic depth of each line (primary inputs are level 0)."""
        if self._levels is None:
            levels: Dict[str, int] = {ln: 0 for ln in self.inputs}
            for line in self._topo_order:
                gate = self.gates.get(line)
                if gate is not None:
                    levels[line] = 1 + max(levels[src] for src in gate.inputs)
            self._levels = levels
        return dict(self._levels)

    @property
    def depth(self) -> int:
        """Maximum logic depth over all lines."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    def fanout(self) -> Dict[str, List[str]]:
        """Map each line to the list of gate-output lines it feeds."""
        if self._fanout is None:
            fanout: Dict[str, List[str]] = {ln: [] for ln in self._topo_order}
            for gate in self.gates.values():
                for src in gate.inputs:
                    fanout[src].append(gate.output)
            self._fanout = fanout
        return {k: list(v) for k, v in self._fanout.items()}

    def fanin_cone(self, line: str) -> List[str]:
        """All lines in the transitive fanin of ``line`` (including itself),
        returned in topological order."""
        cone = set()
        stack = [line]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            gate = self.gates.get(current)
            if gate is not None:
                stack.extend(gate.inputs)
        return [ln for ln in self._topo_order if ln in cone]

    def reconvergent_fanout_lines(self) -> List[str]:
        """Lines with fanout >= 2 whose branches reconverge downstream.

        Reconvergent fanout is the structural source of spatial
        correlation; this query is used by diagnostics and by tests that
        want circuits where independence-based baselines are provably
        wrong.
        """
        fanout = self.fanout()
        reconvergent = []
        for line, sinks in fanout.items():
            if len(sinks) < 2:
                continue
            # Reconverges iff two distinct sinks reach a common descendant.
            reach: Dict[str, set] = {}
            for sink in sinks:
                seen = set()
                stack = [sink]
                while stack:
                    cur = stack.pop()
                    if cur in seen:
                        continue
                    seen.add(cur)
                    stack.extend(self._fanout_of(cur))
                reach[sink] = seen
            sinks_list = list(sinks)
            found = False
            for i in range(len(sinks_list)):
                for j in range(i + 1, len(sinks_list)):
                    if reach[sinks_list[i]] & reach[sinks_list[j]]:
                        found = True
                        break
                if found:
                    break
            if found:
                reconvergent.append(line)
        return reconvergent

    def _fanout_of(self, line: str) -> List[str]:
        if self._fanout is None:
            self.fanout()
        return self._fanout.get(line, [])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate every line for one primary-input assignment.

        Parameters
        ----------
        assignment:
            Maps every primary-input name to 0 or 1.

        Returns
        -------
        dict mapping every line name (inputs included) to its 0/1 value.
        """
        values: Dict[str, int] = {}
        for line in self.inputs:
            if line not in assignment:
                raise KeyError(f"missing value for primary input {line!r}")
            values[line] = int(bool(assignment[line]))
        for line in self._topo_order:
            gate = self.gates.get(line)
            if gate is not None:
                values[line] = evaluate_gate(gate.gate_type, [values[s] for s in gate.inputs])
        return values

    def evaluate_vectors(self, input_matrix: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized evaluation over a batch of input patterns.

        Parameters
        ----------
        input_matrix:
            Array of shape ``(n_patterns, n_inputs)`` with 0/1 entries;
            column ``j`` corresponds to ``self.inputs[j]``.

        Returns
        -------
        dict mapping each line name to a ``uint8`` array of length
        ``n_patterns``.
        """
        matrix = np.asarray(input_matrix, dtype=np.uint8)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.inputs):
            raise ValueError(
                f"expected shape (n, {len(self.inputs)}), got {matrix.shape}"
            )
        values: Dict[str, np.ndarray] = {
            name: matrix[:, j] for j, name in enumerate(self.inputs)
        }
        for line in self._topo_order:
            gate = self.gates.get(line)
            if gate is not None:
                values[line] = evaluate_gate(gate.gate_type, [values[s] for s in gate.inputs])
        return values

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def subcircuit(
        self, lines: Iterable[str], name: Optional[str] = None
    ) -> "Circuit":
        """Extract the induced subcircuit over ``lines``.

        Gate-driven lines in ``lines`` keep their gate only if *all* gate
        inputs are also in ``lines``; otherwise they become primary inputs
        of the subcircuit.  This is exactly the cut semantics the multi-BN
        segmentation needs: boundary lines turn into pseudo-inputs.
        """
        wanted = set(lines)
        sub_inputs: List[str] = []
        sub_gates: List[Gate] = []
        for line in self._topo_order:
            if line not in wanted:
                continue
            gate = self.gates.get(line)
            if gate is not None and all(src in wanted for src in gate.inputs):
                sub_gates.append(gate)
            else:
                sub_inputs.append(line)
        return Circuit(name or f"{self.name}.sub", sub_inputs, sub_gates)

    def renamed(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Circuit":
        """Return a copy with lines renamed through ``mapping`` (identity
        for absent keys)."""

        def rn(line: str) -> str:
            return mapping.get(line, line)

        gates = [
            Gate(rn(g.output), g.gate_type, tuple(rn(s) for s in g.inputs))
            for g in self.gates.values()
        ]
        return Circuit(
            name or self.name,
            [rn(ln) for ln in self.inputs],
            gates,
            [rn(ln) for ln in self.outputs],
        )

    # ------------------------------------------------------------------
    # Dunder / reporting
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"gates={len(self.gates)}, outputs={len(self.outputs)})"
        )

    def stats(self) -> Dict[str, int]:
        """Summary statistics used in benchmark reports."""
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "lines": len(self._topo_order),
            "depth": self.depth,
        }
