"""Small hand-built circuits used throughout the paper, tests and docs."""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Gate

#: Canonical ISCAS-85 c17 netlist (public domain, six NAND gates).
C17_BENCH = """\
# c17 -- ISCAS-85 benchmark, 5 inputs, 2 outputs, 6 NAND gates
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def c17() -> Circuit:
    """The exact ISCAS-85 c17 benchmark circuit."""
    from repro.circuits.bench import parse_bench

    return parse_bench(C17_BENCH, name="c17")


def paper_circuit() -> Circuit:
    """The five-gate, nine-line circuit of the paper's Figure 1.

    The paper fixes the topology through Eq. 7's factorization::

        P(x9|x7,x8) P(x8|x4) P(x7|x5,x6) P(x6|x3,x4) P(x5|x1,x2)

    and states that line 5 is driven by an OR gate on lines 1 and 2.  The
    remaining gate types are not given in the text; we pick natural ones.
    Structure -- which determines Figures 2-4 (LIDAG, moral/triangulated
    graph, junction tree) -- matches the paper exactly: moralization adds
    the (1,2), (3,4), (5,6), (7,8) marriages and triangulation adds the
    (4,7) fill-in.
    """
    gates = [
        Gate("5", GateType.OR, ("1", "2")),
        Gate("6", GateType.AND, ("3", "4")),
        Gate("7", GateType.AND, ("5", "6")),
        Gate("8", GateType.NOT, ("4",)),
        Gate("9", GateType.OR, ("7", "8")),
    ]
    return Circuit("paper-fig1", ["1", "2", "3", "4"], gates, ["9"])


def full_adder_circuit() -> Circuit:
    """A single-bit full adder (sum, carry) -- handy tiny test circuit."""
    gates = [
        Gate("axb", GateType.XOR, ("a", "b")),
        Gate("sum", GateType.XOR, ("axb", "cin")),
        Gate("ab", GateType.AND, ("a", "b")),
        Gate("axb_cin", GateType.AND, ("axb", "cin")),
        Gate("cout", GateType.OR, ("ab", "axb_cin")),
    ]
    return Circuit("full-adder", ["a", "b", "cin"], gates, ["sum", "cout"])


def reconvergent_circuit() -> Circuit:
    """Minimal reconvergent-fanout circuit: ``y = AND(a, NOT a)`` == 0.

    Independence-based estimators get this circuit's signal probability
    (and hence switching) wrong, which makes it the canonical witness for
    why dependency-preserving models matter.
    """
    gates = [
        Gate("na", GateType.NOT, ("a",)),
        Gate("y", GateType.AND, ("a", "na")),
    ]
    return Circuit("reconvergent", ["a"], gates, ["y"])


def xor_chain_circuit(length: int = 4) -> Circuit:
    """A chain of 2-input XORs -- deep but treewidth-1 circuit."""
    if length < 1:
        raise ValueError("length must be >= 1")
    inputs = [f"i{k}" for k in range(length + 1)]
    gates = []
    prev = inputs[0]
    for k in range(length):
        out = f"x{k}"
        gates.append(Gate(out, GateType.XOR, (prev, inputs[k + 1])))
        prev = out
    return Circuit(f"xor-chain-{length}", inputs, gates, [prev])
