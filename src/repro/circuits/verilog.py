"""Reader and writer for a gate-level structural Verilog subset.

Supports the flat netlist style EDA tools exchange::

    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;

      nand g0 (N10, N1, N3);
      nand g1 (N11, N3, N6);
      not  g2 (N16x, N11);   // first port is the output
    endmodule

Gate primitives: ``and or nand nor xor xnor not buf``.  One module per
file, no parameters, no vectors, no assigns -- the subset covers the
public gate-level benchmark distributions.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from repro.circuits.gates import resolve_gate_type
from repro.circuits.netlist import Circuit, Gate

_PRIMITIVES = {"and", "or", "nand", "nor", "xor", "xnor", "not", "buf"}

_MODULE_RE = re.compile(
    r"module\s+(?P<name>[A-Za-z_][\w$]*)\s*\((?P<ports>[^)]*)\)\s*;", re.DOTALL
)
_DECL_RE = re.compile(r"\b(input|output|wire)\b([^;]*);", re.DOTALL)
_INSTANCE_RE = re.compile(
    r"\b(?P<prim>[a-z]+)\s+(?P<inst>[A-Za-z_][\w$]*)?\s*\((?P<ports>[^)]*)\)\s*;",
    re.DOTALL,
)


class VerilogFormatError(ValueError):
    """Raised when the netlist cannot be parsed as the supported subset."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def parse_verilog(text: str, name: str = None) -> Circuit:
    """Parse structural Verilog text into a :class:`Circuit`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogFormatError("no module declaration found")
    module_name = module.group("name")
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogFormatError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    for kind, names in _DECL_RE.findall(body):
        identifiers = [n.strip() for n in names.split(",") if n.strip()]
        if kind == "input":
            inputs.extend(identifiers)
        elif kind == "output":
            outputs.extend(identifiers)

    gates: List[Gate] = []
    declaration_spans = [m.span() for m in _DECL_RE.finditer(body)]

    def inside_declaration(position: int) -> bool:
        return any(start <= position < stop for start, stop in declaration_spans)

    for match in _INSTANCE_RE.finditer(body):
        if inside_declaration(match.start()):
            continue
        primitive = match.group("prim")
        if primitive not in _PRIMITIVES:
            raise VerilogFormatError(
                f"unsupported primitive or construct {primitive!r}"
            )
        ports = [p.strip() for p in match.group("ports").split(",") if p.strip()]
        if len(ports) < 2:
            raise VerilogFormatError(
                f"instance {match.group('inst') or primitive} needs >= 2 ports"
            )
        gates.append(Gate(ports[0], resolve_gate_type(primitive), tuple(ports[1:])))

    if not inputs:
        raise VerilogFormatError("module declares no inputs")
    return Circuit(name or module_name, inputs, gates, outputs or None)


def parse_verilog_file(path: Union[str, Path], name: str = None) -> Circuit:
    """Read and parse a structural Verilog file."""
    path = Path(path)
    return parse_verilog(path.read_text(), name or path.stem)


def to_verilog(circuit: Circuit) -> str:
    """Serialize a :class:`Circuit` as structural Verilog.

    Round-trips through :func:`parse_verilog` to an equivalent circuit.
    """
    ports = circuit.inputs + circuit.outputs
    wires = [
        ln
        for ln in circuit.internal_lines
        if ln not in set(circuit.outputs)
    ]
    lines = [f"module {_sanitize(circuit.name)} ({', '.join(ports)});"]
    lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    for index, out in enumerate(circuit.topological_order()):
        gate = circuit.driver(out)
        if gate is not None:
            primitive = gate.gate_type.value.lower()
            lines.append(
                f"  {primitive} g{index} ({out}, {', '.join(gate.inputs)});"
            )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return re.sub(r"[^\w$]", "_", name) or "top"


def write_verilog_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to disk as structural Verilog."""
    Path(path).write_text(to_verilog(circuit))
