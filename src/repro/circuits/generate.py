"""Structural circuit generators.

These generators serve two purposes:

1. Realistic, functionally meaningful workloads for examples, tests and
   benchmarks (adders, ALUs, comparators, voters, multipliers...).
2. Size-matched synthetic stand-ins for benchmark netlists that are not
   redistributable (see ``DESIGN.md`` section 3): the random layered
   generator produces netlists with controlled gate count, fan-in and
   reconvergent-fanout density.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Circuit, Gate


class _Builder:
    """Incremental netlist builder with automatic fresh-name generation."""

    def __init__(self, prefix: str = "n"):
        self.gates: List[Gate] = []
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        self._counter += 1
        return f"{self._prefix}{self._counter}{('_' + hint) if hint else ''}"

    def add(self, gate_type: GateType, inputs: Sequence[str], name: Optional[str] = None) -> str:
        out = name or self.fresh(gate_type.value.lower())
        self.gates.append(Gate(out, gate_type, tuple(inputs)))
        return out

    # Convenience wrappers -------------------------------------------------
    def and_(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.AND, ins, name)

    def or_(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.OR, ins, name)

    def xor(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.XOR, ins, name)

    def xnor(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.XNOR, ins, name)

    def not_(self, a: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NOT, (a,), name)

    def nand(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NAND, ins, name)

    def nor(self, *ins: str, name: Optional[str] = None) -> str:
        return self.add(GateType.NOR, ins, name)

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Return (sum, cout)."""
        axb = self.xor(a, b)
        s = self.xor(axb, cin)
        c = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, c

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Return (sum, cout)."""
        return self.xor(a, b), self.and_(a, b)

    def mux2(self, sel: str, d0: str, d1: str) -> str:
        """2:1 multiplexer: ``sel ? d1 : d0``."""
        nsel = self.not_(sel)
        return self.or_(self.and_(nsel, d0), self.and_(sel, d1))


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """An n-bit ripple-carry adder: ``sum = a + b + cin``.

    Inputs ``a0..a{n-1}``, ``b0..b{n-1}``, ``cin``; outputs ``s0..s{n-1}``
    and ``cout``.  5n gates, depth O(n).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    carry = "cin"
    sums = []
    for i in range(width):
        s, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(b.add(GateType.BUF, (s,), name=f"s{i}"))
    cout = b.add(GateType.BUF, (carry,), name="cout")
    return Circuit(
        name or f"rca{width}",
        a_bits + b_bits + ["cin"],
        b.gates,
        sums + [cout],
    )


def magnitude_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """An n-bit magnitude comparator producing ``A > B`` and ``A = B``.

    Classic MSB-first iterative structure; stands in for the MCNC ``comp``
    benchmark (which is a 2x16-bit comparator).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    gt = None
    eq = None
    for i in reversed(range(width)):  # MSB first
        ai, bi = f"a{i}", f"b{i}"
        bit_eq = b.xnor(ai, bi)
        bit_gt = b.and_(ai, b.not_(bi))
        if gt is None:
            gt, eq = bit_gt, bit_eq
        else:
            gt = b.or_(gt, b.and_(eq, bit_gt))
            eq = b.and_(eq, bit_eq)
    gt = b.add(GateType.BUF, (gt,), name="a_gt_b")
    eq = b.add(GateType.BUF, (eq,), name="a_eq_b")
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    return Circuit(name or f"comp{width}", inputs, b.gates, ["a_gt_b", "a_eq_b"])


def population_count(width: int, builder: _Builder, bits: Sequence[str]) -> List[str]:
    """Emit a full-adder tree computing the population count of ``bits``.

    Returns the count's binary representation, LSB first.
    """
    columns: List[List[str]] = [list(bits)]
    result: List[str] = []
    while columns:
        col = columns.pop(0)
        carries: List[str] = []
        while len(col) >= 3:
            a, b_, c = col.pop(), col.pop(), col.pop()
            s, cy = builder.full_adder(a, b_, c)
            col.append(s)
            carries.append(cy)
        if len(col) == 2:
            a, b_ = col.pop(), col.pop()
            s, cy = builder.half_adder(a, b_)
            col.append(s)
            carries.append(cy)
        result.append(col[0] if col else None)
        if carries:
            if columns:
                columns[0].extend(carries)
            else:
                columns.append(carries)
    return result


def majority_voter(n_voters: int, name: Optional[str] = None) -> Circuit:
    """Majority-of-n voter: output 1 iff more than half the inputs are 1.

    Built as a population-count adder tree followed by a magnitude
    comparison against ``n_voters // 2``; stands in for the MCNC ``voter``
    style benchmark.
    """
    if n_voters < 1 or n_voters % 2 == 0:
        raise ValueError("n_voters must be odd and >= 1")
    b = _Builder()
    bits = [f"v{i}" for i in range(n_voters)]
    count = population_count(n_voters, b, bits)
    threshold = n_voters // 2  # majority iff count > threshold
    # Compare count (binary, LSB first) against the constant threshold:
    # gt_i chain from MSB down.
    gt = None
    eq = None
    for i in reversed(range(len(count))):
        t_bit = (threshold >> i) & 1
        c_bit = count[i]
        if t_bit == 0:
            bit_gt = b.add(GateType.BUF, (c_bit,))
            bit_eq = b.not_(c_bit)
        else:
            bit_gt = None  # count_bit can't exceed a 1 at this position
            bit_eq = b.add(GateType.BUF, (c_bit,))
        if gt is None and eq is None:
            gt, eq = bit_gt, bit_eq
        else:
            if bit_gt is not None:
                gt = b.or_(gt, b.and_(eq, bit_gt)) if gt is not None else b.and_(eq, bit_gt)
            eq = b.and_(eq, bit_eq)
    b.add(GateType.BUF, (gt,), name="majority")
    return Circuit(name or f"voter{n_voters}", bits, b.gates, ["majority"])


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = _Builder()
    layer = [f"i{k}" for k in range(width)]
    while len(layer) > 1:
        nxt = []
        for k in range(0, len(layer) - 1, 2):
            nxt.append(b.xor(layer[k], layer[k + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    b.add(GateType.BUF, (layer[0],), name="parity")
    return Circuit(name or f"parity{width}", [f"i{k}" for k in range(width)], b.gates, ["parity"])


def decoder(select_bits: int, name: Optional[str] = None) -> Circuit:
    """n-to-2^n line decoder (one AND of literals per output)."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    b = _Builder()
    sel = [f"s{k}" for k in range(select_bits)]
    inv = [b.not_(s) for s in sel]
    outs = []
    for code in range(2 ** select_bits):
        literals = [
            sel[k] if (code >> k) & 1 else inv[k] for k in range(select_bits)
        ]
        if len(literals) == 1:
            outs.append(b.add(GateType.BUF, literals, name=f"d{code}"))
        else:
            outs.append(b.and_(*literals, name=f"d{code}"))
    return Circuit(name or f"dec{select_bits}", sel, b.gates, outs)


def mux_tree(select_bits: int, name: Optional[str] = None) -> Circuit:
    """2^n : 1 multiplexer built as a tree of 2:1 muxes."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    b = _Builder()
    n_data = 2 ** select_bits
    data = [f"d{k}" for k in range(n_data)]
    sel = [f"s{k}" for k in range(select_bits)]
    layer = list(data)
    for level in range(select_bits):
        nxt = []
        for k in range(0, len(layer), 2):
            nxt.append(b.mux2(sel[level], layer[k], layer[k + 1]))
        layer = nxt
    b.add(GateType.BUF, (layer[0],), name="y")
    return Circuit(name or f"mux{n_data}", data + sel, b.gates, ["y"])


def alu(width: int, name: Optional[str] = None) -> Circuit:
    """A small ALU: two-bit opcode selects AND / OR / XOR / ADD of a and b.

    Stands in for the MCNC ``alu`` / ``malu`` benchmarks.  Inputs
    ``a*``, ``b*``, ``op0``, ``op1``; outputs ``y0..y{n-1}`` and ``cout``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    # ADD path.
    carry = b.and_("op0", "op1")  # carry-in 0; reuse a gate to keep all ops live
    carry = b.and_(carry, b.not_(carry))  # constant-0 via x AND NOT x
    sums = []
    for i in range(width):
        s, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(s)
    outs = []
    for i in range(width):
        and_i = b.and_(a_bits[i], b_bits[i])
        or_i = b.or_(a_bits[i], b_bits[i])
        xor_i = b.xor(a_bits[i], b_bits[i])
        lo = b.mux2("op0", and_i, or_i)     # op1=0: AND / OR
        hi = b.mux2("op0", xor_i, sums[i])  # op1=1: XOR / ADD
        outs.append(b.add(GateType.BUF, (b.mux2("op1", lo, hi),), name=f"y{i}"))
    b.add(GateType.BUF, (carry,), name="cout")
    inputs = a_bits + b_bits + ["op0", "op1"]
    return Circuit(name or f"alu{width}", inputs, b.gates, outs + ["cout"])


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """An n x n array multiplier (AND partial products + adder array).

    Stands in for the heavily arithmetic ISCAS c6288 (a 16x16 multiplier).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    b = _Builder()
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    # Partial products by output column.
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(b.and_(a_bits[i], b_bits[j]))
    outs = []
    carries: List[str] = []
    for col_idx in range(2 * width):
        col = columns[col_idx] + carries
        carries = []
        while len(col) >= 3:
            x, y, z = col.pop(), col.pop(), col.pop()
            s, c = b.full_adder(x, y, z)
            col.append(s)
            carries.append(c)
        if len(col) == 2:
            x, y = col.pop(), col.pop()
            s, c = b.half_adder(x, y)
            col.append(s)
            carries.append(c)
        if col:
            outs.append(b.add(GateType.BUF, (col[0],), name=f"p{col_idx}"))
    return Circuit(name or f"mult{width}", a_bits + b_bits, b.gates, outs)


def counter_next_state(width: int, name: Optional[str] = None) -> Circuit:
    """Next-state logic of an up-counter with enable: ``q' = q + en``.

    Stands in for the MCNC ``count`` benchmark (a counter's combinational
    core after scan conversion).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    q_bits = [f"q{i}" for i in range(width)]
    carry = "en"
    outs = []
    for i in range(width):
        s, carry = b.half_adder(q_bits[i], carry)
        outs.append(b.add(GateType.BUF, (s,), name=f"nq{i}"))
    outs.append(b.add(GateType.BUF, (carry,), name="ovf"))
    return Circuit(name or f"count{width}", q_bits + ["en"], b.gates, outs)


def max_flat(width: int, name: Optional[str] = None) -> Circuit:
    """``max(A, B)`` of two n-bit numbers: comparator + word-wide 2:1 mux.

    Stands in for the MCNC ``max_flat`` style benchmark.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    gt = None
    eq = None
    for i in reversed(range(width)):
        ai, bi = f"a{i}", f"b{i}"
        bit_eq = b.xnor(ai, bi)
        bit_gt = b.and_(ai, b.not_(bi))
        if gt is None:
            gt, eq = bit_gt, bit_eq
        else:
            gt = b.or_(gt, b.and_(eq, bit_gt))
            eq = b.and_(eq, bit_eq)
    outs = []
    for i in range(width):
        outs.append(b.add(GateType.BUF, (b.mux2(gt, f"b{i}", f"a{i}"),), name=f"m{i}"))
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    return Circuit(name or f"max{width}", inputs, b.gates, outs)


def parity_clear_register(width: int, name: Optional[str] = None) -> Circuit:
    """Parity-checked clearable register slice logic (``pcler8`` stand-in).

    For each bit: ``q' = NOT clr AND (ld ? d : q)``; plus a parity output
    over the next-state bits.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = _Builder()
    q_bits = [f"q{i}" for i in range(width)]
    d_bits = [f"d{i}" for i in range(width)]
    nclr = b.not_("clr")
    next_bits = []
    for i in range(width):
        sel = b.mux2("ld", q_bits[i], d_bits[i])
        nq = b.and_(nclr, sel)
        next_bits.append(b.add(GateType.BUF, (nq,), name=f"nq{i}"))
    parity = next_bits[0]
    for bit in next_bits[1:]:
        parity = b.xor(parity, bit)
    b.add(GateType.BUF, (parity,), name="par")
    inputs = q_bits + d_bits + ["ld", "clr"]
    return Circuit(name or f"pcler{width}", inputs, b.gates, next_bits + ["par"])


def random_layered_circuit(
    n_inputs: int,
    n_gates: int,
    seed: int,
    name: Optional[str] = None,
    max_fanin: int = 3,
    n_levels: Optional[int] = None,
    level_decay: float = 0.5,
    reach: float = 0.05,
) -> Circuit:
    """Random netlist with ISCAS-like shape (shallow, wide, reconvergent).

    Gates are placed on logic levels; every gate takes at least one
    input from the immediately preceding level (so the circuit really
    has ``n_levels`` depth) and the rest from earlier levels with a
    geometric recency bias.  Gate types follow a synthesized-logic mix
    (NAND/NOR/AND/OR dominant, occasional XOR/XNOR, some inverters).
    Used as the size-matched stand-in for non-redistributable ISCAS
    netlists (see DESIGN.md).

    Parameters
    ----------
    n_inputs, n_gates:
        Primary-input and gate counts of the generated circuit.
    seed:
        RNG seed; the same arguments always generate the same netlist.
    max_fanin:
        Maximum gate fan-in.
    n_levels:
        Logic depth; defaults to an ISCAS-like ``~4 log2(gates)``,
        clamped to [3, 45].
    level_decay:
        Geometric decay of the look-back when picking extra inputs from
        earlier levels; larger values keep connections more local.
    reach:
        Standard deviation of the *column* distance between a gate and
        its sources, as a fraction of the level width.  Mimics placement
        locality: real netlists draw fan-in from nearby columns, which
        keeps cone widths (and hence moral-graph treewidth) bounded.
    """
    return _random_layered(
        n_inputs, n_gates, seed, name, max_fanin, n_levels, level_decay, reach
    )


def scale_circuit(
    n_gates: int, seed: int = 0, name: Optional[str] = None
) -> Circuit:
    """Multi-thousand-gate layered benchmark tuned for segmentation.

    A preset over :func:`random_layered_circuit` for the 2k-100k gate
    range: the input count grows as roughly the square root of the gate
    count (rounded to a power of two), so level widths -- and with them
    cone widths and per-segment clique sizes -- stay bounded while the
    depth keeps the paper's shallow ISCAS-like profile.  2000 gates get
    64 inputs, 10000 gates get 128.
    """
    if n_gates < 64:
        raise ValueError("scale_circuit targets large circuits; need n_gates >= 64")
    n_inputs = int(2 ** round(np.log2(np.sqrt(n_gates)) + 0.5))
    return random_layered_circuit(
        n_inputs, n_gates, seed=seed, name=name or f"scale{n_gates}"
    )


def _random_layered(
    n_inputs: int,
    n_gates: int,
    seed: int,
    name: Optional[str],
    max_fanin: int,
    n_levels: Optional[int],
    level_decay: float,
    reach: float,
) -> Circuit:
    if n_inputs < 2 or n_gates < 1:
        raise ValueError("need n_inputs >= 2 and n_gates >= 1")
    rng = np.random.default_rng(seed)
    if n_levels is None:
        n_levels = int(np.clip(round(4 * np.log2(max(n_gates, 2))), 3, 45))
    n_levels = min(n_levels, n_gates)

    #: (gate type, weight, is unary) -- a synthesized-logic mix
    #: (NAND/NOR/AND/OR dominant, XORs rare, as in the ISCAS profile).
    type_table = [
        (GateType.NAND, 0.26, False),
        (GateType.NOR, 0.14, False),
        (GateType.AND, 0.20, False),
        (GateType.OR, 0.20, False),
        (GateType.XOR, 0.03, False),
        (GateType.XNOR, 0.02, False),
        (GateType.NOT, 0.11, True),
        (GateType.BUF, 0.04, True),
    ]
    weights = np.array([w for _, w, _ in type_table])
    weights /= weights.sum()

    inputs = [f"i{k}" for k in range(n_inputs)]
    #: per level: list of line names, plus their column positions in [0, 1]
    levels: List[List[str]] = [list(inputs)]
    positions: List[np.ndarray] = [
        (np.arange(n_inputs) + 0.5) / n_inputs
    ]
    gates: List[Gate] = []

    # Distribute gates over levels as evenly as possible.
    per_level = [n_gates // n_levels] * n_levels
    for k in range(n_gates % n_levels):
        per_level[k] += 1

    def pick_near(level: int, column: float, exclude: set) -> Optional[str]:
        """The line in ``level`` nearest a noisy column target, if free."""
        pool = levels[level]
        target = column + rng.normal(0.0, reach)
        idx = int(np.clip(np.searchsorted(positions[level], target), 0, len(pool) - 1))
        # Probe outward from the nearest index for an unused line.
        for offset in range(len(pool)):
            for candidate_idx in (idx - offset, idx + offset):
                if 0 <= candidate_idx < len(pool):
                    candidate = pool[candidate_idx]
                    if candidate not in exclude:
                        return candidate
        return None

    def pick_extra_source(current_level: int, column: float, exclude: set) -> str:
        """A nearby-column input from an earlier level (recency biased)."""
        for _ in range(8):
            back = int(rng.geometric(level_decay))
            level = max(0, current_level - back)
            candidate = pick_near(level, column, exclude)
            if candidate is not None:
                return candidate
        flat = [ln for lv in levels[:current_level] for ln in lv if ln not in exclude]
        return flat[int(rng.integers(len(flat)))]

    gate_counter = 0
    # Synthesized netlists contain no locally degenerate gates: a gate
    # whose output is constant (a tautology/contradiction through
    # shared ancestry, e.g. OR(NAND(a, x), a) == 1) or merely a copy or
    # complement of one of its own sources would be optimized away.
    # Functional signatures over random probe vectors detect and reject
    # such candidates; exact structural duplicates are rejected too.
    n_probes = 1024
    probe = rng.integers(0, 2, size=(n_probes, n_inputs), dtype=np.uint8)
    signatures: Dict[str, np.ndarray] = {
        name: probe[:, j] for j, name in enumerate(inputs)
    }
    seen_structures: set = set()
    for level_idx in range(1, n_levels + 1):
        count = per_level[level_idx - 1]
        new_level: List[str] = []
        new_positions = (np.arange(count) + 0.5) / max(count, 1)
        for slot in range(count):
            column = float(new_positions[slot])
            gate_type = srcs = None
            for _attempt in range(16):
                choice = int(rng.choice(len(type_table), p=weights))
                gate_type, _, unary = type_table[choice]
                first = pick_near(level_idx - 1, column, set())
                if unary:
                    srcs = [first]
                else:
                    available = sum(len(lv) for lv in levels[:level_idx])
                    # Realistic fan-in profile: mostly 2-input gates.
                    fanin = 2 if (max_fanin <= 2 or rng.random() < 0.75) else int(
                        rng.integers(3, max_fanin + 1)
                    )
                    fanin = min(fanin, available)
                    srcs = [first]
                    exclude = {first}
                    while len(srcs) < fanin:
                        extra = pick_extra_source(level_idx, column, exclude)
                        srcs.append(extra)
                        exclude.add(extra)
                structure = (gate_type, frozenset(srcs))
                if structure in seen_structures:
                    continue
                signature = evaluate_gate(gate_type, [signatures[s] for s in srcs])
                total = int(signature.sum())
                if total == 0 or total == n_probes:
                    continue  # locally constant (tautology/contradiction)
                degenerate = False
                if gate_type not in (GateType.NOT, GateType.BUF):
                    for s in srcs:
                        if (np.array_equal(signature, signatures[s])
                                or np.array_equal(signature, 1 - signatures[s])):
                            degenerate = True  # absorption: copy/complement
                            break
                if not degenerate:
                    seen_structures.add(structure)
                    break
            out = f"g{gate_counter}"
            gate_counter += 1
            gates.append(Gate(out, gate_type, tuple(srcs)))
            signatures[out] = evaluate_gate(gate_type, [signatures[s] for s in srcs])
            new_level.append(out)
        levels.append(new_level)
        positions.append(new_positions)

    return Circuit(name or f"rand_{n_inputs}x{n_gates}_s{seed}", inputs, gates)


