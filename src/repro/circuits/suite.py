"""The named benchmark suite mirroring the paper's Table 1 circuit list.

The paper evaluates 19 circuits: the ISCAS-85 c-series plus MCNC'89
benchmarks (alu, malu, max_flat, voter, b9, c8, count, comp, pcler8).
Only ``c17`` is small and public enough to embed verbatim.  Every other
c-series circuit is rebuilt from its *documented high-level function*
(see :mod:`repro.circuits.iscas`): priority interrupt controller for
c432, SEC error correction for c499/c1355/c1908, ALU/comparator/parity
datapaths for c880/c2670/c3540/c5315/c7552, and a real 16x16 array
multiplier for c6288.  MCNC circuits use functionally equivalent
generators.  Primary-input counts track the published netlists; gate
counts land within a small factor.  See DESIGN.md section 3 for the
substitution rationale.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits import examples, generate, iscas
from repro.circuits.iscas import merge_circuits, share_bus
from repro.circuits.netlist import Circuit
from repro.errors import UnknownCircuitError


def _c880s() -> Circuit:
    """Dual-ALU datapath with comparison and parity (c880 class)."""
    alu_a = generate.alu(8)
    alu_b = generate.alu(8)
    comp = generate.magnitude_comparator(8)
    maxf = generate.max_flat(8)
    adder = generate.ripple_carry_adder(8)
    shared = {}
    # The comparator reads ALU-A's operand buses; max selects between
    # ALU-B's operands; the adder has its own operands.
    shared.update(share_bus("aluA", [f"a{i}" for i in range(8)], "A"))
    shared.update(share_bus("comp", [f"a{i}" for i in range(8)], "A"))
    shared.update(share_bus("aluA", [f"b{i}" for i in range(8)], "B"))
    shared.update(share_bus("comp", [f"b{i}" for i in range(8)], "B"))
    shared.update(share_bus("aluB", [f"a{i}" for i in range(8)], "C"))
    shared.update(share_bus("maxf", [f"a{i}" for i in range(8)], "C"))
    shared.update(share_bus("aluB", [f"b{i}" for i in range(8)], "D"))
    shared.update(share_bus("maxf", [f"b{i}" for i in range(8)], "D"))
    return merge_circuits(
        "c880s",
        [("aluA", alu_a), ("aluB", alu_b), ("comp", comp), ("maxf", maxf), ("add", adder)],
        shared,
    )


def _c2670s() -> Circuit:
    """Wide ALU with comparator and parity control (c2670 class)."""
    alu = generate.alu(32)
    comp = generate.magnitude_comparator(24)
    par = generate.parity_tree(32)
    maxf = generate.max_flat(16)
    shared = share_bus("comp", [f"a{i}" for i in range(24)], "A")
    shared.update(share_bus("alu", [f"a{i}" for i in range(32)], "A"))
    return merge_circuits(
        "c2670s",
        [("alu", alu), ("comp", comp), ("par", par), ("maxf", maxf)],
        shared,
    )


def _c3540s() -> Circuit:
    """ALU with multiplication support (c3540 class)."""
    alu = generate.alu(12)
    mult = generate.array_multiplier(12)
    return merge_circuits("c3540s", [("alu", alu), ("mul", mult)])


def _c5315s() -> Circuit:
    """Nine-bit-class ALU with parallel data paths (c5315 class)."""
    alu_a = generate.alu(32)
    alu_b = generate.alu(16)
    comp = generate.magnitude_comparator(32)
    maxf = generate.max_flat(16)
    par = generate.parity_tree(14)
    shared = share_bus("comp", [f"a{i}" for i in range(32)], "A")
    shared.update(share_bus("aluA", [f"a{i}" for i in range(32)], "A"))
    return merge_circuits(
        "c5315s",
        [("aluA", alu_a), ("aluB", alu_b), ("comp", comp), ("maxf", maxf), ("par", par)],
        shared,
    )


def _c7552s() -> Circuit:
    """32-bit adder/comparator with parity and ECC (c7552 class)."""
    alu = generate.alu(32)
    adder = generate.ripple_carry_adder(32)
    comp = generate.magnitude_comparator(32)
    mult = generate.array_multiplier(14)
    sec = iscas.sec_circuit(32, 8, name="sec")
    par = generate.parity_tree(7)
    shared = {}
    shared.update(share_bus("alu", [f"a{i}" for i in range(32)], "A"))
    shared.update(share_bus("add", [f"a{i}" for i in range(32)], "A"))
    shared.update(share_bus("alu", [f"b{i}" for i in range(32)], "B"))
    shared.update(share_bus("add", [f"b{i}" for i in range(32)], "B"))
    return merge_circuits(
        "c7552s",
        [
            ("alu", alu),
            ("add", adder),
            ("comp", comp),
            ("mul", mult),
            ("sec", sec),
            ("par", par),
        ],
        shared,
    )


def _c8s() -> Circuit:
    """Select/decode control block (c8 class): decoder + mux + parity."""
    dec = generate.decoder(4)
    mux = generate.mux_tree(4)
    par = generate.parity_tree(4)
    return merge_circuits("c8s", [("dec", dec), ("mux", mux), ("par", par)])


#: Circuit factories in the paper's Table 1 row order.  Each entry is
#: (name, factory, is_synthetic_standin).
_SUITE_FACTORIES: List[tuple] = [
    ("c17", examples.c17, False),
    ("c432s", lambda: iscas.priority_controller(27, 9, name="c432s"), True),
    ("c499s", lambda: iscas.sec_circuit(32, 8, name="c499s"), True),
    ("c880s", _c880s, True),
    ("c1355s", lambda: iscas.sec_circuit(32, 8, expand_xor=True, name="c1355s"), True),
    ("c1908s", lambda: iscas.sec_circuit(24, 6, expand_xor=True, name="c1908s"), True),
    ("c2670s", _c2670s, True),
    ("c3540s", _c3540s, True),
    ("c5315s", _c5315s, True),
    ("c6288s", lambda: generate.array_multiplier(16, name="c6288s"), True),
    ("c7552s", _c7552s, True),
    ("alu", lambda: generate.alu(4, name="alu"), True),
    ("malu", lambda: generate.alu(8, name="malu"), True),
    ("max_flat", lambda: generate.max_flat(8, name="max_flat"), True),
    ("voter", lambda: generate.majority_voter(15, name="voter"), True),
    ("b9s", lambda: generate.random_layered_circuit(41, 140, seed=9, name="b9s"), True),
    ("c8s", _c8s, True),
    ("count", lambda: generate.counter_next_state(32, name="count"), True),
    ("comp", lambda: generate.magnitude_comparator(16, name="comp"), True),
    ("pcler8", lambda: generate.parity_clear_register(8, name="pcler8"), True),
]

#: Circuits beyond Table 1: the segmentation scale tier (multi-thousand
#: gates, far past any single-network clique budget) and two seeded
#: refinement demos whose boundary cuts are deliberately lossy, so
#: iterative refinement has visible error to recover (see DESIGN.md
#: section 14).  Kept out of FULL_SUITE: Table-1 consumers (paper
#: tables, the bitwise-compat baselines) iterate that list by contract.
_SCALE_FACTORIES: List[tuple] = [
    ("layered2k", lambda: generate.scale_circuit(2000, seed=2024, name="layered2k"), True),
    ("layered10k", lambda: generate.scale_circuit(10000, seed=2025, name="layered10k"), True),
    ("refineA", lambda: generate.random_layered_circuit(6, 48, seed=14, name="refineA"), True),
    ("refineB", lambda: generate.random_layered_circuit(8, 60, seed=17, name="refineB"), True),
]

#: Subset of suite names that compile into a single Bayesian network in
#: well under a second -- used by quick tests and smoke benchmarks.
SMALL_SUITE = ["c17", "alu", "max_flat", "voter", "count", "comp", "pcler8"]

#: The full Table 1 row order.
FULL_SUITE = [name for name, _, _ in _SUITE_FACTORIES]

#: The segmentation scale tier (plus refinement demos), in size order.
SCALE_SUITE = [name for name, _, _ in _SCALE_FACTORIES]


def available_circuits() -> List[str]:
    """Names of all suite circuits: Table 1 row order, then the scale tier."""
    return list(FULL_SUITE) + list(SCALE_SUITE)


def load_circuit(name: str) -> Circuit:
    """Build one suite circuit by name."""
    for circuit_name, factory, _ in _SUITE_FACTORIES + _SCALE_FACTORIES:
        if circuit_name == name:
            return factory()
    raise UnknownCircuitError(
        f"unknown suite circuit {name!r}; known: "
        f"{', '.join(FULL_SUITE + SCALE_SUITE)}"
    )


def is_standin(name: str) -> bool:
    """True if the named circuit is a synthetic stand-in (see DESIGN.md)."""
    for circuit_name, _, synthetic in _SUITE_FACTORIES + _SCALE_FACTORIES:
        if circuit_name == name:
            return synthetic
    raise UnknownCircuitError(f"unknown suite circuit {name!r}")


def benchmark_suite(names: Optional[List[str]] = None) -> Dict[str, Circuit]:
    """Build the (sub)suite of benchmark circuits.

    Parameters
    ----------
    names:
        Circuit names to build; defaults to the full 20-circuit suite.

    Returns
    -------
    Ordered dict mapping circuit name to :class:`Circuit`.
    """
    wanted = names if names is not None else FULL_SUITE
    return {name: load_circuit(name) for name in wanted}
