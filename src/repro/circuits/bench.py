"""Reader and writer for the ISCAS-85 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)

Sequential ``.bench`` files (ISCAS-89) additionally contain ``DFF`` cells;
since this library models combinational switching, DFF cells are handled
with the standard full-scan trick: each flip-flop output becomes a pseudo
primary input and each flip-flop input a pseudo primary output.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from repro.circuits.gates import resolve_gate_type
from repro.circuits.netlist import Circuit, Gate
from repro.errors import BenchFormatError

__all__ = [
    "BenchFormatError",
    "parse_bench",
    "parse_bench_file",
    "to_bench",
    "write_bench_file",
]

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*?)\s*\)$")


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` netlist text into a :class:`Circuit`.

    Declarations are strictly validated: duplicate ``INPUT(...)``
    declarations, lines defined twice (by two gates, or a gate and an
    ``INPUT``), gate operands that no declaration ever defines, and
    ``OUTPUT(...)`` of an undefined line all raise
    :class:`~repro.errors.BenchFormatError` carrying the offending
    ``.bench`` line number.

    Parameters
    ----------
    text:
        Full contents of a ``.bench`` file.
    name:
        Name to give the resulting circuit.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    defined_at: dict = {}  # line name -> .bench line number of its definition
    operand_refs: List[tuple] = []  # (lineno, gate output, operand)
    output_refs: List[tuple] = []  # (lineno, line name)

    def define(line_name: str, lineno: int, what: str) -> None:
        prev = defined_at.get(line_name)
        if prev is not None:
            raise BenchFormatError(
                f"line {lineno}: {what} {line_name!r} already defined "
                f"at line {prev}"
            )
        defined_at[line_name] = lineno

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _INPUT_RE.match(line)
        if m:
            define(m.group(1), lineno, "INPUT")
            inputs.append(m.group(1))
            continue
        m = _OUTPUT_RE.match(line)
        if m:
            outputs.append(m.group(1))
            output_refs.append((lineno, m.group(1)))
            continue
        m = _GATE_RE.match(line)
        if m:
            out, keyword, operand_text = m.groups()
            operands = [s.strip() for s in operand_text.split(",") if s.strip()]
            if not operands:
                raise BenchFormatError(f"line {lineno}: gate {out!r} has no operands")
            if keyword.upper() == "DFF":
                # Full-scan conversion: FF output -> pseudo-PI, FF input -> pseudo-PO.
                define(out, lineno, "DFF output")
                inputs.append(out)
                outputs.extend(operands)
                output_refs.extend((lineno, op) for op in operands)
                continue
            define(out, lineno, "gate output")
            try:
                gate_type = resolve_gate_type(keyword)
            except (KeyError, ValueError) as exc:
                raise BenchFormatError(f"line {lineno}: {exc}") from exc
            gates.append(Gate(out, gate_type, tuple(operands)))
            operand_refs.extend((lineno, out, op) for op in operands)
            continue
        raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")

    # References may legally precede definitions, so resolve them only
    # after the whole file is read.
    for lineno, out, operand in operand_refs:
        if operand not in defined_at:
            raise BenchFormatError(
                f"line {lineno}: gate {out!r} reads {operand!r}, "
                f"which is never defined"
            )
    for lineno, line_name in output_refs:
        if line_name not in defined_at:
            raise BenchFormatError(
                f"line {lineno}: OUTPUT({line_name}) is never defined"
            )

    if not inputs:
        raise BenchFormatError("netlist declares no INPUT lines")
    return Circuit(name, inputs, gates, outputs or None)


def parse_bench_file(path: Union[str, Path], name: str = None) -> Circuit:
    """Read and parse a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name or path.stem)


def to_bench(circuit: Circuit) -> str:
    """Serialize a :class:`Circuit` back to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to an equivalent
    circuit (same lines, gates, inputs, outputs).
    """
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({ln})" for ln in circuit.inputs)
    lines.extend(f"OUTPUT({ln})" for ln in circuit.outputs)
    lines.append("")
    for out in circuit.topological_order():
        gate = circuit.driver(out)
        if gate is not None:
            keyword = "BUFF" if gate.gate_type.value == "BUF" else gate.gate_type.value
            lines.append(f"{out} = {keyword}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to disk in ``.bench`` format."""
    Path(path).write_text(to_bench(circuit))
