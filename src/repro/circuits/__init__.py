"""Gate-level combinational circuit substrate.

This package provides everything the switching-activity model needs from
the circuit side:

- :mod:`repro.circuits.gates` -- the Boolean gate library (n-ary AND, OR,
  NAND, NOR, XOR, XNOR, plus NOT and BUF), with scalar and vectorized
  evaluation.
- :mod:`repro.circuits.netlist` -- the :class:`Circuit` netlist container
  with structural queries (topological order, levels, fanout, fanin cones)
  and evaluation.
- :mod:`repro.circuits.bench` -- reader/writer for the ISCAS-85 ``.bench``
  netlist format.
- :mod:`repro.circuits.generate` -- structural circuit generators (adders,
  ALUs, comparators, voters, parity trees, multipliers, random layered
  netlists).
- :mod:`repro.circuits.examples` -- small hand-built circuits, including
  the exact five-gate circuit of the paper's Figure 1 and ISCAS c17.
- :mod:`repro.circuits.suite` -- the named benchmark suite mirroring the
  paper's Table 1 circuit list.
- :mod:`repro.circuits.verilog` -- reader/writer for a gate-level
  structural Verilog subset.
- :mod:`repro.circuits.iscas` -- functional ISCAS-85 stand-ins
  (priority controller, SEC/ECC, composable datapaths).
"""

from repro.circuits.bench import parse_bench, parse_bench_file, to_bench
from repro.circuits.gates import GATE_LIBRARY, GateType, evaluate_gate
from repro.circuits.netlist import Circuit, Gate
from repro.circuits.verilog import parse_verilog, parse_verilog_file, to_verilog

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "GATE_LIBRARY",
    "evaluate_gate",
    "parse_bench",
    "parse_bench_file",
    "parse_verilog",
    "parse_verilog_file",
    "to_bench",
    "to_verilog",
]
