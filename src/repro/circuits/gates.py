"""Boolean gate library.

Every gate type used by the ISCAS-85/MCNC benchmark netlists is modeled:
n-ary AND, OR, NAND, NOR, XOR, XNOR plus the unary NOT and BUF.  Gates
evaluate on plain Python ints (0/1), Python bools, or numpy boolean/int
arrays -- the same code path serves single-pattern evaluation and the
vectorized logic simulator.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from typing import Sequence

import numpy as np


class GateType(str, Enum):
    """Enumeration of supported combinational gate types.

    The string values match the keywords used by the ISCAS-85 ``.bench``
    format, which makes parsing and pretty-printing trivial.
    """

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types that accept exactly one input.
UNARY_GATES = frozenset({GateType.NOT, GateType.BUF})

#: Gate types that accept two or more inputs.
NARY_GATES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR}
)

#: Aliases seen in the wild in ``.bench`` files, mapped to canonical types.
GATE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "INV": GateType.NOT,
    "NOT": GateType.NOT,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}


def _as_int(value):
    """Normalize a scalar logic value to int 0/1 (arrays pass through)."""
    if isinstance(value, np.ndarray):
        return value.astype(np.uint8)
    return int(bool(value))


def evaluate_gate(gate_type: GateType, inputs: Sequence) -> object:
    """Evaluate one gate on scalar or numpy-array logic values.

    Parameters
    ----------
    gate_type:
        The gate's Boolean function.
    inputs:
        One value per gate input.  Values may be 0/1 ints, bools, or numpy
        arrays of identical shape; arrays are combined elementwise.

    Returns
    -------
    The output value, with the same "shape" as the inputs (scalar in,
    scalar out; array in, array out).

    Raises
    ------
    ValueError
        If the number of inputs is illegal for the gate type.
    """
    arity = len(inputs)
    if gate_type in UNARY_GATES:
        if arity != 1:
            raise ValueError(f"{gate_type} takes exactly 1 input, got {arity}")
    elif arity < 1:
        raise ValueError(f"{gate_type} needs at least 1 input, got {arity}")

    vals = [_as_int(v) for v in inputs]

    if gate_type is GateType.BUF:
        result = vals[0]
    elif gate_type is GateType.NOT:
        result = 1 - vals[0]
    elif gate_type is GateType.AND:
        result = reduce(lambda a, b: a & b, vals)
    elif gate_type is GateType.NAND:
        result = 1 - reduce(lambda a, b: a & b, vals)
    elif gate_type is GateType.OR:
        result = reduce(lambda a, b: a | b, vals)
    elif gate_type is GateType.NOR:
        result = 1 - reduce(lambda a, b: a | b, vals)
    elif gate_type is GateType.XOR:
        result = reduce(lambda a, b: a ^ b, vals)
    elif gate_type is GateType.XNOR:
        result = 1 - reduce(lambda a, b: a ^ b, vals)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown gate type {gate_type!r}")

    if isinstance(result, np.ndarray):
        return result.astype(np.uint8)
    return int(result)


def gate_truth_table(gate_type: GateType, arity: int) -> list[int]:
    """Return the gate's truth table as a flat list indexed by input bits.

    Entry ``k`` is the output for the input assignment whose bits are the
    binary expansion of ``k`` with input 0 as the *most* significant bit
    (i.e. lexicographic order over input tuples).
    """
    table = []
    for k in range(2 ** arity):
        bits = [(k >> (arity - 1 - i)) & 1 for i in range(arity)]
        table.append(evaluate_gate(gate_type, bits))
    return table


def controlling_value(gate_type: GateType):
    """Return the controlling input value of the gate, or ``None``.

    A controlling value forces the gate output regardless of the other
    inputs (0 for AND/NAND, 1 for OR/NOR).  XOR-family and unary gates
    have no controlling value.
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return 0
    if gate_type in (GateType.OR, GateType.NOR):
        return 1
    return None


def is_inverting(gate_type: GateType) -> bool:
    """True for gates whose output is the complement of the base function."""
    return gate_type in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)


def resolve_gate_type(name: str) -> GateType:
    """Map a (possibly aliased, any-case) gate keyword to a :class:`GateType`."""
    key = name.strip().upper()
    if key not in GATE_ALIASES:
        raise ValueError(f"unknown gate type keyword {name!r}")
    return GATE_ALIASES[key]


#: Mapping from canonical gate-name string to :class:`GateType`, exported
#: for callers that want to enumerate the library.
GATE_LIBRARY = {gt.value: gt for gt in GateType}
