"""Variable elimination: an independent exact inference engine.

Used as the cross-check oracle for the junction tree (two independent
exact engines agreeing on random networks is strong evidence both are
right) and for ad-hoc joint queries over variables that do not share a
clique.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.bayesian.factor import Factor, factor_product
from repro.bayesian.network import BayesianNetwork
from repro.bayesian.triangulate import find_elimination_order
from repro.bayesian.moral import moral_graph


def variable_elimination(
    bn: BayesianNetwork,
    targets: Sequence[str],
    evidence: Optional[Mapping[str, int]] = None,
    elimination_order: Optional[Sequence[str]] = None,
) -> Factor:
    """Compute the joint posterior ``P(targets | evidence)`` exactly.

    Parameters
    ----------
    bn:
        The network to query.
    targets:
        Variables to keep; the result factor's axes follow this order.
    evidence:
        Observed states, as ``{variable: state}``.
    elimination_order:
        Order over the *eliminated* variables; defaults to a min-fill
        order restricted to non-target, non-evidence variables.

    Returns
    -------
    A normalized :class:`Factor` over ``targets``.
    """
    evidence = dict(evidence or {})
    target_list = list(targets)
    if not target_list:
        raise ValueError("need at least one target variable")
    overlap = set(target_list) & set(evidence)
    if overlap:
        raise ValueError(f"targets also observed: {sorted(overlap)}")
    unknown = (set(target_list) | set(evidence)) - set(bn.nodes)
    if unknown:
        raise KeyError(f"unknown variables {sorted(unknown)}")

    factors: List[Factor] = [cpd.to_factor() for cpd in bn.cpds()]
    for var, state in evidence.items():
        factors.append(Factor.indicator(var, bn.cardinality(var), state))

    keep = set(target_list) | set(evidence)
    to_eliminate = [n for n in bn.nodes if n not in keep]
    if elimination_order is None:
        cards = {n: bn.cardinality(n) for n in bn.nodes}
        moral = moral_graph(bn)
        full_order = find_elimination_order(moral, "min_fill", cards)
        order = [n for n in full_order if n in set(to_eliminate)]
    else:
        order = list(elimination_order)
        if set(order) != set(to_eliminate):
            raise ValueError(
                "elimination_order must cover exactly the non-target, "
                "non-evidence variables"
            )

    for var in order:
        involved = [f for f in factors if var in f]
        untouched = [f for f in factors if var not in f]
        if involved:
            summed = factor_product(involved).marginalize([var])
            untouched.append(summed)
        factors = untouched

    result = factor_product(factors)
    # Evidence indicators may leave observed variables in scope; sum the
    # degenerate axes out.
    extra = [v for v in result.variables if v not in target_list]
    if extra:
        result = result.marginalize(extra)
    return result.normalize().permute(target_list)


def posterior_marginals(
    bn: BayesianNetwork,
    variables: Optional[Sequence[str]] = None,
    evidence: Optional[Mapping[str, int]] = None,
) -> Dict[str, Factor]:
    """Per-variable posterior marginals via repeated elimination.

    Quadratic-ish and only for oracles/tests; the junction tree computes
    all marginals in one calibration.
    """
    evidence = dict(evidence or {})
    wanted = variables if variables is not None else [
        n for n in bn.nodes if n not in evidence
    ]
    return {
        var: variable_elimination(bn, [var], evidence) for var in wanted
    }
