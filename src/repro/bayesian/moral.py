"""Moralization -- step one of the compilation pipeline (paper Section 5).

The moral graph of a DAG adds an undirected edge between every pair of
parents that share a child ("marrying the parents") and then drops all
edge directions.  It is the Markov-structure view of the factorized
joint distribution: every CPD's scope (a node plus its parents) induces
a clique.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.bayesian.dsep import moralize_graph
from repro.bayesian.network import BayesianNetwork


def moral_graph(bn: BayesianNetwork) -> nx.Graph:
    """The moral graph of a Bayesian network's DAG."""
    return moralize_graph(bn.to_digraph())


def moral_graph_with_fill_report(bn: BayesianNetwork) -> Tuple[nx.Graph, list]:
    """Moral graph plus the list of marriage edges that were added.

    Useful for reproducing the paper's Figure 3, which highlights the
    moralization edge (X1, X2) separately from the triangulation fill-in.
    """
    dag = bn.to_digraph()
    moral = moralize_graph(dag)
    skeleton = {frozenset((u, v)) for u, v in dag.edges}
    marriages = [
        (u, v) for u, v in moral.edges if frozenset((u, v)) not in skeleton
    ]
    return moral, marriages
