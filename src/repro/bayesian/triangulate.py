"""Graph triangulation -- step two of the compilation pipeline.

Message passing requires a *chordal* (triangulated) graph: every cycle
of length > 3 must have a chord.  Triangulation quality drives inference
cost -- the state space of the largest clique is the exponential term --
so the elimination order matters.  Two standard greedy heuristics are
provided:

- ``min_fill``: eliminate the node adding the fewest fill-in edges
  (usually the best tables-size results; the default).
- ``min_degree`` (a.k.a. min-neighbors): eliminate the lowest-degree
  node; cheaper to compute, often slightly worse.

Both are weighted variants: ties break on the smallest resulting clique
*state space* given per-node cardinalities, then lexicographically, so
results are deterministic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx


def _fill_in_edges(adjacency: Dict[str, Set[str]], node: str) -> List[Tuple[str, str]]:
    """Fill-ins created by eliminating ``node`` from the working graph."""
    neighbors = sorted(adjacency[node])
    fills = []
    for i in range(len(neighbors)):
        for j in range(i + 1, len(neighbors)):
            u, v = neighbors[i], neighbors[j]
            if v not in adjacency[u]:
                fills.append((u, v))
    return fills


def _fill_in_count(adjacency: Dict[str, Set[str]], node: str) -> int:
    """Number of fill-ins for eliminating ``node`` (set-intersection fast path)."""
    neighbors = adjacency[node]
    degree = len(neighbors)
    # Each existing edge inside the neighborhood is counted twice.
    present = sum(len(adjacency[u] & neighbors) for u in neighbors)
    return degree * (degree - 1) // 2 - present // 2


def _clique_weight(
    adjacency: Dict[str, Set[str]], node: str, cardinality: Callable[[str], int]
) -> float:
    """Log state-space of the clique formed by eliminating ``node``."""
    weight = math.log(cardinality(node))
    for neighbor in adjacency[node]:
        weight += math.log(cardinality(neighbor))
    return weight


def find_elimination_order(
    graph: nx.Graph,
    heuristic: str = "min_fill",
    cardinalities: Optional[Dict[str, int]] = None,
) -> List[str]:
    """Greedy elimination order for ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph (typically a moral graph).
    heuristic:
        ``"min_fill"`` or ``"min_degree"``.
    cardinalities:
        Optional per-node state counts used for tie-breaking by clique
        state space (all nodes default to 2).
    """
    if heuristic not in ("min_fill", "min_degree"):
        raise ValueError(f"unknown heuristic {heuristic!r}")
    cards = cardinalities or {}

    def card(node: str) -> int:
        return cards.get(node, 2)

    adjacency: Dict[str, Set[str]] = {n: set(graph.neighbors(n)) for n in graph.nodes}
    uniform_cards = len({card(n) for n in adjacency}) <= 1

    def metric(node: str):
        if heuristic == "min_fill":
            primary = _fill_in_count(adjacency, node)
        else:
            primary = len(adjacency[node])
        if uniform_cards:
            # All state counts equal: clique weight reduces to its size.
            secondary = float(len(adjacency[node]))
        else:
            secondary = _clique_weight(adjacency, node, card)
        return (primary, secondary, node)

    # Cache per-node keys; after each elimination only nodes within two
    # hops of the eliminated node can change, so only they are rescored.
    keys: Dict[str, tuple] = {n: metric(n) for n in adjacency}
    order: List[str] = []
    while adjacency:
        best = None
        best_key = None
        for node, key in keys.items():
            if best_key is None or key < best_key:
                best, best_key = node, key
        neighborhood = set(adjacency[best])
        for u, v in _fill_in_edges(adjacency, best):
            adjacency[u].add(v)
            adjacency[v].add(u)
        for neighbor in neighborhood:
            adjacency[neighbor].discard(best)
        del adjacency[best]
        del keys[best]
        order.append(best)
        dirty = set(neighborhood)
        for neighbor in neighborhood:
            dirty.update(adjacency[neighbor])
        dirty &= set(keys)
        for node in dirty:
            keys[node] = metric(node)
    return order


def triangulate(
    graph: nx.Graph,
    order: Optional[Sequence[str]] = None,
    heuristic: str = "min_fill",
    cardinalities: Optional[Dict[str, int]] = None,
) -> Tuple[nx.Graph, List[str], List[Tuple[str, str]]]:
    """Triangulate ``graph`` along an elimination order.

    Returns ``(chordal_graph, order, fill_in_edges)``.  The input graph
    is not modified.
    """
    if order is None:
        order = find_elimination_order(graph, heuristic, cardinalities)
    else:
        order = list(order)
        if set(order) != set(graph.nodes) or len(order) != graph.number_of_nodes():
            raise ValueError("order must be a permutation of the graph nodes")

    chordal = graph.copy()
    adjacency: Dict[str, Set[str]] = {n: set(chordal.neighbors(n)) for n in chordal.nodes}
    fills: List[Tuple[str, str]] = []
    for node in order:
        for u, v in _fill_in_edges(adjacency, node):
            adjacency[u].add(v)
            adjacency[v].add(u)
            chordal.add_edge(u, v)
            fills.append((u, v))
        for neighbor in adjacency[node]:
            adjacency[neighbor].discard(node)
        del adjacency[node]
    return chordal, list(order), fills


def elimination_cliques(
    graph: nx.Graph, order: Sequence[str]
) -> List[frozenset]:
    """Maximal cliques of a graph chordalized along ``order``.

    Walks the elimination order collecting each node's eliminated
    neighborhood clique, then drops non-maximal ones.  ``graph`` must
    already be chordal with respect to ``order`` (i.e. the output of
    :func:`triangulate`), in which case the result is exactly the set of
    maximal cliques.
    """
    adjacency: Dict[str, Set[str]] = {n: set(graph.neighbors(n)) for n in graph.nodes}
    raw: List[frozenset] = []
    for node in order:
        clique = frozenset(adjacency[node] | {node})
        raw.append(clique)
        for neighbor in adjacency[node]:
            adjacency[neighbor].discard(node)
        del adjacency[node]
    # Keep only maximal cliques (dedupe subsets).
    raw.sort(key=len, reverse=True)
    maximal: List[frozenset] = []
    for clique in raw:
        if not any(clique < kept or clique == kept for kept in maximal):
            maximal.append(clique)
    return maximal


def is_chordal(graph: nx.Graph) -> bool:
    """True if every cycle of length > 3 has a chord."""
    return nx.is_chordal(graph)


def treewidth_of_order(graph: nx.Graph, order: Sequence[str]) -> int:
    """Width (max eliminated-neighborhood size) of an elimination order."""
    adjacency: Dict[str, Set[str]] = {n: set(graph.neighbors(n)) for n in graph.nodes}
    width = 0
    for node in order:
        width = max(width, len(adjacency[node]))
        for u, v in _fill_in_edges(adjacency, node):
            adjacency[u].add(v)
            adjacency[v].add(u)
        for neighbor in adjacency[node]:
            adjacency[neighbor].discard(node)
        del adjacency[node]
    return width


def max_clique_state_space(
    cliques: Iterable[frozenset], cardinalities: Dict[str, int]
) -> int:
    """Largest clique table size under the given cardinalities."""
    largest = 1
    for clique in cliques:
        size = 1
        for node in clique:
            size *= cardinalities.get(node, 2)
        largest = max(largest, size)
    return largest
