"""Tabular conditional probability distributions.

A :class:`TabularCPD` quantifies one Bayesian-network link bundle:
``P(variable | parents)``.  Internally it is a :class:`Factor` whose axis
order is ``parents + (variable,)`` and whose table sums to one along the
variable axis for every parent configuration.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.bayesian.factor import Factor


class TabularCPD:
    """``P(variable | parents)`` as an explicit table.

    Parameters
    ----------
    variable:
        Name of the child variable.
    cardinality:
        Number of states of the child.
    table:
        Array of shape ``parent_cards + (cardinality,)``.  Each slice
        along the last axis must be a probability distribution.
    parents:
        Parent variable names, one per leading table axis.
    """

    __slots__ = ("variable", "parents", "factor")

    def __init__(
        self,
        variable: str,
        cardinality: int,
        table: np.ndarray,
        parents: Sequence[str] = (),
    ):
        self.variable = variable
        self.parents: Tuple[str, ...] = tuple(parents)
        values = np.asarray(table, dtype=np.float64)
        expected_ndim = len(self.parents) + 1
        if values.ndim != expected_ndim:
            raise ValueError(
                f"CPD for {variable!r}: table has {values.ndim} axes, "
                f"expected {expected_ndim} (parents + child)"
            )
        if values.shape[-1] != cardinality:
            raise ValueError(
                f"CPD for {variable!r}: last axis is {values.shape[-1]}, "
                f"expected child cardinality {cardinality}"
            )
        sums = values.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-8):
            raise ValueError(
                f"CPD for {variable!r}: rows must sum to 1 "
                f"(worst deviation {np.abs(sums - 1).max():.3g})"
            )
        self.factor = Factor(self.parents + (variable,), values)

    # ------------------------------------------------------------------

    @classmethod
    def prior(cls, variable: str, probabilities: Sequence[float]) -> "TabularCPD":
        """A root-node CPD (no parents)."""
        return cls(variable, len(list(probabilities)), np.asarray(probabilities))

    @classmethod
    def _trusted(
        cls,
        variable: str,
        values: np.ndarray,
        parents: Sequence[str] = (),
    ) -> "TabularCPD":
        """Construction fast path for hot sweep loops.

        ``values`` must already be a float64 array of shape
        ``parent_cards + (cardinality,)`` with normalized rows -- the
        caller guarantees everything ``__init__`` would check.  Batched
        scenario sweeps build tens of thousands of CPDs per call; the
        row-sum ``allclose`` alone dominates their runtime.
        """
        cpd = object.__new__(cls)
        cpd.variable = variable
        cpd.parents = tuple(parents)
        cpd.factor = Factor._unsafe(cpd.parents + (variable,), values)
        return cpd

    @classmethod
    def deterministic(
        cls,
        variable: str,
        cardinality: int,
        parents: Sequence[str],
        parent_cardinalities: Sequence[int],
        function,
    ) -> "TabularCPD":
        """Build a 0/1 CPD from ``function(parent_states...) -> child state``.

        This is how gate CPTs are constructed: the child state is a
        deterministic function of the parent states, so each row is an
        indicator vector.
        """
        parent_cards = tuple(parent_cardinalities)
        table = np.zeros(parent_cards + (cardinality,))
        for flat in range(int(np.prod(parent_cards)) if parent_cards else 1):
            idx = np.unravel_index(flat, parent_cards) if parent_cards else ()
            state = function(*idx)
            if not 0 <= state < cardinality:
                raise ValueError(
                    f"deterministic CPD for {variable!r}: function returned "
                    f"{state}, outside 0..{cardinality - 1}"
                )
            table[idx + (state,)] = 1.0
        return cls(variable, cardinality, table, parents)

    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return self.factor.values.shape[-1]

    def to_factor(self) -> Factor:
        """The CPD viewed as a plain factor (axes: parents + child)."""
        return self.factor

    def probability(self, child_state: int, parent_states: Mapping[str, int]) -> float:
        """``P(variable = child_state | parents = parent_states)``."""
        assignment = dict(parent_states)
        assignment[self.variable] = child_state
        return self.factor.probability(assignment)

    def is_deterministic(self) -> bool:
        """True if every row of the table is an indicator vector."""
        return bool(np.all((self.factor.values == 0) | (self.factor.values == 1)))

    def __repr__(self) -> str:
        return f"TabularCPD({self.variable!r} | {list(self.parents)})"
