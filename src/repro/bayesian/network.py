"""The Bayesian network container: a DAG plus one CPD per node."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

import networkx as nx
import numpy as np

from repro.bayesian.cpd import TabularCPD
from repro.bayesian.factor import Factor, factor_product


class BayesianNetwork:
    """A discrete Bayesian network.

    Nodes are added implicitly by attaching CPDs; the DAG structure is
    the union of the CPD parent relations.  The network validates itself
    incrementally: cardinalities must be consistent, parents must exist
    (by the time :meth:`validate` runs), and the graph must stay acyclic.
    """

    def __init__(self, name: str = "bn"):
        self.name = name
        self._cpds: Dict[str, TabularCPD] = {}
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_cpd(self, cpd: TabularCPD) -> None:
        """Attach a CPD, creating the node and its incoming edges."""
        if cpd.variable in self._cpds:
            raise ValueError(f"{self.name}: node {cpd.variable!r} already has a CPD")
        pre_existing = cpd.variable in self._graph
        new_edges = [
            (parent, cpd.variable)
            for parent in cpd.parents
            if not self._graph.has_edge(parent, cpd.variable)
        ]
        # A brand-new node, or one without outgoing edges, cannot close a
        # cycle by acquiring parents -- skip the O(V+E) check for the
        # common topological-insertion pattern.
        needs_cycle_check = (
            pre_existing and self._graph.out_degree(cpd.variable) > 0 and new_edges
        )
        self._cpds[cpd.variable] = cpd
        self._graph.add_node(cpd.variable)
        self._graph.add_edges_from(new_edges)
        if needs_cycle_check and not nx.is_directed_acyclic_graph(self._graph):
            # Roll back exactly what this call introduced.
            self._graph.remove_edges_from(new_edges)
            if not pre_existing:
                self._graph.remove_node(cpd.variable)
            del self._cpds[cpd.variable]
            raise ValueError(f"{self.name}: adding {cpd.variable!r} creates a cycle")

    def validate(self) -> None:
        """Check the network is complete and internally consistent."""
        for node in self._graph.nodes:
            if node not in self._cpds:
                raise ValueError(f"{self.name}: node {node!r} has no CPD")
        for cpd in self._cpds.values():
            for i, parent in enumerate(cpd.parents):
                declared = cpd.factor.values.shape[i]
                actual = self._cpds[parent].cardinality
                if declared != actual:
                    raise ValueError(
                        f"{self.name}: CPD of {cpd.variable!r} assumes parent "
                        f"{parent!r} has {declared} states but it has {actual}"
                    )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return list(self._graph.nodes)

    @property
    def edges(self) -> List[tuple]:
        return list(self._graph.edges)

    def parents(self, node: str) -> List[str]:
        return list(self._cpds[node].parents)

    def children(self, node: str) -> List[str]:
        return list(self._graph.successors(node))

    def cardinality(self, node: str) -> int:
        return self._cpds[node].cardinality

    def cpd(self, node: str) -> TabularCPD:
        return self._cpds[node]

    def cpds(self) -> List[TabularCPD]:
        return list(self._cpds.values())

    def topological_order(self) -> List[str]:
        return list(nx.topological_sort(self._graph))

    def roots(self) -> List[str]:
        """Nodes with no parents."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def markov_blanket(self, node: str) -> Set[str]:
        """Parents, children, and children's other parents of ``node``."""
        blanket: Set[str] = set(self._graph.predecessors(node))
        for child in self._graph.successors(node):
            blanket.add(child)
            blanket.update(self._graph.predecessors(child))
        blanket.discard(node)
        return blanket

    def to_digraph(self) -> nx.DiGraph:
        """A copy of the underlying DAG."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # Distribution queries (exact, exponential -- small networks only)
    # ------------------------------------------------------------------

    def joint_factor(self) -> Factor:
        """The full joint distribution as one factor.

        Exponential in the number of nodes; intended for test oracles and
        tiny examples (Eq. 6 of the paper).
        """
        self.validate()
        return factor_product(cpd.to_factor() for cpd in self._cpds.values())

    def joint_probability(self, assignment: Mapping[str, int]) -> float:
        """P(full assignment) via the chain-rule factorization (Eq. 6)."""
        prob = 1.0
        for node, cpd in self._cpds.items():
            prob *= cpd.probability(
                assignment[node], {p: assignment[p] for p in cpd.parents}
            )
        return prob

    def brute_force_marginal(
        self, node: str, evidence: Optional[Mapping[str, int]] = None
    ) -> np.ndarray:
        """Marginal of one node by summing the full joint (test oracle)."""
        joint = self.joint_factor()
        if evidence:
            for var, state in evidence.items():
                joint = joint.product(
                    Factor.indicator(var, self.cardinality(var), state)
                )
        return joint.marginal_onto([node]).normalize().values

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork({self.name!r}, nodes={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()})"
        )
