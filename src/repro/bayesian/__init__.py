"""Exact discrete Bayesian-network engine built from scratch.

Since no third-party BN library is available offline, this package
implements the complete probabilistic machinery the paper obtained from
the HUGIN tool:

- :mod:`repro.bayesian.factor` -- discrete factor algebra on numpy.
- :mod:`repro.bayesian.cpd` -- tabular conditional probability
  distributions.
- :mod:`repro.bayesian.network` -- the :class:`BayesianNetwork` container
  (DAG + CPDs) with joint-distribution and Markov-blanket queries.
- :mod:`repro.bayesian.dsep` -- d-separation (Pearl's Definition 2).
- :mod:`repro.bayesian.moral` -- moralization of the DAG.
- :mod:`repro.bayesian.triangulate` -- elimination-order heuristics and
  graph triangulation.
- :mod:`repro.bayesian.junction` -- junction tree construction and
  Hugin-style two-phase message passing (the paper's Section 5).
- :mod:`repro.bayesian.elimination` -- variable elimination, an
  independent exact engine used to cross-check the junction tree.
- :mod:`repro.bayesian.sampling` -- forward sampling and likelihood
  weighting.
"""

from repro.bayesian.cpd import TabularCPD
from repro.bayesian.elimination import variable_elimination
from repro.bayesian.factor import Factor
from repro.bayesian.junction import JunctionTree
from repro.bayesian.network import BayesianNetwork

__all__ = [
    "BayesianNetwork",
    "Factor",
    "JunctionTree",
    "TabularCPD",
    "variable_elimination",
]
