"""Discrete factor algebra over named variables.

A :class:`Factor` is a non-negative table indexed by the joint states of
an ordered tuple of named discrete variables.  Factors support the
operations exact inference needs: product, division (with the 0/0 = 0
convention required by Hugin updates), marginalization, evidence
reduction, and normalization.  All arithmetic happens on numpy arrays
with broadcasting, so factor product is O(size of the result table).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ZeroBeliefError


class Factor:
    """An unnormalized potential over a set of discrete variables.

    Parameters
    ----------
    variables:
        Ordered variable names; axis ``k`` of ``values`` indexes
        ``variables[k]``.
    values:
        Array of shape ``tuple(cardinalities)``; must be non-negative.

    Factors are immutable by convention: all operations return new
    factors and never mutate ``values`` in place (callers that need
    in-place speed use the underscore-prefixed helpers).
    """

    __slots__ = ("variables", "values", "_varset")

    def __init__(self, variables: Sequence[str], values: np.ndarray):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.values = np.asarray(values, dtype=np.float64)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables in factor: {self.variables}")
        if self.values.ndim != len(self.variables):
            raise ValueError(
                f"{len(self.variables)} variables but values has "
                f"{self.values.ndim} dimensions"
            )
        if np.any(self.values < 0):
            raise ValueError("factor values must be non-negative")
        self._varset = frozenset(self.variables)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _unsafe(cls, variables: Tuple[str, ...], values: np.ndarray) -> "Factor":
        """Internal fast path: skip validation for results of operations
        that preserve the factor invariants by construction."""
        factor = object.__new__(cls)
        factor.variables = tuple(variables)
        factor.values = values
        factor._varset = frozenset(factor.variables)
        return factor

    @classmethod
    def unit(cls) -> "Factor":
        """The multiplicative identity: a scalar factor of value 1."""
        return cls((), np.float64(1.0).reshape(()))

    @classmethod
    def uniform(cls, variables: Sequence[str], cardinalities: Sequence[int]) -> "Factor":
        """A constant factor of all ones over the given variables."""
        return cls(variables, np.ones(tuple(cardinalities)))

    @classmethod
    def indicator(cls, variable: str, cardinality: int, state: int) -> "Factor":
        """Evidence indicator: 1 at ``state``, 0 elsewhere."""
        if not 0 <= state < cardinality:
            raise ValueError(f"state {state} out of range for cardinality {cardinality}")
        values = np.zeros(cardinality)
        values[state] = 1.0
        return cls((variable,), values)

    @classmethod
    def from_distribution(cls, variable: str, probabilities: Sequence[float]) -> "Factor":
        """A single-variable factor holding a probability vector."""
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 1:
            raise ValueError("probabilities must be one-dimensional")
        return cls((variable,), probs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cardinality(self, variable: str) -> int:
        """Number of states of ``variable`` in this factor."""
        return self.values.shape[self.variables.index(variable)]

    @property
    def cardinalities(self) -> Dict[str, int]:
        return {v: self.values.shape[i] for i, v in enumerate(self.variables)}

    @property
    def size(self) -> int:
        """Number of table entries."""
        return int(self.values.size)

    def __contains__(self, variable: str) -> bool:
        return variable in self._varset

    # ------------------------------------------------------------------
    # Core algebra
    # ------------------------------------------------------------------

    def _expand_to(self, union: Sequence[str]) -> np.ndarray:
        """View of ``values`` broadcastable against the ``union`` scope."""
        own_axes = [self.variables.index(v) for v in union if v in self._varset]
        arr = self.values.transpose(own_axes) if own_axes else self.values.reshape(())
        it = iter(arr.shape)
        shape = [next(it) if v in self._varset else 1 for v in union]
        return arr.reshape(shape)

    def product(self, other: "Factor") -> "Factor":
        """Factor product (scope = union of scopes)."""
        union = list(self.variables) + [v for v in other.variables if v not in self._varset]
        return Factor._unsafe(union, self._expand_to(union) * other._expand_to(union))

    def divide(self, other: "Factor") -> "Factor":
        """Factor division with the 0/0 = 0 convention.

        Division by zero where the numerator is non-zero is an error: in a
        correctly calibrated junction tree it never happens.
        """
        union = list(self.variables) + [v for v in other.variables if v not in self._varset]
        num = np.broadcast_to(self._expand_to(union), self._union_shape(other, union)).copy()
        den = np.broadcast_to(other._expand_to(union), num.shape)
        zero_den = den == 0
        if np.any(zero_den & (num != 0)):
            raise ZeroDivisionError("nonzero/zero in factor division")
        out = np.divide(num, den, out=np.zeros_like(num), where=~zero_den)
        return Factor._unsafe(union, out)

    def _union_shape(self, other: "Factor", union: Sequence[str]) -> Tuple[int, ...]:
        cards = dict(other.cardinalities)
        cards.update(self.cardinalities)
        return tuple(cards[v] for v in union)

    def marginalize(self, variables: Iterable[str]) -> "Factor":
        """Sum out the given variables."""
        drop = set(variables)
        missing = drop - self._varset
        if missing:
            raise KeyError(f"cannot marginalize absent variables {sorted(missing)}")
        axes = tuple(i for i, v in enumerate(self.variables) if v in drop)
        keep = tuple(v for v in self.variables if v not in drop)
        return Factor._unsafe(keep, self.values.sum(axis=axes))

    def marginal_onto(self, variables: Sequence[str]) -> "Factor":
        """Sum out everything *except* the given variables.

        The result's variables follow this factor's axis order, not the
        order of ``variables``.
        """
        keep = set(variables)
        missing = keep - self._varset
        if missing:
            raise KeyError(f"factor does not contain {sorted(missing)}")
        return self.marginalize([v for v in self.variables if v not in keep])

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Condition on observed states, removing the observed variables."""
        arr = self.values
        keep_vars = []
        index: list = []
        for i, v in enumerate(self.variables):
            if v in evidence:
                state = evidence[v]
                if not 0 <= state < arr.shape[i]:
                    raise ValueError(f"state {state} out of range for {v!r}")
                index.append(state)
            else:
                keep_vars.append(v)
                index.append(slice(None))
        return Factor(keep_vars, arr[tuple(index)])

    def normalize(self) -> "Factor":
        """Scale so the table sums to 1."""
        total = self.values.sum()
        if total <= 0:
            raise ZeroBeliefError("cannot normalize a zero factor")
        return Factor._unsafe(self.variables, self.values / total)

    def permute(self, order: Sequence[str]) -> "Factor":
        """Reorder axes to ``order`` (must be a permutation of the scope)."""
        if set(order) != self._varset or len(order) != len(self.variables):
            raise ValueError(f"{order} is not a permutation of {self.variables}")
        axes = [self.variables.index(v) for v in order]
        return Factor._unsafe(tuple(order), self.values.transpose(axes))

    # ------------------------------------------------------------------
    # Queries & comparison
    # ------------------------------------------------------------------

    def probability(self, assignment: Mapping[str, int]) -> float:
        """Table entry for a full assignment of this factor's scope."""
        index = tuple(assignment[v] for v in self.variables)
        return float(self.values[index])

    def total(self) -> float:
        return float(self.values.sum())

    def allclose(self, other: "Factor", atol: float = 1e-10) -> bool:
        """True if both factors have the same scope and ~equal tables."""
        if set(self.variables) != set(other.variables):
            return False
        return np.allclose(self.values, other.permute(self.variables).values, atol=atol)

    def __mul__(self, other):
        if isinstance(other, Factor):
            return self.product(other)
        return Factor(self.variables, self.values * float(other))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"Factor({list(self.variables)}, size={self.size})"

    # ------------------------------------------------------------------
    # In-place kernels (propagation-engine fast path)
    #
    # These break the immutability convention on purpose; they are only
    # called by code that owns the underlying buffer (the compiled
    # propagation engine).  The public API above never mutates.
    # ------------------------------------------------------------------

    def _imul(self, other: "Factor") -> "Factor":
        """In-place multiply by a factor whose scope is a subset of ours."""
        self.values *= other._expand_to(self.variables)
        return self

    def _is_identity(self) -> bool:
        """True for an all-ones table (multiplicative identity on its scope)."""
        values = self.values
        return bool((values == 1.0).all())


def plan_product(factors: Iterable[Factor], size_key=None) -> list:
    """Select and order the factors :func:`factor_product` would fold.

    Smallest factors come first so intermediate products stay as small
    as possible, and identity (all-ones) factors are dropped unless they
    are needed to establish the result's scope.  ``size_key`` overrides
    the size used for ordering (default: :attr:`Factor.size`); batched
    callers pass a per-scenario size so the fold order matches what an
    unbatched fold over any single scenario would use.

    Returns the ordered list of factors to fold (may be empty).
    """
    if size_key is None:
        size_key = lambda f: f.size  # noqa: E731 - trivial default key
    pending = sorted(factors, key=size_key)
    keep: list = []
    identities: list = []
    covered: set = set()
    for factor in pending:
        if factor._is_identity():
            identities.append(factor)
        else:
            keep.append(factor)
            covered |= factor._varset
    # Identity factors only matter when they widen the scope.
    for factor in identities:
        if not factor._varset <= covered:
            keep.append(factor)
            covered |= factor._varset
    keep.sort(key=size_key)
    return keep


def factor_product(factors: Iterable[Factor]) -> Factor:
    """Multiply a collection of factors (unit factor if empty).

    Smallest-scope factors are folded first so intermediate products
    stay as small as possible, and identity (all-ones) factors are
    skipped unless they are needed to establish the result's scope.
    The result's *variable set* matches the naive left-to-right fold;
    the axis order may differ (use :meth:`Factor.permute` if a specific
    order is required).
    """
    keep = plan_product(factors)
    if not keep:
        # All inputs were identities over already-covered scopes (or the
        # iterable was empty); the widest identity, if any, carries the
        # scope.  ``covered`` is empty here, so the product is scalar 1
        # unless some identity factor exists -- but every identity with
        # new scope was kept above, so scalar unit is correct.
        return Factor.unit()
    result = keep[0]
    for factor in keep[1:]:
        result = result.product(factor)
    if len(keep) == 1:
        # Never alias an input factor: callers treat results as fresh.
        result = Factor._unsafe(result.variables, result.values.copy())
    return result
