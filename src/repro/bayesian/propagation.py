"""Compiled propagation schedules and in-place Hugin kernels.

The paper's headline split is *compile once, re-propagate in
milliseconds*: junction-tree construction (moralization, triangulation,
spanning tree) is paid once per circuit, while every new set of input
statistics only re-runs message passing.  This module makes the second
half of that bargain real:

- :class:`PropagationSchedule` is computed once per junction tree.  It
  fixes the collect/distribute message order, canonicalizes every
  clique's variable order, and precomputes, per directed message, the
  einsum axis lists and broadcast shapes that the naive
  :meth:`Factor._expand_to` path re-derives on every single message.

- :class:`PropagationEngine` owns preallocated clique belief buffers
  and separator message buffers and runs the Hugin update with in-place
  numpy kernels: ``np.einsum(..., out=)`` marginalizes into the
  separator buffers, ``np.multiply(..., out=)`` absorbs ratios, and the
  0/0 = 0 division mask is applied with ``np.divide(..., where=)`` on
  separator-sized arrays only (never on clique tables).

- **Dirty-clique repropagation**: callers mark cliques whose potentials
  changed (:meth:`PropagationEngine.set_potential`); the next
  :meth:`~PropagationEngine.propagate` recomputes only the upward
  messages whose source subtree contains a dirty clique and the
  downward messages their changes invalidate.  Subtrees the update
  cannot reach are skipped entirely.

The message algebra is the classic Hugin scheme written with cached
directed messages: during collect, each clique's *partial* belief
``psi * prod(child messages)`` is built bottom-up and its separator
marginal becomes the upward message; during distribute, the downward
message is ``marg(parent belief) / upward message`` (a separator-sized
division), absorbed into the child belief in place.  After both passes
every belief equals the exact joint marginal of its clique's scope
times the probability of evidence -- identical, up to floating-point
association order, to the Factor-based reference path in
:mod:`repro.bayesian.junction`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bayesian.factor import Factor
from repro.errors import ZeroBeliefError
from repro.obs.metrics import get_metrics

__all__ = ["PropagationCounters", "PropagationSchedule", "PropagationEngine"]


class PropagationCounters:
    """Always-on work counters of one :class:`PropagationEngine`.

    Plain integer adds per message -- negligible next to the einsum they
    count -- so the engine can report its work (and benchmarks can emit
    a breakdown) without the global metrics registry being enabled.
    ``flops`` is the standard table-touch estimate: one unit per entry
    of each clique table marginalized or multiplied.
    """

    __slots__ = (
        "propagations",
        "messages_collect",
        "messages_distribute",
        "cliques_repropagated",
        "cliques_skipped",
        "zero_resurrections",
        "flops",
    )

    _FIELDS = __slots__

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self._FIELDS:
            setattr(self, field, 0)

    @property
    def messages(self) -> int:
        """Total directed messages computed (collect + distribute)."""
        return self.messages_collect + self.messages_distribute

    def as_dict(self) -> Dict[str, int]:
        out = {field: getattr(self, field) for field in self._FIELDS}
        out["messages"] = self.messages
        return out

    def add(self, other: "PropagationCounters") -> None:
        """Accumulate another engine's counters (segment aggregation)."""
        for field in self._FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))


class _Message:
    """Precompiled metadata and buffers for one directed message u -> v."""

    __slots__ = (
        "source",
        "target",
        "sep_vars",
        "source_axes",
        "keep_axes",
        "expand_shape",
        "values",
    )

    def __init__(
        self,
        source: int,
        target: int,
        sep_vars: Tuple[str, ...],
        source_order: Tuple[str, ...],
        target_order: Tuple[str, ...],
        sep_shape: Tuple[int, ...],
    ):
        self.source = source
        self.target = target
        self.sep_vars = sep_vars
        #: full axis list of the source clique (einsum integer form)
        self.source_axes = list(range(len(source_order)))
        #: axes of the source clique kept by the marginalization; both
        #: clique and separator orders are canonical (sorted), so the
        #: kept axes are increasing and the einsum output needs no
        #: transpose.
        self.keep_axes = [source_order.index(v) for v in sep_vars]
        #: reshape that broadcasts a separator table against the target
        #: clique without any transpose (again: canonical orders).
        sep_cards = dict(zip(sep_vars, sep_shape))
        self.expand_shape = tuple(sep_cards.get(v, 1) for v in target_order)
        self.values = np.empty(sep_shape)


class PropagationSchedule:
    """Fixed message order + axis metadata for one junction tree.

    Parameters
    ----------
    cliques:
        Clique scopes (frozensets of variable names).
    edges:
        Undirected tree edges as ``(u, v)`` clique-index pairs.
    cardinalities:
        State counts per variable.

    The schedule is immutable once built and is shared by every
    :class:`PropagationEngine` propagation over the same tree.
    """

    def __init__(
        self,
        cliques: Sequence[frozenset],
        edges: Iterable[Tuple[int, int]],
        cardinalities: Dict[str, int],
    ):
        self.n_cliques = len(cliques)
        #: canonical (sorted) variable order per clique
        self.orders: List[Tuple[str, ...]] = [tuple(sorted(c)) for c in cliques]
        self.shapes: List[Tuple[int, ...]] = [
            tuple(cardinalities[v] for v in order) for order in self.orders
        ]
        #: table entries per clique (FLOP estimates, memory accounting)
        self.sizes: List[int] = [int(np.prod(s)) if s else 1 for s in self.shapes]

        neighbors: List[List[int]] = [[] for _ in range(self.n_cliques)]
        for u, v in edges:
            neighbors[u].append(v)
            neighbors[v].append(u)
        for adj in neighbors:
            adj.sort()  # deterministic DFS regardless of edge insertion order

        #: DFS pre-order (node, parent) pairs, one sublist per tree
        #: component; collect walks it in reverse, distribute forward.
        self.components: List[List[Tuple[int, Optional[int]]]] = []
        #: children of each node under the rooted orientation
        self.children: List[List[int]] = [[] for _ in range(self.n_cliques)]
        self.parent: List[Optional[int]] = [None] * self.n_cliques
        self.roots: List[int] = []
        visited: Set[int] = set()
        for root in range(self.n_cliques):
            if root in visited:
                continue
            self.roots.append(root)
            order: List[Tuple[int, Optional[int]]] = []
            stack: List[Tuple[int, Optional[int]]] = [(root, None)]
            while stack:
                node, parent = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                order.append((node, parent))
                if parent is not None:
                    self.parent[node] = parent
                    self.children[parent].append(node)
                for neighbor in reversed(neighbors[node]):
                    if neighbor not in visited:
                        stack.append((neighbor, node))
            self.components.append(order)

        #: directed messages keyed by (source, target)
        self.messages: Dict[Tuple[int, int], _Message] = {}
        for component in self.components:
            for node, parent in component:
                if parent is None:
                    continue
                sep_vars = tuple(sorted(cliques[node] & cliques[parent]))
                sep_shape = tuple(cardinalities[v] for v in sep_vars)
                for src, dst in ((node, parent), (parent, node)):
                    self.messages[(src, dst)] = _Message(
                        src,
                        dst,
                        sep_vars,
                        self.orders[src],
                        self.orders[dst],
                        sep_shape,
                    )

        #: variable -> (clique index, axis) for batched marginal sweeps
        self.variable_axis: Dict[str, Tuple[int, int]] = {}
        for idx, order in enumerate(self.orders):
            for axis, var in enumerate(order):
                self.variable_axis.setdefault(var, (idx, axis))


class PropagationEngine:
    """Preallocated Hugin propagation with dirty-clique tracking.

    The engine caches, between propagations: the clique potentials
    (``psi``), every directed separator message, and every calibrated
    clique belief.  :meth:`set_potential` replaces one ``psi`` and marks
    its clique dirty; :meth:`propagate` then recomputes only what the
    change can reach.  With no dirty cliques, :meth:`propagate` is a
    no-op.
    """

    def __init__(self, schedule: PropagationSchedule):
        self.schedule = schedule
        n = schedule.n_cliques
        self._psi: List[Optional[np.ndarray]] = [None] * n
        self._beta: List[np.ndarray] = [np.empty(s) for s in schedule.shapes]
        #: scratch separator buffers, one per directed edge
        self._scratch: Dict[Tuple[int, int], np.ndarray] = {
            key: np.empty_like(msg.values) for key, msg in schedule.messages.items()
        }
        self._dirty: Set[int] = set(range(n))
        self._ever_propagated = False
        #: always-on work counters (cheap int adds; see PropagationCounters)
        self.counters = PropagationCounters()
        #: counter totals already mirrored into the global registry
        self._published: Dict[str, int] = {}
        #: bytes held by the preallocated belief/message/scratch buffers
        self.factor_bytes = (
            sum(beta.nbytes for beta in self._beta)
            + sum(msg.values.nbytes for msg in schedule.messages.values())
            + sum(buf.nbytes for buf in self._scratch.values())
        )
        #: Factor views over the belief buffers (stable identity; the
        #: arrays mutate in place across propagations)
        self._belief_factors: List[Factor] = [
            Factor._unsafe(order, beta)
            for order, beta in zip(schedule.orders, self._beta)
        ]

    # ------------------------------------------------------------------
    # Potential updates
    # ------------------------------------------------------------------

    def set_potential(self, idx: int, potential: Factor) -> None:
        """Install clique ``idx``'s potential and mark it dirty.

        ``potential`` must span exactly the clique's scope; any axis
        order is accepted and canonicalized here (a transpose view, no
        copy).
        """
        order = self.schedule.orders[idx]
        if potential.variables != order:
            potential = potential.permute(order)
        if potential.values.shape != self.schedule.shapes[idx]:
            raise ValueError(
                f"potential for clique {idx} has shape {potential.values.shape}, "
                f"expected {self.schedule.shapes[idx]}"
            )
        self._psi[idx] = potential.values
        self._dirty.add(idx)

    @property
    def dirty(self) -> Set[int]:
        return set(self._dirty)

    def mark_all_dirty(self) -> None:
        self._dirty = set(range(self.schedule.n_cliques))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(self) -> None:
        """Collect + distribute, touching only dirty-reachable messages."""
        if not self._dirty and self._ever_propagated:
            return
        schedule = self.schedule
        if any(psi is None for psi in self._psi):
            missing = [i for i, psi in enumerate(self._psi) if psi is None]
            raise RuntimeError(f"cliques {missing} have no potential set")
        dirty = (
            self._dirty
            if self._ever_propagated
            else set(range(schedule.n_cliques))
        )
        counters = self.counters

        # Which cliques rebuild during collect: a clique is up-dirty if
        # it is dirty itself or any child's upward message changed.
        up = [False] * schedule.n_cliques
        for component in schedule.components:
            for node, parent in reversed(component):
                if node in dirty:
                    up[node] = True
                if up[node] and parent is not None:
                    up[parent] = True
        repropagated = sum(up)
        counters.cliques_repropagated += repropagated
        counters.cliques_skipped += schedule.n_cliques - repropagated

        # Collect: rebuild partial beliefs bottom-up, refresh upward
        # messages.  Clean subtrees are skipped -- their cached messages
        # feed the rebuild of their up-dirty ancestors.
        for component in schedule.components:
            for node, parent in reversed(component):
                if not up[node]:
                    continue
                beta = self._beta[node]
                np.copyto(beta, self._psi[node])
                for child in schedule.children[node]:
                    message = schedule.messages[(child, node)]
                    np.multiply(
                        beta,
                        message.values.reshape(message.expand_shape),
                        out=beta,
                    )
                    counters.flops += schedule.sizes[node]
                if parent is not None:
                    message = schedule.messages[(node, parent)]
                    np.einsum(
                        beta,
                        message.source_axes,
                        message.keep_axes,
                        out=message.values,
                    )
                    counters.messages_collect += 1
                    counters.flops += schedule.sizes[node]

        # Distribute: parent beliefs are complete when visited in
        # pre-order.  A changed parent belief refreshes the downward
        # message (separator-sized division by the upward message, with
        # the 0/0 = 0 mask) and absorbs it into the child.  A clean
        # parent means the whole subtree below is untouched (up-dirt
        # always propagates to the root, so up[node] implies
        # changed[parent]) and is skipped.
        changed = [False] * schedule.n_cliques
        for component in schedule.components:
            for node, parent in component:
                if parent is None:
                    changed[node] = up[node]
                elif changed[parent]:
                    changed[node] = True
                    self._absorb_from_parent(node, parent, up[node])

        self._dirty.clear()
        self._ever_propagated = True
        counters.propagations += 1
        self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Mirror cumulative counters into the global registry, if on.

        Counters are always maintained locally; this just re-exports the
        totals after each propagation so reports see live numbers.  One
        guarded call per propagation -- nothing on the per-message path.
        """
        registry = get_metrics()
        if not registry.enabled:
            return
        counters = self.counters
        registry.counter("engine.propagations").inc(1)
        for name, field in (
            ("engine.messages", "messages"),
            ("engine.messages_collect", "messages_collect"),
            ("engine.messages_distribute", "messages_distribute"),
            ("engine.cliques_repropagated", "cliques_repropagated"),
            ("engine.cliques_skipped", "cliques_skipped"),
            ("engine.zero_resurrections", "zero_resurrections"),
            ("engine.flops", "flops"),
        ):
            total = getattr(counters, field)
            published = self._published.get(name, 0)
            registry.counter(name).inc(total - published)
            self._published[name] = total
        registry.gauge("engine.factor_bytes.peak").set_max(self.factor_bytes)

    def _absorb_from_parent(self, node: int, parent: int, rebuilt: bool) -> None:
        """Refresh the downward message parent -> node and absorb it."""
        schedule = self.schedule
        down = schedule.messages[(parent, node)]
        up_msg = schedule.messages[(node, parent)]
        counters = self.counters
        counters.messages_distribute += 1
        counters.flops += schedule.sizes[parent] + schedule.sizes[node]

        # marg(parent belief) onto the separator, then divide by the
        # upward message.  Wherever the upward message is zero the
        # parent belief's slice is zero too (it contains that message
        # as a factor), so the masked division's zero-fill is exact.
        new_sep = self._scratch[(parent, node)]
        np.einsum(
            self._beta[parent],
            down.source_axes,
            down.keep_axes,
            out=new_sep,
        )
        ratio = self._scratch[(node, parent)]
        ratio.fill(0.0)
        np.divide(new_sep, up_msg.values, out=ratio, where=up_msg.values != 0)

        beta = self._beta[node]
        if rebuilt:
            # Partial belief from collect lacks the parent message.
            np.multiply(beta, ratio.reshape(down.expand_shape), out=beta)
            down.values[...] = ratio
            return
        old = down.values
        if ((old == 0) & (ratio != 0)).any():
            # A zero separator entry came back to life (e.g. an input
            # probability moved off 0): the belief's zero slice cannot
            # be rescaled, so rebuild it from psi and cached messages.
            counters.zero_resurrections += 1
            down.values[...] = ratio
            np.copyto(beta, self._psi[node])
            for child in schedule.children[node]:
                message = schedule.messages[(child, node)]
                np.multiply(
                    beta, message.values.reshape(message.expand_shape), out=beta
                )
            np.multiply(beta, ratio.reshape(down.expand_shape), out=beta)
            return
        # Standard Hugin absorption: multiply by new/old on the
        # separator (0/0 = 0; zero slices of the belief stay zero).
        quotient = new_sep  # reuse the scratch buffer; new_sep is consumed
        quotient.fill(0.0)
        np.divide(ratio, old, out=quotient, where=old != 0)
        np.multiply(beta, quotient.reshape(down.expand_shape), out=beta)
        down.values[...] = ratio

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def belief_factors(self) -> List[Factor]:
        """Calibrated clique beliefs as factors (views, not copies)."""
        return list(self._belief_factors)

    def separator_factor(self, u: int, v: int) -> Factor:
        """Final separator marginal over edge ``{u, v}`` (fresh array)."""
        up_msg = self.schedule.messages[(u, v)]
        down = self.schedule.messages[(v, u)]
        return Factor._unsafe(up_msg.sep_vars, up_msg.values * down.values)

    def clique_total(self, idx: int) -> float:
        return float(self._beta[idx].sum())

    def marginals(self, variables: Sequence[str]) -> Dict[str, np.ndarray]:
        """Batched single-variable marginals.

        Variables are grouped by home clique; each clique's belief is
        normalized once and swept with one einsum per variable, instead
        of one full ``marginal_onto`` + ``normalize`` pair per variable.
        """
        by_clique: Dict[int, List[str]] = {}
        for var in variables:
            location = self.schedule.variable_axis.get(var)
            if location is None:
                raise KeyError(f"unknown variable {var!r}")
            by_clique.setdefault(location[0], []).append(var)
        out: Dict[str, np.ndarray] = {}
        for idx, group in by_clique.items():
            beta = self._beta[idx]
            total = beta.sum()
            if total <= 0:
                raise ZeroBeliefError("cannot normalize a zero belief")
            axes = list(range(beta.ndim))
            for var in group:
                axis = self.schedule.variable_axis[var][1]
                out[var] = np.einsum(beta, axes, [axis]) / total
        return out
