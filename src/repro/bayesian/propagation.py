"""Compiled propagation schedules and in-place Hugin kernels.

The paper's headline split is *compile once, re-propagate in
milliseconds*: junction-tree construction (moralization, triangulation,
spanning tree) is paid once per circuit, while every new set of input
statistics only re-runs message passing.  This module makes the second
half of that bargain real:

- :class:`PropagationSchedule` is computed once per junction tree.  It
  fixes the collect/distribute message order, canonicalizes every
  clique's variable order, and precomputes, per directed message, the
  einsum axis lists and broadcast shapes that the naive
  :meth:`Factor._expand_to` path re-derives on every single message.
  The axis metadata comes in two flavors -- plain and with a leading
  batch label -- so one schedule serves both single-query and batched
  engines.

- :class:`PropagationEngine` owns preallocated clique belief buffers
  and separator message buffers and runs the Hugin update with in-place
  numpy kernels: ``np.einsum(..., out=)`` marginalizes into the
  separator buffers, ``np.multiply(..., out=)`` absorbs ratios, and the
  0/0 = 0 division mask is applied with ``np.divide(..., where=)`` on
  separator-sized arrays only (never on clique tables).

- **Batched propagation**: an engine built with ``batch_size=K`` grows
  every belief/message buffer by a leading ``K`` axis and propagates K
  independent input-statistics scenarios in one vectorized
  collect/distribute pass.  Clique potentials may be shared across the
  batch (gate CPDs -- a plain ``(*clique_shape)`` array broadcast over
  the batch axis) or per-scenario (:meth:`set_potential_batch` with a
  ``(K, *clique_shape)`` stack).  Dirty tracking stays shared across
  the batch: only input-clique potentials differ per scenario, so a
  sweep repropagates exactly the input-reachable subtree, batched.

- **Dirty-clique repropagation**: callers mark cliques whose potentials
  changed (:meth:`PropagationEngine.set_potential`); the next
  :meth:`~PropagationEngine.propagate` recomputes only the upward
  messages whose source subtree contains a dirty clique and the
  downward messages their changes invalidate.  Subtrees the update
  cannot reach are skipped entirely.  Setting a potential whose values
  are array-equal to the current one is a no-op (the clique stays
  clean).

The message algebra is the classic Hugin scheme written with cached
directed messages: during collect, each clique's *partial* belief
``psi * prod(child messages)`` is built bottom-up and its separator
marginal becomes the upward message; during distribute, the downward
message is ``marg(parent belief) / upward message`` (a separator-sized
division), absorbed into the child belief in place.  After both passes
every belief equals the exact joint marginal of its clique's scope
times the probability of evidence -- identical, up to floating-point
association order, to the Factor-based reference path in
:mod:`repro.bayesian.junction`.

Every batched kernel is elementwise or a reduction over non-batch axes,
so batch element ``k`` of a batched propagation goes through exactly
the same arithmetic, in the same order, as a single-query propagation
over scenario ``k``'s potentials -- the results agree *bitwise*, not
just to tolerance, whenever the two runs take the same dirty paths
(e.g. both are first propagations, or every sweep updates the same
cliques).

- **Determinism-aware sparse kernels**: gate CPDs are 0/1 indicator
  tables, so most entries of a wide clique potential are *structurally*
  impossible under every input model.  Given per-clique feasibility
  masks (:class:`PropagationSchedule` ``clique_masks``), the schedule
  runs one boolean collect/distribute pass to compute each clique's and
  separator's exact feasible support, then compiles *packed* kernels
  for cliques below a density threshold: beliefs live in ``(nnz,)`` /
  ``(K, nnz)`` buffers, messages absorb through precomputed gather
  indices, and separator marginals use a grouped ``np.add.reduceat``
  over index arrays instead of a dense einsum.  Separator buffers stay
  dense (they are small), so sparse and dense cliques mix freely in one
  tree.  The packed kernels keep the batched/single bitwise-parity
  property above -- every gather is elementwise and every ``reduceat``
  segment sums left-to-right per batch row -- but sparse results differ
  from *dense* results in the last few ulps (different association
  order), hence the ``<= 1e-12`` sparse-vs-dense verification bar.
"""

from __future__ import annotations

import functools
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bayesian.factor import Factor
from repro.errors import ConcurrentPropagationError, ZeroBeliefError
from repro.obs.metrics import get_metrics

__all__ = ["PropagationCounters", "PropagationSchedule", "PropagationEngine"]


def _exclusive(method):
    """Reentrancy tripwire for the buffer-mutating engine entry points.

    The engine's belief/message buffers are preallocated and updated in
    place, so two threads inside one engine silently corrupt each
    other's results.  This guard is *detection, not synchronization*: a
    second thread entering while another holds the guard gets an
    immediate typed :class:`ConcurrentPropagationError` instead of
    blocking (blocking would just serialize the corruption-free case
    while hiding the sharing bug).  Callers that want concurrency give
    each thread its own engine -- see ``repro.serve``'s per-model
    engine pool.  One uncontended ``Lock.acquire`` per *call* (not per
    message), so the single-thread cost is noise.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if not self._guard.acquire(blocking=False):
            raise ConcurrentPropagationError(
                f"concurrent PropagationEngine.{method.__name__}: another "
                "thread is inside this engine and the preallocated "
                "belief/message buffers are mutated in place; use one "
                "engine per thread (e.g. repro.serve's engine pool)"
            )
        try:
            return method(self, *args, **kwargs)
        finally:
            self._guard.release()

    return wrapper


def _reduction_plan(shape: Tuple[int, ...], keep_axes: Sequence[int]):
    """Compile one sum-reduction ``shape -> keep_axes`` into a kernel plan.

    Adjacent axes with the same fate (kept / summed) are merged into
    single axes -- a pure reshape view on the C-contiguous engine
    buffers -- and the merged pattern picks the cheapest kernel:

    - ``("copy",)``                       nothing summed;
    - ``("dot", d, ones)``                one trailing summed run: a
      BLAS row-dot ``view(-1, d) @ ones``;
    - ``("vecmat", d, r, ones)``          one leading summed run:
      ``ones @ view(-1, d, r)``;
    - ``("einsum", mshape, in, out, oshape)``  the general interleaved
      case, einsum over the merged (coarser) axes.

    Every kernel reduces batch slice ``k`` of a ``(K, *shape)`` buffer
    with exactly the same arithmetic as an unbatched ``(*shape)``
    reduction (the leading batch axis is always kept, so it merges into
    -- or stacks ahead of -- the leading kept run), which is what keeps
    batched and single-query propagation bitwise-identical.  Plans are
    computed once per schedule and shared by both engine modes.
    """
    keep = set(keep_axes)
    runs: List[List[int]] = []  # [is_kept, merged size]
    for axis, size in enumerate(shape):
        flag = 1 if axis in keep else 0
        if runs and runs[-1][0] == flag:
            runs[-1][1] *= size
        else:
            runs.append([flag, size])
    drops = [i for i, (flag, _) in enumerate(runs) if not flag]
    if not drops:
        return ("copy",)
    if len(drops) == 1 and drops[0] == len(runs) - 1:
        d = runs[-1][1]
        return ("dot", d, np.ones(d))
    if len(drops) == 1 and drops[0] == 0:
        d = runs[0][1]
        r = 1
        for _, size in runs[1:]:
            r *= size
        return ("vecmat", d, r, np.ones(d))
    mshape = tuple(size for _, size in runs)
    batch_label = len(mshape)
    in_axes = [batch_label] + list(range(batch_label))
    out_axes = [batch_label] + [i for i, (flag, _) in enumerate(runs) if flag]
    out_shape = tuple(size for flag, size in runs if flag)
    return ("einsum", mshape, in_axes, out_axes, out_shape)


def _reduce_sum(src: np.ndarray, plan, out: np.ndarray) -> None:
    """Run a :func:`_reduction_plan` kernel: sum ``src`` into ``out``.

    Batch-agnostic: ``src``/``out`` may carry a leading batch axis or
    not; the ``-1`` reshape folds it into the row dimension (or a
    length-1 stack), so slice ``k`` goes through the identical BLAS or
    einsum call a single-query engine issues.  Both arrays must be
    C-contiguous (all engine buffers are).
    """
    kind = plan[0]
    if kind == "dot":
        np.dot(src.reshape(-1, plan[1]), plan[2], out=out.reshape(-1))
    elif kind == "vecmat":
        np.matmul(
            plan[3], src.reshape(-1, plan[1], plan[2]), out=out.reshape(-1, plan[2])
        )
    elif kind == "einsum":
        _, mshape, in_axes, out_axes, out_shape = plan
        np.einsum(
            src.reshape((-1,) + mshape),
            in_axes,
            out_axes,
            out=out.reshape((-1,) + out_shape),
        )
    else:  # "copy": separator spans the whole clique
        np.copyto(out, src)


def _cast_plan(plan, dtype):
    """Re-type the constant vectors of a reduction plan.

    ``np.dot`` / ``np.matmul`` with an ``out=`` whose dtype differs from
    the product's would raise, so a non-float64 engine keeps
    dtype-matched copies of the shared plans' ``ones`` vectors.
    """
    if plan[0] == "dot":
        return ("dot", plan[1], plan[2].astype(dtype))
    if plan[0] == "vecmat":
        return ("vecmat", plan[1], plan[2], plan[3].astype(dtype))
    return plan


def _sep_flat_indices(
    flat_idx: np.ndarray,
    shape: Tuple[int, ...],
    keep_axes: Sequence[int],
    out_shape: Tuple[int, ...],
) -> np.ndarray:
    """Flat index on ``keep_axes`` of each packed clique entry."""
    coords = np.unravel_index(flat_idx, shape)
    return np.ravel_multi_index(tuple(coords[a] for a in keep_axes), out_shape)


def _sparse_reduce_plan(
    flat_idx: np.ndarray,
    shape: Tuple[int, ...],
    keep_axes: Sequence[int],
    out_shape: Tuple[int, ...],
):
    """Compile one packed-entries -> dense-target sum reduction.

    Returns ``(perm, seg_starts, out_index, covers_all)``: gather the
    packed entries with ``perm`` (``None`` when they are already in
    target order), sum each run of equal target indices with
    ``np.add.reduceat`` at ``seg_starts``, and scatter the segment sums
    to ``out_index``; ``covers_all`` means every target entry receives a
    segment, so the zero-fill can be skipped.
    """
    target_idx = _sep_flat_indices(flat_idx, shape, keep_axes, out_shape)
    perm = np.argsort(target_idx, kind="stable")
    if np.array_equal(perm, np.arange(perm.size)):
        perm, sorted_idx = None, target_idx
    else:
        sorted_idx = target_idx[perm]
    out_index, seg_starts = np.unique(sorted_idx, return_index=True)
    covers_all = out_index.size == int(np.prod(out_shape))
    return (perm, seg_starts, out_index, covers_all)


def _sparse_reduce(
    src: np.ndarray, plan, out: np.ndarray, scratch: Optional[np.ndarray] = None
) -> None:
    """Sum a packed ``lead + (nnz,)`` buffer onto a dense target.

    ``plan`` comes from :func:`_sparse_reduce_plan`.  Infeasible target
    entries are zero-filled (they receive no mass by construction).
    Per-segment ``reduceat`` sums are sequential left-to-right per batch
    row, so batch row ``k`` goes through exactly the arithmetic of an
    unbatched reduce -- the engine's batched/single bitwise parity
    survives the sparse path.  ``scratch`` (a ``lead + (nnz,)`` buffer)
    avoids the gather temporary when a permutation is needed.
    """
    perm, seg_starts, out_index, covers_all = plan
    if perm is not None:
        if scratch is None:
            src = src[..., perm]
        else:
            np.take(src, perm, axis=-1, out=scratch)
            src = scratch
    segments = np.add.reduceat(src, seg_starts, axis=-1)
    flat = out.reshape(src.shape[:-1] + (-1,))
    if covers_all:
        np.copyto(flat, segments)
    else:
        flat.fill(0.0)
        flat[..., out_index] = segments


class _SparseClique:
    """Packed-entry index plans for one sparse clique.

    The packed order is the clique's feasible entries sorted by their
    parent-edge separator index (plain ascending flat order at a root),
    so the hottest reduction -- the upward message -- needs no gather
    permutation.  ``gathers[j]`` maps each packed entry to its flat
    separator index toward neighbor ``j`` (the message-absorb gather);
    ``reduce_plans[j]`` is the outgoing reduce plan toward ``j``.
    """

    __slots__ = ("flat_idx", "nnz", "gathers", "reduce_plans")

    def __init__(self, idx: int, mask: np.ndarray, schedule: "PropagationSchedule"):
        shape = schedule.shapes[idx]
        flat = np.flatnonzero(mask)
        parent = schedule.parent[idx]
        if parent is not None:
            msg = schedule.messages[(idx, parent)]
            sep_idx = _sep_flat_indices(flat, shape, msg.keep_axes, msg.sep_shape)
            flat = flat[np.argsort(sep_idx, kind="stable")]
        self.flat_idx = flat
        self.nnz = int(flat.size)
        self.gathers: Dict[int, np.ndarray] = {}
        self.reduce_plans: Dict[int, tuple] = {}
        neighbors = ([parent] if parent is not None else []) + list(
            schedule.children[idx]
        )
        for j in neighbors:
            msg = schedule.messages[(idx, j)]
            self.gathers[j] = _sep_flat_indices(
                flat, shape, msg.keep_axes, msg.sep_shape
            )
            self.reduce_plans[j] = _sparse_reduce_plan(
                flat, shape, msg.keep_axes, msg.sep_shape
            )


class PropagationCounters:
    """Always-on work counters of one :class:`PropagationEngine`.

    Plain integer adds per message -- negligible next to the einsum they
    count -- so the engine can report its work (and benchmarks can emit
    a breakdown) without the global metrics registry being enabled.
    ``flops`` is the standard table-touch estimate: one unit per entry
    of each clique table marginalized or multiplied, scaled by the
    batch size for batched engines.  ``scenarios_propagated`` counts
    one per propagation in single-query mode and ``K`` per batched
    propagation; ``potentials_unchanged`` counts ``set_potential``
    calls skipped because the new values equalled the installed ones.
    ``chain_steps``/``chain_potentials_updated`` count delta-sweep
    warm-start steps (scenarios chained on a calibrated tree) and the
    changed potentials those steps actually installed.
    """

    __slots__ = (
        "propagations",
        "messages_collect",
        "messages_distribute",
        "cliques_repropagated",
        "cliques_skipped",
        "zero_resurrections",
        "flops",
        "scenarios_propagated",
        "potentials_unchanged",
        "chain_steps",
        "chain_potentials_updated",
    )

    _FIELDS = __slots__

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self._FIELDS:
            setattr(self, field, 0)

    @property
    def messages(self) -> int:
        """Total directed messages computed (collect + distribute)."""
        return self.messages_collect + self.messages_distribute

    def as_dict(self) -> Dict[str, int]:
        out = {field: getattr(self, field) for field in self._FIELDS}
        out["messages"] = self.messages
        return out

    def add(self, other: "PropagationCounters") -> None:
        """Accumulate another engine's counters (segment aggregation)."""
        for field in self._FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))


class _Message:
    """Precompiled metadata for one directed message u -> v.

    Holds no buffers: message storage lives on the engine so one
    immutable schedule can be shared by a single-query engine and any
    number of batched engines over the same tree.
    """

    __slots__ = (
        "source",
        "target",
        "sep_vars",
        "sep_shape",
        "source_axes",
        "keep_axes",
        "plan",
        "expand_shape",
    )

    def __init__(
        self,
        source: int,
        target: int,
        sep_vars: Tuple[str, ...],
        source_order: Tuple[str, ...],
        target_order: Tuple[str, ...],
        source_shape: Tuple[int, ...],
        sep_shape: Tuple[int, ...],
    ):
        self.source = source
        self.target = target
        self.sep_vars = sep_vars
        self.sep_shape = sep_shape
        #: full axis list of the source clique (einsum integer form)
        self.source_axes = list(range(len(source_order)))
        #: axes of the source clique kept by the marginalization; both
        #: clique and separator orders are canonical (sorted), so the
        #: kept axes are increasing and the reduction output needs no
        #: transpose.
        self.keep_axes = [source_order.index(v) for v in sep_vars]
        #: compiled reduction kernel (merged axes, BLAS where the
        #: pattern allows); shared by single-query and batched engines.
        self.plan = _reduction_plan(source_shape, self.keep_axes)
        #: reshape that broadcasts a separator table against the target
        #: clique without any transpose (again: canonical orders).
        sep_cards = dict(zip(sep_vars, sep_shape))
        self.expand_shape = tuple(sep_cards.get(v, 1) for v in target_order)


class PropagationSchedule:
    """Fixed message order + axis metadata for one junction tree.

    Parameters
    ----------
    cliques:
        Clique scopes (frozensets of variable names).
    edges:
        Undirected tree edges as ``(u, v)`` clique-index pairs.
    cardinalities:
        State counts per variable.
    clique_masks:
        Optional per-clique 0/1 feasibility masks in the clique's
        canonical (sorted) variable order (``None`` entries mean full
        support).  Typically the AND of the deterministic gate CPDs
        assigned to each clique; non-deterministic CPDs must contribute
        all-ones so the analysis stays sound under *every* input model.
    kernel:
        ``"dense"`` (default) ignores the masks for kernel selection;
        ``"auto"`` packs cliques whose propagated support density is at
        most ``density_threshold`` (and whose table has at least
        ``min_sparse_states`` entries -- tiny tables are faster dense);
        ``"sparse"`` packs every clique with any infeasible entry.
    density_threshold / min_sparse_states:
        The ``"auto"`` selection knobs.

    The schedule is immutable once built and is shared by every
    :class:`PropagationEngine` propagation over the same tree,
    single-query and batched alike.  Support analysis runs once here,
    so engines of any batch size (and pickled artifacts) reuse it.
    """

    def __init__(
        self,
        cliques: Sequence[frozenset],
        edges: Iterable[Tuple[int, int]],
        cardinalities: Dict[str, int],
        clique_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
        kernel: str = "dense",
        density_threshold: float = 0.25,
        min_sparse_states: int = 256,
    ):
        if kernel not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown kernel mode {kernel!r}")
        self.n_cliques = len(cliques)
        #: canonical (sorted) variable order per clique
        self.orders: List[Tuple[str, ...]] = [tuple(sorted(c)) for c in cliques]
        self.shapes: List[Tuple[int, ...]] = [
            tuple(cardinalities[v] for v in order) for order in self.orders
        ]
        #: table entries per clique (FLOP estimates, memory accounting)
        self.sizes: List[int] = [int(np.prod(s)) if s else 1 for s in self.shapes]

        neighbors: List[List[int]] = [[] for _ in range(self.n_cliques)]
        for u, v in edges:
            neighbors[u].append(v)
            neighbors[v].append(u)
        for adj in neighbors:
            adj.sort()  # deterministic DFS regardless of edge insertion order

        #: DFS pre-order (node, parent) pairs, one sublist per tree
        #: component; collect walks it in reverse, distribute forward.
        self.components: List[List[Tuple[int, Optional[int]]]] = []
        #: children of each node under the rooted orientation
        self.children: List[List[int]] = [[] for _ in range(self.n_cliques)]
        self.parent: List[Optional[int]] = [None] * self.n_cliques
        self.roots: List[int] = []
        visited: Set[int] = set()
        for root in range(self.n_cliques):
            if root in visited:
                continue
            self.roots.append(root)
            order: List[Tuple[int, Optional[int]]] = []
            stack: List[Tuple[int, Optional[int]]] = [(root, None)]
            while stack:
                node, parent = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                order.append((node, parent))
                if parent is not None:
                    self.parent[node] = parent
                    self.children[parent].append(node)
                for neighbor in reversed(neighbors[node]):
                    if neighbor not in visited:
                        stack.append((neighbor, node))
            self.components.append(order)

        #: directed messages keyed by (source, target)
        self.messages: Dict[Tuple[int, int], _Message] = {}
        for component in self.components:
            for node, parent in component:
                if parent is None:
                    continue
                sep_vars = tuple(sorted(cliques[node] & cliques[parent]))
                sep_shape = tuple(cardinalities[v] for v in sep_vars)
                for src, dst in ((node, parent), (parent, node)):
                    self.messages[(src, dst)] = _Message(
                        src,
                        dst,
                        sep_vars,
                        self.orders[src],
                        self.orders[dst],
                        self.shapes[src],
                        sep_shape,
                    )

        #: variable -> (clique index, axis) for batched marginal sweeps
        self.variable_axis: Dict[str, Tuple[int, int]] = {}
        for idx, order in enumerate(self.orders):
            for axis, var in enumerate(order):
                self.variable_axis.setdefault(var, (idx, axis))

        #: resolved kernel mode this schedule was compiled for
        self.kernel = kernel
        #: per-clique feasible-state masks (``None`` = full support)
        self.supports: List[Optional[np.ndarray]] = [None] * self.n_cliques
        #: feasible entries per clique (== ``sizes`` where support is full)
        self.support_nnz: List[int] = list(self.sizes)
        #: per-clique kernel choice; ``True`` cliques use packed buffers
        self.sparse: List[bool] = [False] * self.n_cliques
        #: compiled index plans for the sparse cliques
        self.sparse_cliques: Dict[int, _SparseClique] = {}
        #: entries each kernel actually touches per clique pass (``nnz``
        #: when sparse) -- the unit of the engine's FLOP estimates
        self.work_sizes: List[int] = list(self.sizes)
        #: feasible separator entries per directed tree edge (diagnostics)
        self.sep_support_nnz: Dict[Tuple[int, int], int] = {}
        if (
            kernel != "dense"
            and clique_masks is not None
            and any(mask is not None for mask in clique_masks)
        ):
            self._analyze_support(
                clique_masks, kernel, density_threshold, min_sparse_states
            )

    def _analyze_support(
        self,
        clique_masks: Sequence[Optional[np.ndarray]],
        kernel: str,
        density_threshold: float,
        min_sparse_states: int,
    ) -> None:
        """Propagate feasibility masks and pick per-clique kernels.

        One boolean collect/distribute pass over the message schedule: a
        clique's *partial* mask is its CPD mask ANDed with every child's
        upward mask (ANY-reduced onto the separator), and its final mask
        additionally ANDs the ANY-reduce of the parent's final mask.
        The result is exact for Hugin propagation: wherever a final mask
        is 0, the calibrated belief entry is structurally 0 under every
        assignment of the unmasked (input) potentials, because an
        upward-message zero forces the matching parent-belief slice to
        zero and vice versa.
        """

        def any_reduce(mask: np.ndarray, keep_axes: Sequence[int]) -> np.ndarray:
            axes = tuple(a for a in range(mask.ndim) if a not in keep_axes)
            return mask.any(axis=axes) if axes else mask

        n = self.n_cliques
        psi = [
            np.ones(self.shapes[i], dtype=bool)
            if clique_masks[i] is None
            else np.asarray(clique_masks[i], dtype=bool)
            for i in range(n)
        ]
        partial: List[Optional[np.ndarray]] = [None] * n
        up: Dict[Tuple[int, int], np.ndarray] = {}
        for component in self.components:
            for node, parent in reversed(component):
                mask = psi[node]
                for child in self.children[node]:
                    msg = self.messages[(child, node)]
                    mask = mask & up[(child, node)].reshape(msg.expand_shape)
                partial[node] = mask
                if parent is not None:
                    msg = self.messages[(node, parent)]
                    up[(node, parent)] = any_reduce(mask, msg.keep_axes)
        final: List[Optional[np.ndarray]] = [None] * n
        for component in self.components:
            for node, parent in component:
                if parent is None:
                    final[node] = partial[node]
                    continue
                msg = self.messages[(parent, node)]
                down = any_reduce(final[parent], msg.keep_axes)
                final[node] = partial[node] & down.reshape(msg.expand_shape)
                sep = down & up[(node, parent)]
                sep_nnz = int(np.count_nonzero(sep))
                self.sep_support_nnz[(parent, node)] = sep_nnz
                self.sep_support_nnz[(node, parent)] = sep_nnz

        for idx in range(n):
            mask = final[idx]
            nnz = int(np.count_nonzero(mask))
            self.support_nnz[idx] = nnz
            size = self.sizes[idx]
            if nnz >= size or nnz == 0:
                # Full support -- or a degenerate, everywhere-infeasible
                # clique (contradictory determinism): stay dense.
                continue
            self.supports[idx] = mask
            if kernel == "sparse":
                pick = True
            else:
                pick = (
                    nnz / size <= density_threshold
                    and size >= min_sparse_states
                )
            if pick:
                self.sparse[idx] = True
                self.work_sizes[idx] = nnz
                self.sparse_cliques[idx] = _SparseClique(idx, mask, self)


class PropagationEngine:
    """Preallocated Hugin propagation with dirty-clique tracking.

    The engine caches, between propagations: the clique potentials
    (``psi``), every directed separator message, and every calibrated
    clique belief.  :meth:`set_potential` replaces one ``psi`` and marks
    its clique dirty; :meth:`propagate` then recomputes only what the
    change can reach.  With no dirty cliques, :meth:`propagate` is a
    no-op.

    Parameters
    ----------
    schedule:
        The shared, immutable :class:`PropagationSchedule`.
    batch_size:
        ``None`` (default) for the classic single-query engine.  An
        integer ``K >= 1`` grows every belief and message buffer by a
        leading batch axis of length ``K`` and propagates K scenarios
        per :meth:`propagate` call.  In batched mode potentials may be
        shared across the batch (:meth:`set_potential`, broadcast) or
        per-scenario (:meth:`set_potential_batch`), and
        :meth:`marginals` returns ``(K, card)`` arrays.
    dtype:
        Buffer dtype, ``float64`` (default) or ``float32``.  Float32 is
        an opt-in *batch-axis* mode -- it halves the ``K x`` buffer
        footprint and speeds memory-bound sweeps at a documented
        ~``1e-6`` relative tolerance -- and therefore requires a batched
        engine; single-query engines stay float64.  Shared potentials
        installed via :meth:`set_potential` remain float64 (ufunc
        ``out=`` casting handles the mixed multiply), while per-scenario
        stacks are cast on install.

    Cliques the schedule compiled as sparse keep their beliefs in
    packed ``lead + (nnz,)`` buffers; separator messages stay dense.
    A single-query engine additionally keeps a dense zero-padded mirror
    of each packed belief (scattered after every propagation) so
    :meth:`belief_factors` and the junction tree's Factor surface are
    unchanged; a batched engine skips the mirrors entirely, which is
    where the ``K x`` memory saving comes from.
    """

    def __init__(
        self,
        schedule: PropagationSchedule,
        batch_size: Optional[int] = None,
        dtype=np.float64,
    ):
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported engine dtype {dtype}")
        if dtype != np.float64 and batch_size is None:
            raise ValueError(
                "dtype='float32' is a batch-axis mode; single-query engines "
                "are always float64"
            )
        self.schedule = schedule
        self.batch_size = batch_size
        self.dtype = dtype
        lead: Tuple[int, ...] = () if batch_size is None else (int(batch_size),)
        n = schedule.n_cliques
        packed = schedule.sparse_cliques
        self._psi: List[Optional[np.ndarray]] = [None] * n
        self._beta: List[np.ndarray] = [
            np.empty(
                lead + ((packed[i].nnz,) if i in packed else schedule.shapes[i]),
                dtype=dtype,
            )
            for i in range(n)
        ]
        #: message buffers and scratch separator buffers, per directed edge
        self._msg: Dict[Tuple[int, int], np.ndarray] = {
            key: np.empty(lead + msg.sep_shape, dtype=dtype)
            for key, msg in schedule.messages.items()
        }
        self._scratch: Dict[Tuple[int, int], np.ndarray] = {
            key: np.empty(lead + msg.sep_shape, dtype=dtype)
            for key, msg in schedule.messages.items()
        }
        #: packed gather scratch, one per sparse clique
        self._sp_scratch: Dict[int, np.ndarray] = {
            i: np.empty(lead + (sp.nnz,), dtype=dtype) for i, sp in packed.items()
        }
        #: dense zero-padded mirrors of packed beliefs (single-query
        #: mode only); out-of-support entries are written exactly once,
        #: here, and stay zero forever.
        self._dense_beta: Dict[int, np.ndarray] = (
            {i: np.zeros(schedule.shapes[i]) for i in packed}
            if batch_size is None
            else {}
        )
        #: per-edge reduction kernels (shared, batch-agnostic) and
        #: broadcast shapes for this mode
        self._plans = {k: m.plan for k, m in schedule.messages.items()}
        if dtype != np.float64:
            self._plans = {k: _cast_plan(p, dtype) for k, p in self._plans.items()}
        self._expand = {
            k: lead + m.expand_shape for k, m in schedule.messages.items()
        }
        #: lazily compiled reduction plans for marginal sweeps, keyed by
        #: (clique index, kept axes)
        self._marginal_plans: Dict[Tuple[int, Tuple[int, ...]], tuple] = {}
        self._dirty: Set[int] = set(range(n))
        self._ever_propagated = False
        #: reentrancy tripwire (see :func:`_exclusive`); never held
        #: across calls, so pickling drops and recreates it.
        self._guard = threading.Lock()
        #: always-on work counters (cheap int adds; see PropagationCounters)
        self.counters = PropagationCounters()
        #: counter totals already mirrored into the global registry
        self._published: Dict[str, int] = {}
        #: bytes held by the preallocated belief/message/scratch buffers
        #: (including packed scratch and dense mirrors, so the reported
        #: footprint matches what is actually allocated)
        self.factor_bytes = (
            sum(beta.nbytes for beta in self._beta)
            + sum(buf.nbytes for buf in self._msg.values())
            + sum(buf.nbytes for buf in self._scratch.values())
            + sum(buf.nbytes for buf in self._sp_scratch.values())
            + sum(buf.nbytes for buf in self._dense_beta.values())
        )
        #: Factor views over the belief buffers (stable identity; the
        #: arrays mutate in place across propagations).  Single-query
        #: mode only: a batched belief is not a factor over the clique.
        #: Sparse cliques expose their dense mirrors.
        self._belief_factors: List[Factor] = (
            [
                Factor._unsafe(order, self._dense_beta.get(i, beta))
                for i, (order, beta) in enumerate(
                    zip(schedule.orders, self._beta)
                )
            ]
            if batch_size is None
            else []
        )

    def __getstate__(self):
        # Locks do not pickle; the guard is never held across calls, so
        # dropping it here and recreating it on load is exact.
        state = dict(self.__dict__)
        del state["_guard"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._guard = threading.Lock()

    # ------------------------------------------------------------------
    # Potential updates
    # ------------------------------------------------------------------

    @_exclusive
    def set_potential(self, idx: int, potential: Factor) -> None:
        """Install clique ``idx``'s potential and mark it dirty.

        ``potential`` must span exactly the clique's scope; any axis
        order is accepted and canonicalized here (a transpose view, no
        copy).  In batched mode the table is shared by every batch
        element (it broadcasts over the batch axis) -- use
        :meth:`set_potential_batch` for per-scenario tables.

        Setting values array-equal to the currently installed potential
        is a no-op: the clique is left clean so sweeps with repeated
        scenarios skip the unreached subtree.  Callers must therefore
        never mutate an installed table in place.
        """
        order = self.schedule.orders[idx]
        if potential.variables != order:
            potential = potential.permute(order)
        if potential.values.shape != self.schedule.shapes[idx]:
            raise ValueError(
                f"potential for clique {idx} has shape {potential.values.shape}, "
                f"expected {self.schedule.shapes[idx]}"
            )
        values = potential.values
        sp = self.schedule.sparse_cliques.get(idx)
        if sp is not None:
            # Packing keeps only the *final* (calibrated) support.  An
            # initial potential may carry mass outside it -- entries the
            # message products annihilate -- and dropping that mass here
            # is exact: such entries only ever feed separator indices
            # whose support is empty, which in turn only touch other
            # out-of-support entries.  Soundness against *changed*
            # deterministic CPDs is enforced upstream
            # (JunctionTree.update_cpds re-checks recorded supports).
            values = values.reshape(-1)[sp.flat_idx]
        self._install_psi(idx, values)

    @_exclusive
    def set_potential_batch(self, idx: int, values: np.ndarray) -> None:
        """Install per-scenario potentials for clique ``idx``.

        ``values`` must be a ``(K, *clique_shape)`` stack in the
        clique's canonical (sorted) variable order; scenario ``k``'s
        table is ``values[k]``.  Only valid on a batched engine.  The
        same skip-if-unchanged rule as :meth:`set_potential` applies.
        """
        if self.batch_size is None:
            raise RuntimeError("set_potential_batch requires a batched engine")
        values = np.asarray(values, dtype=self.dtype)
        expected = (self.batch_size,) + self.schedule.shapes[idx]
        if values.shape != expected:
            raise ValueError(
                f"batched potential for clique {idx} has shape {values.shape}, "
                f"expected {expected}"
            )
        sp = self.schedule.sparse_cliques.get(idx)
        if sp is not None:
            # Same silent out-of-support drop as set_potential (exact;
            # see the comment there).
            values = values.reshape(self.batch_size, -1)[:, sp.flat_idx]
        self._install_psi(idx, values)

    def _install_psi(self, idx: int, values: np.ndarray) -> None:
        old = self._psi[idx]
        if old is not None and old.shape == values.shape and np.array_equal(old, values):
            self.counters.potentials_unchanged += 1
            return
        self._psi[idx] = values
        self._dirty.add(idx)

    @property
    def dirty(self) -> Set[int]:
        return set(self._dirty)

    def mark_all_dirty(self) -> None:
        self._dirty = set(range(self.schedule.n_cliques))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _seed_belief(self, node: int) -> None:
        """Rebuild ``node``'s partial belief: psi times child messages.

        Dense cliques use the fused first multiply (psi * first child
        message lands in beta directly -- same elementwise arithmetic as
        copy-then-multiply, one full pass cheaper).  Packed cliques
        gather each child message at the packed entries' separator
        indices and multiply elementwise, never materializing the dense
        table.
        """
        schedule = self.schedule
        beta = self._beta[node]
        psi = self._psi[node]
        children = schedule.children[node]
        sp = schedule.sparse_cliques.get(node)
        if sp is None:
            if children:
                key = (children[0], node)
                np.multiply(
                    psi, self._msg[key].reshape(self._expand[key]), out=beta
                )
                for child in children[1:]:
                    key = (child, node)
                    np.multiply(
                        beta, self._msg[key].reshape(self._expand[key]), out=beta
                    )
            else:
                np.copyto(beta, psi)
            return
        if not children:
            np.copyto(beta, psi)
            return
        scratch = self._sp_scratch[node]
        lead = beta.shape[:-1]
        child = children[0]
        msg = self._msg[(child, node)].reshape(lead + (-1,))
        np.take(msg, sp.gathers[child], axis=-1, out=scratch)
        np.multiply(psi, scratch, out=beta)
        for child in children[1:]:
            msg = self._msg[(child, node)].reshape(lead + (-1,))
            np.take(msg, sp.gathers[child], axis=-1, out=scratch)
            np.multiply(beta, scratch, out=beta)

    @_exclusive
    def propagate(self) -> None:
        """Collect + distribute, touching only dirty-reachable messages."""
        if not self._dirty and self._ever_propagated:
            return
        schedule = self.schedule
        if any(psi is None for psi in self._psi):
            missing = [i for i, psi in enumerate(self._psi) if psi is None]
            raise RuntimeError(f"cliques {missing} have no potential set")
        dirty = (
            self._dirty
            if self._ever_propagated
            else set(range(schedule.n_cliques))
        )
        counters = self.counters
        scale = self.batch_size or 1

        # Which cliques rebuild during collect: a clique is up-dirty if
        # it is dirty itself or any child's upward message changed.
        up = [False] * schedule.n_cliques
        for component in schedule.components:
            for node, parent in reversed(component):
                if node in dirty:
                    up[node] = True
                if up[node] and parent is not None:
                    up[parent] = True
        repropagated = sum(up)
        counters.cliques_repropagated += repropagated
        counters.cliques_skipped += schedule.n_cliques - repropagated

        # Collect: rebuild partial beliefs bottom-up, refresh upward
        # messages.  Clean subtrees are skipped -- their cached messages
        # feed the rebuild of their up-dirty ancestors.
        for component in schedule.components:
            for node, parent in reversed(component):
                if not up[node]:
                    continue
                self._seed_belief(node)
                children = schedule.children[node]
                if children:
                    counters.flops += (
                        len(children) * schedule.work_sizes[node] * scale
                    )
                if parent is not None:
                    key = (node, parent)
                    sp = schedule.sparse_cliques.get(node)
                    if sp is None:
                        _reduce_sum(self._beta[node], self._plans[key], self._msg[key])
                    else:
                        _sparse_reduce(
                            self._beta[node],
                            sp.reduce_plans[parent],
                            self._msg[key],
                            self._sp_scratch[node],
                        )
                    counters.messages_collect += 1
                    counters.flops += schedule.work_sizes[node] * scale

        # Distribute: parent beliefs are complete when visited in
        # pre-order.  A changed parent belief refreshes the downward
        # message (separator-sized division by the upward message, with
        # the 0/0 = 0 mask) and absorbs it into the child.  A clean
        # parent means the whole subtree below is untouched (up-dirt
        # always propagates to the root, so up[node] implies
        # changed[parent]) and is skipped.
        changed = [False] * schedule.n_cliques
        for component in schedule.components:
            for node, parent in component:
                if parent is None:
                    changed[node] = up[node]
                elif changed[parent]:
                    changed[node] = True
                    self._absorb_from_parent(node, parent, up[node])

        # Single-query mode: scatter touched packed beliefs onto their
        # dense mirrors so belief factors stay correct.  Out-of-support
        # entries were zeroed at allocation and are never written.
        for idx, dense in self._dense_beta.items():
            if up[idx] or changed[idx]:
                dense.reshape(-1)[
                    schedule.sparse_cliques[idx].flat_idx
                ] = self._beta[idx]

        self._dirty.clear()
        self._ever_propagated = True
        counters.propagations += 1
        counters.scenarios_propagated += scale
        self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Mirror cumulative counters into the global registry, if on.

        Counters are always maintained locally; this just re-exports the
        totals after each propagation so reports see live numbers.  One
        guarded call per propagation -- nothing on the per-message path.
        """
        registry = get_metrics()
        if not registry.enabled:
            return
        counters = self.counters
        registry.counter("engine.propagations").inc(1)
        for name, field in (
            ("engine.messages", "messages"),
            ("engine.messages_collect", "messages_collect"),
            ("engine.messages_distribute", "messages_distribute"),
            ("engine.cliques_repropagated", "cliques_repropagated"),
            ("engine.cliques_skipped", "cliques_skipped"),
            ("engine.zero_resurrections", "zero_resurrections"),
            ("engine.flops", "flops"),
            ("engine.scenarios_propagated", "scenarios_propagated"),
            ("engine.potentials_unchanged", "potentials_unchanged"),
            ("engine.chain_steps", "chain_steps"),
            ("engine.chain_potentials_updated", "chain_potentials_updated"),
        ):
            total = getattr(counters, field)
            published = self._published.get(name, 0)
            registry.counter(name).inc(total - published)
            self._published[name] = total
        registry.gauge("engine.factor_bytes.peak").set_max(self.factor_bytes)
        registry.gauge("engine.batch_size.peak").set_max(self.batch_size or 1)

    def _absorb_from_parent(self, node: int, parent: int, rebuilt: bool) -> None:
        """Refresh the downward message parent -> node and absorb it."""
        schedule = self.schedule
        down_key = (parent, node)
        up_key = (node, parent)
        counters = self.counters
        counters.messages_distribute += 1
        counters.flops += (
            schedule.work_sizes[parent] + schedule.work_sizes[node]
        ) * (self.batch_size or 1)

        # marg(parent belief) onto the separator, then divide by the
        # upward message.  Wherever the upward message is zero the
        # parent belief's slice is zero too (it contains that message
        # as a factor), so the masked division's zero-fill is exact.
        new_sep = self._scratch[down_key]
        sp_parent = schedule.sparse_cliques.get(parent)
        if sp_parent is None:
            _reduce_sum(self._beta[parent], self._plans[down_key], new_sep)
        else:
            _sparse_reduce(
                self._beta[parent],
                sp_parent.reduce_plans[node],
                new_sep,
                self._sp_scratch[parent],
            )
        up_values = self._msg[up_key]
        ratio = self._scratch[up_key]
        ratio.fill(0.0)
        np.divide(new_sep, up_values, out=ratio, where=up_values != 0)

        sp = schedule.sparse_cliques.get(node)
        if sp is not None:
            self._absorb_sparse(node, parent, rebuilt, ratio, new_sep, sp)
            return

        beta = self._beta[node]
        down_values = self._msg[down_key]
        expand = self._expand[down_key]
        if rebuilt:
            # Partial belief from collect lacks the parent message.
            np.multiply(beta, ratio.reshape(expand), out=beta)
            down_values[...] = ratio
            return
        old = down_values
        if ((old == 0) & (ratio != 0)).any():
            # A zero separator entry came back to life (e.g. an input
            # probability moved off 0): the belief's zero slice cannot
            # be rescaled, so rebuild it from psi and cached messages.
            # In batched mode one resurrected element rebuilds the whole
            # clique stack -- the rebuild is correct for every element.
            counters.zero_resurrections += 1
            down_values[...] = ratio
            self._seed_belief(node)
            np.multiply(beta, ratio.reshape(expand), out=beta)
            return
        # Standard Hugin absorption: multiply by new/old on the
        # separator (0/0 = 0; zero slices of the belief stay zero).
        quotient = new_sep  # reuse the scratch buffer; new_sep is consumed
        quotient.fill(0.0)
        np.divide(ratio, old, out=quotient, where=old != 0)
        np.multiply(beta, quotient.reshape(expand), out=beta)
        down_values[...] = ratio

    def _absorb_sparse(
        self,
        node: int,
        parent: int,
        rebuilt: bool,
        ratio: np.ndarray,
        quotient_buf: np.ndarray,
        sp: _SparseClique,
    ) -> None:
        """Absorb a refreshed downward message into a packed belief.

        Same three cases as the dense path; the separator-sized factor
        (ratio or new/old quotient) is gathered at the packed entries'
        separator indices and multiplied elementwise.
        """
        beta = self._beta[node]
        down_values = self._msg[(parent, node)]
        scratch = self._sp_scratch[node]
        lead = beta.shape[:-1]
        gather = sp.gathers[parent]
        if rebuilt:
            # Partial belief from collect lacks the parent message.
            np.take(ratio.reshape(lead + (-1,)), gather, axis=-1, out=scratch)
            np.multiply(beta, scratch, out=beta)
            down_values[...] = ratio
            return
        old = down_values
        if ((old == 0) & (ratio != 0)).any():
            # Zero-resurrection rebuild, packed flavor: reseed from psi
            # and cached child messages, then apply the new ratio.
            self.counters.zero_resurrections += 1
            self._seed_belief(node)
            np.take(ratio.reshape(lead + (-1,)), gather, axis=-1, out=scratch)
            np.multiply(beta, scratch, out=beta)
            down_values[...] = ratio
            return
        quotient = quotient_buf  # reuse; the caller's new_sep is consumed
        quotient.fill(0.0)
        np.divide(ratio, old, out=quotient, where=old != 0)
        np.take(quotient.reshape(lead + (-1,)), gather, axis=-1, out=scratch)
        np.multiply(beta, scratch, out=beta)
        down_values[...] = ratio

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def belief_factors(self) -> List[Factor]:
        """Calibrated clique beliefs as factors (views, not copies)."""
        if self.batch_size is not None:
            raise RuntimeError("belief factors are only available in single-query mode")
        return list(self._belief_factors)

    def separator_factor(self, u: int, v: int) -> Factor:
        """Final separator marginal over edge ``{u, v}`` (fresh array)."""
        if self.batch_size is not None:
            raise RuntimeError(
                "separator factors are only available in single-query mode"
            )
        sep_vars = self.schedule.messages[(u, v)].sep_vars
        return Factor._unsafe(sep_vars, self._msg[(u, v)] * self._msg[(v, u)])

    def clique_total(self, idx: int) -> float:
        return float(self._beta[idx].sum())

    @_exclusive
    def marginals(
        self, variables: Sequence[str], skip_zero: bool = False
    ) -> Dict[str, np.ndarray]:
        """Batched single-variable marginals.

        Variables are grouped by home clique; each clique's belief is
        reduced onto the requested axes with **one** einsum per clique
        and the (tiny) reduced table is then swept per variable, instead
        of one full-table einsum per variable.

        In single-query mode the returned arrays have shape ``(card,)``.
        On a batched engine they have shape ``(K, card)``, row ``k``
        being scenario ``k``'s marginal.  Zero-mass beliefs raise
        :class:`ZeroBeliefError`; on a batched engine the error carries
        a ``batch_indices`` tuple naming the offending scenarios, and
        ``skip_zero=True`` instead fills their rows with NaN so the
        remaining scenarios are unaffected.
        """
        schedule = self.schedule
        by_clique: Dict[int, List[str]] = {}
        for var in variables:
            location = schedule.variable_axis.get(var)
            if location is None:
                raise KeyError(f"unknown variable {var!r}")
            by_clique.setdefault(location[0], []).append(var)
        batched = self.batch_size is not None
        out: Dict[str, np.ndarray] = {}
        for idx, group in by_clique.items():
            beta = self._beta[idx]
            ndim = len(schedule.shapes[idx])
            bad = None
            if batched:
                k = self.batch_size
                totals = beta.reshape(k, -1).sum(axis=1)
                zero = totals <= 0
                if zero.any():
                    if not skip_zero:
                        indices = tuple(int(i) for i in np.nonzero(zero)[0])
                        err = ZeroBeliefError(
                            "cannot normalize a zero belief for batch "
                            f"elements {list(indices)}"
                        )
                        err.batch_indices = indices
                        raise err
                    bad = zero
                    totals = np.where(zero, 1.0, totals)
            else:
                total = beta.sum()
                if total <= 0:
                    raise ZeroBeliefError("cannot normalize a zero belief")

            sp = schedule.sparse_cliques.get(idx)
            lead = (self.batch_size,) if batched else ()
            keep = sorted({schedule.variable_axis[v][1] for v in group})
            joint_shape = tuple(schedule.shapes[idx][a] for a in keep)
            if sp is None and len(keep) == ndim:
                joint = beta
            else:
                # A packed belief always reduces through the sparse
                # kernel (even onto the full clique scope), in both
                # engine modes, so single-query and batched marginals
                # keep their bitwise parity.
                plan_key = (idx, tuple(keep))
                plan = self._marginal_plans.get(plan_key)
                if plan is None:
                    if sp is None:
                        plan = _reduction_plan(schedule.shapes[idx], keep)
                        if self.dtype != np.float64:
                            plan = _cast_plan(plan, self.dtype)
                    else:
                        plan = _sparse_reduce_plan(
                            sp.flat_idx, schedule.shapes[idx], keep, joint_shape
                        )
                    self._marginal_plans[plan_key] = plan
                joint = np.empty(lead + joint_shape, dtype=self.dtype)
                if sp is None:
                    _reduce_sum(beta, plan, joint)
                else:
                    _sparse_reduce(beta, plan, joint, self._sp_scratch[idx])
            for var in group:
                pos = keep.index(schedule.variable_axis[var][1])
                plan_key = (idx, tuple(keep), pos)
                plan = self._marginal_plans.get(plan_key)
                if plan is None:
                    plan = _reduction_plan(joint_shape, [pos])
                    if self.dtype != np.float64:
                        plan = _cast_plan(plan, self.dtype)
                    self._marginal_plans[plan_key] = plan
                card = joint_shape[pos]
                if batched:
                    result = np.empty((self.batch_size, card), dtype=self.dtype)
                    _reduce_sum(joint, plan, result)
                    result /= totals[:, None]
                    if bad is not None:
                        result[bad] = np.nan
                else:
                    result = np.empty(card)
                    _reduce_sum(joint, plan, result)
                    result /= total
                out[var] = result
        return out

    @_exclusive
    def joint_marginal(self, idx: int, variables: Sequence[str]) -> np.ndarray:
        """Normalized joint over ``variables`` from clique ``idx``, batched.

        Returns a ``(K, card_1, ..., card_m)`` array whose slice ``k``
        mirrors, bitwise, what the single-query reference path
        (``Factor.marginal_onto(...).normalize().permute(variables)``)
        computes for scenario ``k``: the reduction uses ``ndarray.sum``
        over the dropped axes and a broadcast division by per-scenario
        totals, both elementwise-identical per batch element.
        """
        if self.batch_size is None:
            raise RuntimeError("joint_marginal requires a batched engine")
        order = self.schedule.orders[idx]
        wanted = set(variables)
        missing = wanted - set(order)
        if missing:
            raise KeyError(f"clique {idx} does not contain {sorted(missing)}")
        beta = self._beta[idx]
        sp = self.schedule.sparse_cliques.get(idx)
        if sp is not None:
            # Scatter the packed belief to a dense stack, then reduce
            # with the same ``ndarray.sum`` the dense path uses -- this
            # is the slow Factor-compatible surface (segment boundary
            # extraction), so bitwise parity with the reference path
            # outranks avoiding one dense temporary.
            dense = np.zeros(
                (self.batch_size,) + self.schedule.shapes[idx], dtype=self.dtype
            )
            dense.reshape(self.batch_size, -1)[:, sp.flat_idx] = beta
            beta = dense
        drop = tuple(1 + i for i, v in enumerate(order) if v not in wanted)
        reduced = beta.sum(axis=drop) if drop else beta
        kept = [v for v in order if v in wanted]
        k = self.batch_size
        totals = reduced.reshape(k, -1).sum(axis=1)
        if (totals <= 0).any():
            indices = tuple(int(i) for i in np.nonzero(totals <= 0)[0])
            err = ZeroBeliefError(
                f"cannot normalize a zero belief for batch elements {list(indices)}"
            )
            err.batch_indices = indices
            raise err
        normalized = reduced / totals.reshape((k,) + (1,) * len(kept))
        perm = tuple(1 + kept.index(v) for v in variables)
        return normalized.transpose((0,) + perm)
