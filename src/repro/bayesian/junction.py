"""Junction tree construction and Hugin-style message passing.

This is the compilation + propagation machinery of the paper's Section 5:

1. moralize the Bayesian network's DAG,
2. triangulate the moral graph (greedy elimination order),
3. extract maximal cliques and connect them into a junction tree (a
   maximum-weight spanning tree over separator sizes, which for chordal
   graphs guarantees the running intersection property),
4. assign each CPD to a containing clique and form clique potentials,
5. calibrate by two-phase message passing (collect toward a root, then
   distribute), after which every clique potential is the exact joint
   marginal of its scope times the probability of the evidence.

The *compile once, propagate per input-statistics* split the paper
advertises maps to :meth:`JunctionTree.from_network` (steps 1-3, slow)
versus :meth:`JunctionTree.update_cpds` + :meth:`JunctionTree.calibrate`
(steps 4-5, fast).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.bayesian.cpd import TabularCPD
from repro.bayesian.factor import Factor, factor_product, plan_product
from repro.bayesian.moral import moral_graph
from repro.bayesian.network import BayesianNetwork
from repro.bayesian.propagation import (
    PropagationCounters,
    PropagationEngine,
    PropagationSchedule,
)
from repro.bayesian.triangulate import elimination_cliques, triangulate

# CliqueBudgetExceeded's canonical home is the backend layer (its
# import-light ``errors`` module), because that is where the budget
# fallback policy lives; this module is its raising site.
from repro.core.backend.errors import CliqueBudgetExceeded
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = ["CliqueBudgetExceeded", "JunctionTree", "JunctionTreeError"]

#: synthetic variable name for the leading batch axis of stacked
#: per-scenario factors; NUL guarantees no collision with circuit lines.
_BATCH_AXIS = "\x00batch"


class JunctionTreeError(RuntimeError):
    """Raised for structural or calibration failures."""


class JunctionTree:
    """A calibrated junction tree over a Bayesian network.

    Do not call the constructor directly; use :meth:`from_network`.
    """

    def __init__(
        self,
        bn: BayesianNetwork,
        cliques: List[frozenset],
        tree: nx.Graph,
        elimination_order: List[str],
        fill_ins: List[Tuple[str, str]],
        engine: bool = True,
        kernel: str = "auto",
    ):
        if kernel not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown kernel mode {kernel!r}")
        self._bn = bn
        self.cliques = cliques
        self.tree = tree
        self.elimination_order = elimination_order
        self.fill_ins = fill_ins
        self._cardinalities = {n: bn.cardinality(n) for n in bn.nodes}

        #: index of one clique containing each variable (for marginals)
        self._home_clique: Dict[str, int] = {}
        for idx, clique in enumerate(cliques):
            for var in clique:
                self._home_clique.setdefault(var, idx)

        #: clique index each CPD is assigned to
        self._cpd_assignment: Dict[str, int] = {}
        #: reverse map: clique index -> nodes whose CPD lives there
        self._cpd_members: List[List[str]] = [[] for _ in cliques]
        for node in bn.nodes:
            family = set(bn.parents(node)) | {node}
            for idx, clique in enumerate(cliques):
                if family <= clique:
                    self._cpd_assignment[node] = idx
                    self._cpd_members[idx].append(node)
                    break
            else:
                raise JunctionTreeError(
                    f"no clique contains the family of {node!r}; "
                    "triangulation is inconsistent with the moral graph"
                )

        self._evidence: Dict[str, int] = {}
        self._potentials: List[Factor] = []
        self._separators: Dict[frozenset, Factor] = {}
        self._calibrated = False
        #: cached per-clique product of assigned CPD factors (no
        #: evidence); lets update_cpds re-multiply only touched cliques
        self._cpd_products: Optional[List[Factor]] = None
        #: compiled propagation engine (schedule + preallocated buffers);
        #: built lazily on first calibration when ``engine`` is True.
        #: ``engine=False`` keeps the Factor-based reference path, used
        #: by tests and benchmarks as the slow oracle.
        self._use_engine = engine
        self._engine: Optional[PropagationEngine] = None
        #: message-kernel mode handed to the schedule ("auto" | "dense"
        #: | "sparse"; see :class:`PropagationSchedule`)
        self._kernel = kernel
        #: per-node (variables, 0/1 support) recorded when deterministic
        #: CPD masks feed a compiled schedule; the soundness guard in
        #: update_cpds checks replacement CPDs against these.
        self._mask_supports: Dict[str, Tuple[Tuple[str, ...], np.ndarray]] = {}
        #: nodes whose CPDs once violated their recorded support; they
        #: never contribute masks again (treated as free tables).
        self._mask_exclude: Set[str] = set()
        #: shared immutable message schedule (built on first engine use;
        #: serves both the single-query and the batched engine)
        self._schedule: Optional[PropagationSchedule] = None
        #: batched engine for multi-scenario sweeps (built lazily by
        #: update_cpds_batch; dropped whenever the shared potentials it
        #: snapshot change, and excluded from pickles)
        self._batch_engine: Optional[PropagationEngine] = None
        self._init_potentials()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_network(
        cls,
        bn: BayesianNetwork,
        heuristic: str = "min_fill",
        elimination_order: Optional[Sequence[str]] = None,
        max_clique_states: Optional[int] = None,
        engine: bool = True,
        kernel: str = "auto",
    ) -> "JunctionTree":
        """Compile a Bayesian network into a junction tree.

        Parameters
        ----------
        bn:
            The network; must validate.
        heuristic:
            Elimination-order heuristic (``"min_fill"`` or
            ``"min_degree"``) when ``elimination_order`` is not given.
        elimination_order:
            Explicit elimination order (overrides the heuristic).
        max_clique_states:
            If given, raise :class:`CliqueBudgetExceeded` before
            materializing any table whose clique exceeds this many
            entries.
        engine:
            Use the compiled propagation engine
            (:mod:`repro.bayesian.propagation`).  ``False`` selects the
            Factor-based reference path (slower; kept as an oracle).
        kernel:
            Message-kernel mode for the compiled schedule: ``"auto"``
            (default) packs cliques whose deterministic-CPD support is
            sparse enough to win, ``"dense"`` keeps the PR-1 dense
            reductions everywhere, ``"sparse"`` forces packed kernels
            on every clique with any infeasible entry.
        """
        from repro.bayesian.triangulate import max_clique_state_space

        tracer = get_tracer()
        with tracer.span("compile.junction_tree", network=bn.name):
            bn.validate()
            with tracer.span("compile.moralize"):
                moral = moral_graph(bn)
            cards = {n: bn.cardinality(n) for n in bn.nodes}
            with tracer.span("compile.triangulate", heuristic=heuristic) as sp:
                chordal, order, fills = triangulate(
                    moral,
                    order=elimination_order,
                    heuristic=heuristic,
                    cardinalities=cards,
                )
                sp.annotate(fill_ins=len(fills))
            with tracer.span("compile.cliques") as sp:
                cliques = elimination_cliques(chordal, order)
                worst = max_clique_state_space(cliques, cards)
                sp.annotate(cliques=len(cliques), max_clique_states=worst)
            if max_clique_states is not None and worst > max_clique_states:
                raise CliqueBudgetExceeded(
                    f"{bn.name}: largest clique needs {worst} entries "
                    f"(budget {max_clique_states})"
                )
            # Gauges describe trees that actually get built; rejected
            # triangulations stay visible via the span attributes above.
            registry = get_metrics()
            if registry.enabled:
                total = 0
                histogram = registry.histogram("compile.clique_states")
                for clique in cliques:
                    size = 1
                    for node in clique:
                        size *= cards.get(node, 2)
                    histogram.observe(size)
                    total += size
                registry.counter("compile.fill_ins").inc(len(fills))
                registry.gauge("jt.max_clique_states").set_max(worst)
                registry.gauge("jt.total_states").add(total)
            with tracer.span("compile.spanning_tree"):
                tree = cls._build_tree(cliques)
            with tracer.span("compile.potentials"):
                jt = cls(
                    bn, cliques, tree, order, fills, engine=engine, kernel=kernel
                )
            if engine:
                # Build the message schedule (and its support analysis)
                # eagerly: it is part of the compile-once artifact, so
                # pickled models and compile-cache hits skip both.
                jt._ensure_schedule()
            return jt

    @staticmethod
    def _build_tree(cliques: List[frozenset]) -> nx.Graph:
        """Maximum-weight spanning tree over pairwise separator sizes."""
        candidate = nx.Graph()
        candidate.add_nodes_from(range(len(cliques)))
        for i in range(len(cliques)):
            for j in range(i + 1, len(cliques)):
                weight = len(cliques[i] & cliques[j])
                if weight > 0:
                    candidate.add_edge(i, j, weight=weight)
        tree = nx.Graph()
        tree.add_nodes_from(range(len(cliques)))
        # Maximum spanning forest; empty-separator components stay apart.
        for u, v, data in nx.maximum_spanning_edges(candidate, data=True):
            tree.add_edge(u, v, weight=data["weight"])
        return tree

    def _clique_cpd_product(self, idx: int) -> Factor:
        """Product of the CPD factors assigned to clique ``idx``, over
        the clique's full scope in canonical (sorted) axis order."""
        order = sorted(self.cliques[idx])
        base = Factor.uniform(order, [self._cardinalities[v] for v in order])
        members = [
            self._bn.cpd(node).to_factor() for node in self._cpd_members[idx]
        ]
        return factor_product([base] + members).permute(order)

    def _clique_cpd_product_batch(
        self, idx: int, overrides: Mapping[str, Sequence[TabularCPD]], k: int
    ) -> np.ndarray:
        """Batched clique-``idx`` CPD product: a ``(K, *clique_shape)``
        stack whose slice ``k`` is bitwise-identical to what
        :meth:`_clique_cpd_product` would compute with scenario ``k``'s
        CPDs swapped in.

        Bitwise equality holds because the fold order is planned with a
        *per-scenario* size key (a stacked factor counts as its
        unbatched size), so the batched fold multiplies the same factors
        in the same order as any single scenario's fold, and every
        multiply is elementwise over broadcast views.
        """
        order = tuple(sorted(self.cliques[idx]))
        shape = tuple(self._cardinalities[v] for v in order)
        base = Factor.uniform(order, shape)
        factors: List[Factor] = [base]
        for node in self._cpd_members[idx]:
            cpds = overrides.get(node)
            if cpds is None:
                factors.append(self._bn.cpd(node).to_factor())
            else:
                first = cpds[0].to_factor()
                stacked = np.stack(
                    [c.to_factor().permute(first.variables).values for c in cpds]
                )
                factors.append(
                    Factor._unsafe((_BATCH_AXIS,) + first.variables, stacked)
                )

        def per_scenario_size(factor: Factor) -> int:
            return factor.size // k if _BATCH_AXIS in factor else factor.size

        keep = plan_product(factors, size_key=per_scenario_size)
        result = keep[0]
        for factor in keep[1:]:
            result = result.product(factor)
        if _BATCH_AXIS in result:
            return result.permute((_BATCH_AXIS,) + order).values
        # Every scenario's table is identical (all overrides were
        # identities); broadcast the shared table over the batch axis.
        return np.broadcast_to(result.permute(order).values, (k,) + shape)

    def _clique_potential(self, idx: int) -> Factor:
        """Initial potential of clique ``idx``: its CPD product times
        the evidence indicators of variables homed there."""
        potential = self._cpd_products[idx]
        for var, state in self._evidence.items():
            if self._home_clique[var] == idx:
                indicator = Factor.indicator(var, self._cardinalities[var], state)
                potential = potential.product(indicator)
        return potential

    def _init_potentials(self) -> None:
        """(Re)build clique potentials from cached CPD products plus the
        current evidence, and reset all separators."""
        if self._cpd_products is None:
            self._cpd_products = [
                self._clique_cpd_product(idx) for idx in range(len(self.cliques))
            ]
        self._potentials = list(self._cpd_products)
        for var, state in self._evidence.items():
            idx = self._home_clique[var]
            indicator = Factor.indicator(var, self._cardinalities[var], state)
            self._potentials[idx] = self._potentials[idx].product(indicator)
        self._separators = {}
        for u, v in self.tree.edges:
            sep = self.cliques[u] & self.cliques[v]
            self._separators[frozenset((u, v))] = Factor.uniform(
                sorted(sep), [self._cardinalities[x] for x in sorted(sep)]
            )
        self._calibrated = False
        # The batched engine snapshots the shared CPD products; any
        # reset invalidates that snapshot.
        self._batch_engine = None
        if self._engine is not None:
            # Full reset requested (new evidence set, bench reruns, ...):
            # push every potential and mark everything dirty.
            self._engine.mark_all_dirty()
            for idx in range(len(self.cliques)):
                self._engine.set_potential(idx, self._potentials[idx])

    def _mark_cliques_dirty(self, indices: Iterable[int]) -> None:
        """Refresh the engine potentials of the given cliques only.

        This is the dirty-clique fast path: the next calibration
        re-propagates just the messages the changes can reach instead of
        resetting every potential and separator.
        """
        for idx in set(indices):
            potential = self._clique_potential(idx)
            self._potentials[idx] = potential
            self._engine.set_potential(idx, potential)
        self._calibrated = False
        self._batch_engine = None

    # ------------------------------------------------------------------
    # Evidence & CPD updates
    # ------------------------------------------------------------------

    def set_evidence(self, evidence: Mapping[str, int]) -> None:
        """Fix observed states; takes effect at the next calibration."""
        for var, state in evidence.items():
            if var not in self._cardinalities:
                raise KeyError(f"unknown variable {var!r}")
            if not 0 <= state < self._cardinalities[var]:
                raise ValueError(f"state {state} out of range for {var!r}")
        self._evidence.update(evidence)
        if self._engine is not None:
            self._mark_cliques_dirty(
                self._home_clique[var] for var in evidence
            )
        else:
            self._init_potentials()

    def clear_evidence(self) -> None:
        cleared = list(self._evidence)
        self._evidence = {}
        if self._engine is not None:
            self._mark_cliques_dirty(self._home_clique[var] for var in cleared)
        else:
            self._init_potentials()

    def update_cpds(self, cpds: Iterable[TabularCPD]) -> None:
        """Swap in new CPDs (same structure) without recompiling.

        This is the paper's fast re-propagation path: changing the input
        statistics of a compiled circuit only replaces root CPDs, then
        recalibrates.
        """
        cpds = list(cpds)
        for cpd in cpds:
            if cpd.variable not in self._cpd_assignment:
                raise KeyError(f"unknown node {cpd.variable!r}")
            old = self._bn.cpd(cpd.variable)
            if tuple(cpd.parents) != tuple(old.parents):
                raise ValueError(
                    f"new CPD for {cpd.variable!r} changes parents "
                    f"{old.parents} -> {cpd.parents}; recompile instead"
                )
            if cpd.cardinality != old.cardinality:
                raise ValueError(f"new CPD for {cpd.variable!r} changes cardinality")
            self._bn._cpds[cpd.variable] = cpd
        # Re-multiply only the cliques whose assigned CPDs changed.
        affected = {self._cpd_assignment[c.variable] for c in cpds}
        if self._cpd_products is not None:
            for idx in affected:
                self._cpd_products[idx] = self._clique_cpd_product(idx)
        if self._mask_supports and self._supports_violated(cpds):
            # A replacement CPD put mass outside the support its old
            # deterministic table promised (e.g. a gate CPD swapped for
            # a noisy one).  The packed kernels compiled against the old
            # masks would silently drop that mass, so drop the compiled
            # state; the next calibration re-analyzes without the
            # offending node's mask.
            self._invalidate_compiled()
        elif self._engine is not None and self._cpd_products is not None:
            self._mark_cliques_dirty(affected)
        else:
            self._init_potentials()

    def update_cpds_chain(self, cpds: Iterable[TabularCPD]) -> None:
        """Warm-start chain step: swap in only the *changed* CPDs.

        Delta sweeps call this between consecutive scenarios.  The CPD
        products of the affected cliques are patched incrementally --
        that is the expensive part of a scenario swap -- but the next
        :meth:`calibrate` propagates from reset initial potentials
        rather than the previous scenario's calibrated beliefs.  The
        dirty-path fast path updates clean cliques by separator-ratio
        multiplies, whose rounding differs (by ~1 ULP) from a fresh
        pass; restarting from the (bitwise-identical) initial products
        keeps every chain result bitwise-equal to an independent
        propagation, which is the contract delta sweeps promise.  The
        chain counters live on the engine
        (:class:`~repro.bayesian.propagation.PropagationCounters`).
        """
        cpds = list(cpds)
        engine = self._engine
        self.update_cpds(cpds)
        if self._cpd_products is not None:
            # update_cpds only marked the affected cliques dirty; force
            # the full reset that restores bitwise parity with a fresh
            # propagation over the patched products.
            self._init_potentials()
        if engine is not None:
            engine.counters.chain_steps += 1
            engine.counters.chain_potentials_updated += len(cpds)

    # ------------------------------------------------------------------
    # Batched multi-scenario propagation
    # ------------------------------------------------------------------

    def update_cpds_batch(
        self, cpd_sets: Sequence[Iterable[TabularCPD]], dtype: str = "float64"
    ) -> int:
        """Install K scenarios' CPDs for one batched propagation pass.

        ``cpd_sets[k]`` plays the role of :meth:`update_cpds`'s argument
        for scenario ``k``; every scenario must update the same
        variables (with unchanged parents and cardinality).  Unlike
        :meth:`update_cpds` this mutates neither the underlying network
        nor the single-query engine: scenarios live only in a lazily
        built batched engine, whose dirty tracking is shared across the
        batch (only the updated cliques' potentials differ per
        scenario).  Returns K.  Query results with
        :meth:`marginals_batch` / :meth:`joint_marginal_batch`.

        ``dtype="float32"`` builds the batched engine with float32
        buffers: half the ``K x`` memory and faster memory-bound sweeps,
        at a ~``1e-6`` relative tolerance versus float64 (see
        :class:`~repro.bayesian.propagation.PropagationEngine`).
        """
        sets = [list(s) for s in cpd_sets]
        if not sets:
            raise ValueError("need at least one CPD set")
        if not self._use_engine:
            raise JunctionTreeError(
                "batched propagation requires the compiled engine"
            )
        if self._evidence:
            raise JunctionTreeError(
                "batched propagation does not support evidence"
            )
        k = len(sets)
        variables = [cpd.variable for cpd in sets[0]]
        by_var: Dict[str, List[TabularCPD]] = {v: [] for v in variables}
        # Deep-validate scenario 0 against the network, then hold the
        # other K-1 scenarios to scenario 0's structure (cheap tuple and
        # shape compares instead of K network lookups per variable).
        for cpd in sets[0]:
            if cpd.variable not in self._cpd_assignment:
                raise KeyError(f"unknown node {cpd.variable!r}")
            old = self._bn.cpd(cpd.variable)
            if tuple(cpd.parents) != tuple(old.parents):
                raise ValueError(
                    f"new CPD for {cpd.variable!r} changes parents "
                    f"{old.parents} -> {cpd.parents}; recompile instead"
                )
            if cpd.cardinality != old.cardinality:
                raise ValueError(
                    f"new CPD for {cpd.variable!r} changes cardinality"
                )
            by_var[cpd.variable].append(cpd)
        for cpds in sets[1:]:
            if [cpd.variable for cpd in cpds] != variables:
                raise ValueError(
                    "every scenario must update the same variables in the "
                    "same order"
                )
            for cpd, ref in zip(cpds, sets[0]):
                if cpd.parents != ref.parents:
                    raise ValueError(
                        f"new CPD for {cpd.variable!r} changes parents "
                        f"{ref.parents} -> {cpd.parents}; recompile instead"
                    )
                if cpd.factor.values.shape != ref.factor.values.shape:
                    raise ValueError(
                        f"new CPD for {cpd.variable!r} changes cardinality"
                    )
                by_var[cpd.variable].append(cpd)

        if self._mask_supports and self._supports_violated(
            [cpd for cpds_for_var in by_var.values() for cpd in cpds_for_var]
        ):
            self._invalidate_compiled()

        schedule = self._ensure_schedule()
        if (
            self._batch_engine is None
            or self._batch_engine.batch_size != k
            or self._batch_engine.dtype != np.dtype(dtype)
        ):
            engine = PropagationEngine(schedule, batch_size=k, dtype=dtype)
            for idx in range(len(self.cliques)):
                # Gate-clique tables are identical across scenarios and
                # broadcast over the batch axis.
                engine.set_potential(idx, self._cpd_products[idx])
            self._batch_engine = engine
        affected = {self._cpd_assignment[v] for v in variables}
        for idx in sorted(affected):
            overrides = {
                node: by_var[node]
                for node in self._cpd_members[idx]
                if node in by_var
            }
            stacked = self._clique_cpd_product_batch(idx, overrides, k)
            self._batch_engine.set_potential_batch(idx, stacked)
        return k

    def marginals_batch(
        self, variables: Sequence[str], skip_zero: bool = False
    ) -> Dict[str, np.ndarray]:
        """Posterior marginals of the installed scenario batch.

        Returns ``{var: (K, card) array}``; row ``k`` is scenario
        ``k``'s marginal, bitwise-identical to what K independent
        single-query propagations would produce (see
        :mod:`repro.bayesian.propagation`).  Requires a prior
        :meth:`update_cpds_batch`.  ``skip_zero=True`` NaN-fills rows of
        zero-mass scenarios instead of raising, isolating them from
        their batch-mates.
        """
        engine = self._require_batch_engine()
        engine.propagate()
        return engine.marginals(variables, skip_zero=skip_zero)

    def joint_marginal_batch(self, variables: Sequence[str]) -> np.ndarray:
        """Batched joint posterior of variables sharing a clique: a
        ``(K, card_1, ..., card_m)`` array in the order of
        ``variables``.  See :meth:`joint_marginal`."""
        engine = self._require_batch_engine()
        engine.propagate()
        wanted = set(variables)
        for idx, clique in enumerate(self.cliques):
            if wanted <= clique:
                return engine.joint_marginal(idx, list(variables))
        raise JunctionTreeError(f"no clique jointly contains {sorted(wanted)}")

    def _require_batch_engine(self) -> PropagationEngine:
        if self._batch_engine is None:
            raise JunctionTreeError(
                "no scenario batch installed; call update_cpds_batch first"
            )
        return self._batch_engine

    def _ensure_schedule(self) -> PropagationSchedule:
        """Build (once) the immutable message schedule shared by the
        single-query and batched engines.  Non-dense kernel modes run
        the support analysis here, so it is paid once per compile and
        serializes with the tree (cache hits skip it entirely)."""
        if self._schedule is None:
            with get_tracer().span(
                "compile.schedule",
                cliques=len(self.cliques),
                kernel=self._kernel,
            ):
                masks = (
                    self._deterministic_masks()
                    if self._kernel != "dense"
                    else None
                )
                self._schedule = PropagationSchedule(
                    self.cliques,
                    self.tree.edges,
                    self._cardinalities,
                    clique_masks=masks,
                    kernel=self._kernel,
                )
            self._publish_support_gauges()
        return self._schedule

    def _deterministic_masks(self) -> List[Optional[np.ndarray]]:
        """Per-clique 0/1 feasibility masks from deterministic gate CPDs.

        Each non-root deterministic CPD (a 0/1 indicator table) ANDs its
        support into the clique it is assigned to; every other CPD --
        including root/input priors, whose tables *change* between
        queries and may only look deterministic at p in {0, 1} --
        contributes nothing, keeping the masks sound under every input
        model.  Records each contributing node's support so
        :meth:`update_cpds` can detect replacements that break it.
        """
        masks: List[Optional[np.ndarray]] = [None] * len(self.cliques)
        self._mask_supports = {}
        for node, idx in self._cpd_assignment.items():
            if node in self._mask_exclude:
                continue
            cpd = self._bn.cpd(node)
            if not cpd.parents or not cpd.is_deterministic():
                continue
            factor = cpd.to_factor()
            support = factor.values != 0
            self._mask_supports[node] = (factor.variables, support)
            order = tuple(sorted(self.cliques[idx]))
            position = {v: i for i, v in enumerate(order)}
            axes = np.array([position[v] for v in factor.variables])
            # Permute the support's axes into clique-canonical order,
            # then pad singleton axes for the clique variables the CPD
            # does not mention so it broadcasts against the clique table.
            arranged = support.transpose(np.argsort(axes))
            shape = [1] * len(order)
            for pos, size in zip(np.sort(axes), arranged.shape):
                shape[pos] = size
            expanded = arranged.reshape(shape)
            masks[idx] = expanded if masks[idx] is None else masks[idx] & expanded
        for idx, mask in enumerate(masks):
            if mask is not None:
                shape = tuple(
                    self._cardinalities[v] for v in sorted(self.cliques[idx])
                )
                masks[idx] = np.ascontiguousarray(np.broadcast_to(mask, shape))
        return masks

    def _supports_violated(self, cpds: Iterable[TabularCPD]) -> bool:
        """Check replacement CPDs against their recorded mask supports.

        Violating nodes are added to ``_mask_exclude`` so a rebuilt
        schedule never trusts them again.  Returns True if any new CPD
        has mass outside its recorded support.
        """
        violated = False
        for cpd in cpds:
            recorded = self._mask_supports.get(cpd.variable)
            if recorded is None:
                continue
            variables, support = recorded
            values = cpd.to_factor().permute(variables).values
            if ((values != 0) & ~support).any():
                self._mask_exclude.add(cpd.variable)
                violated = True
        return violated

    def _invalidate_compiled(self) -> None:
        """Drop the compiled schedule and engines (support masks went
        stale) and restore initial potentials for a fresh calibration.

        The potential rebuild is load-bearing: after a calibration
        ``self._potentials`` are belief *views* over the dropped
        engine's buffers, and seeding a new engine with beliefs instead
        of initial potentials would square the evidence.
        """
        self._schedule = None
        self._engine = None
        self._batch_engine = None
        self._mask_supports = {}
        self._init_potentials()

    def _publish_support_gauges(self) -> None:
        """Export the schedule's support analysis to the metrics registry."""
        registry = get_metrics()
        if not registry.enabled:
            return
        schedule = self._schedule
        total = sum(schedule.sizes)
        feasible = sum(schedule.support_nnz)
        registry.gauge("jt.feasible_states").add(feasible)
        registry.gauge("jt.support_density").set_max(
            feasible / total if total else 1.0
        )
        registry.gauge("jt.sparse_cliques").add(int(sum(schedule.sparse)))

    def support_stats(self) -> Dict[str, object]:
        """Support-analysis summary: kernel mode, feasible states, density.

        Builds the schedule on first call (engine mode only; the
        Factor-based reference path reports dense full support).
        """
        if not self._use_engine:
            total = sum(
                int(np.prod([self._cardinalities[v] for v in c]))
                for c in self.cliques
            )
            return {
                "kernel": "dense",
                "cliques": len(self.cliques),
                "sparse_cliques": 0,
                "total_states": total,
                "feasible_states": total,
                "support_density": 1.0,
            }
        schedule = self._ensure_schedule()
        total = sum(schedule.sizes)
        feasible = sum(schedule.support_nnz)
        return {
            "kernel": schedule.kernel,
            "cliques": schedule.n_cliques,
            "sparse_cliques": int(sum(schedule.sparse)),
            "total_states": int(total),
            "feasible_states": int(feasible),
            "support_density": feasible / total if total else 1.0,
        }

    def __getstate__(self):
        # The batched engine is a per-sweep cache keyed by batch size;
        # rebuilding it is cheap and keeps artifacts K-independent.
        state = dict(self.__dict__)
        state["_batch_engine"] = None
        return state

    # ------------------------------------------------------------------
    # Calibration (two-phase message passing)
    # ------------------------------------------------------------------

    def calibrate(self) -> None:
        """Run collect + distribute over every tree component.

        With the compiled engine (the default) this propagates over the
        precomputed schedule, re-running only messages reachable from
        dirty cliques; a calibrated tree with no pending changes is a
        no-op.  With ``engine=False`` it runs the Factor-based reference
        message passes.
        """
        if self._use_engine:
            self._calibrate_engine()
            return
        seen: Set[int] = set()
        for root in self.tree.nodes:
            if root in seen:
                continue
            component_order = self._dfs_order(root)
            seen.update(node for node, _ in component_order)
            # Collect: leaves toward root (reverse DFS order).
            for node, parent in reversed(component_order):
                if parent is not None:
                    self._pass_message(node, parent)
            # Distribute: root toward leaves.
            for node, parent in component_order:
                if parent is not None:
                    self._pass_message(parent, node)
        self._calibrated = True

    def _calibrate_engine(self) -> None:
        """Propagate via the compiled schedule (built on first use)."""
        if self._engine is None:
            schedule = self._ensure_schedule()
            self._engine = PropagationEngine(schedule)
            for idx in range(len(self.cliques)):
                self._engine.set_potential(idx, self._potentials[idx])
            registry = get_metrics()
            if registry.enabled:
                registry.gauge("engine.factor_bytes.peak").set_max(
                    self._engine.factor_bytes
                )
        self._engine.propagate()
        # Beliefs are views over the engine's preallocated buffers; the
        # Factor wrappers are stable across propagations.
        self._potentials = self._engine.belief_factors()
        self._separators = {
            frozenset((u, v)): self._engine.separator_factor(u, v)
            for u, v in self.tree.edges
        }
        self._calibrated = True

    def _dfs_order(self, root: int) -> List[Tuple[int, Optional[int]]]:
        """(node, parent) pairs in DFS pre-order from ``root``."""
        order: List[Tuple[int, Optional[int]]] = []
        stack: List[Tuple[int, Optional[int]]] = [(root, None)]
        visited: Set[int] = set()
        while stack:
            node, parent = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            order.append((node, parent))
            for neighbor in self.tree.neighbors(node):
                if neighbor not in visited:
                    stack.append((neighbor, node))
        return order

    def _pass_message(self, source: int, target: int) -> None:
        """Hugin update: absorb ``source``'s separator marginal into ``target``."""
        key = frozenset((source, target))
        separator_vars = self._separators[key].variables
        new_sep = self._potentials[source].marginal_onto(separator_vars)
        ratio = new_sep.divide(self._separators[key])
        self._potentials[target] = self._potentials[target].product(ratio)
        self._separators[key] = new_sep

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _require_calibration(self) -> None:
        if not self._calibrated:
            self.calibrate()

    def marginal(self, variable: str) -> np.ndarray:
        """Posterior marginal ``P(variable | evidence)`` as a vector."""
        self._require_calibration()
        if self._engine is not None:
            return self._engine.marginals([variable])[variable]
        idx = self._home_clique.get(variable)
        if idx is None:
            raise KeyError(f"unknown variable {variable!r}")
        factor = self._potentials[idx].marginal_onto([variable])
        return factor.normalize().values

    def marginals(self, variables: Sequence[str]) -> Dict[str, np.ndarray]:
        """Posterior marginals of many variables in one batched sweep.

        Variables sharing a home clique are extracted together: the
        clique belief is normalized once and swept with one einsum per
        variable, instead of one ``marginal_onto`` + ``normalize`` pair
        per variable.  Equivalent to ``{v: jt.marginal(v) for v in
        variables}`` but substantially faster for full-circuit reads.
        """
        self._require_calibration()
        if self._engine is not None:
            return self._engine.marginals(variables)
        return {v: self.marginal(v) for v in variables}

    def joint_marginal(self, variables: Sequence[str]) -> Factor:
        """Joint posterior of variables that share a clique.

        Raises :class:`JunctionTreeError` if no clique contains all of
        them (an arbitrary joint would require out-of-clique inference;
        use :func:`repro.bayesian.elimination.variable_elimination`).
        """
        self._require_calibration()
        wanted = set(variables)
        for idx, clique in enumerate(self.cliques):
            if wanted <= clique:
                factor = self._potentials[idx].marginal_onto(list(wanted))
                return factor.normalize().permute(list(variables))
        raise JunctionTreeError(f"no clique jointly contains {sorted(wanted)}")

    def probability_of_evidence(self) -> float:
        """P(evidence); 1.0 when no evidence is set.

        With multiple tree components the per-component masses multiply.
        """
        self._require_calibration()
        seen: Set[int] = set()
        prob = 1.0
        for root in self.tree.nodes:
            if root in seen:
                continue
            seen.update(node for node, _ in self._dfs_order(root))
            prob *= self._potentials[root].total()
        return float(prob)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check_running_intersection(self) -> bool:
        """Verify the junction-tree property.

        For every variable, the cliques containing it must induce a
        connected subtree.
        """
        for variable in self._cardinalities:
            containing = [i for i, c in enumerate(self.cliques) if variable in c]
            if len(containing) <= 1:
                continue
            sub = self.tree.subgraph(containing)
            if not nx.is_connected(sub):
                return False
        return True

    def check_calibration(self, atol: float = 1e-9) -> bool:
        """Verify neighbouring cliques agree on their separators."""
        self._require_calibration()
        for u, v in self.tree.edges:
            sep_vars = self._separators[frozenset((u, v))].variables
            mu = self._potentials[u].marginal_onto(sep_vars)
            mv = self._potentials[v].marginal_onto(sep_vars)
            if not mu.allclose(mv, atol=atol):
                return False
        return True

    def propagation_counters(self) -> PropagationCounters:
        """Cumulative engine work counters (zeros before first calibration
        or on the ``engine=False`` reference path).

        With only one engine alive (the common case) this returns the
        live counters object; with both a single-query and a batched
        engine it returns a combined snapshot.
        """
        if self._batch_engine is None:
            if self._engine is not None:
                return self._engine.counters
            return PropagationCounters()
        if self._engine is None:
            return self._batch_engine.counters
        combined = PropagationCounters()
        combined.add(self._engine.counters)
        combined.add(self._batch_engine.counters)
        return combined

    def engine_factor_bytes(self) -> int:
        """Bytes held by the engines' preallocated belief/message/scratch
        buffers (0 before first calibration or with ``engine=False``).
        A batched engine contributes ``K x`` the single-query footprint."""
        total = self._engine.factor_bytes if self._engine is not None else 0
        if self._batch_engine is not None:
            total += self._batch_engine.factor_bytes
        return total

    def max_clique_size(self) -> int:
        """State-space size of the largest clique table."""
        return max(p.size for p in self._potentials) if self._potentials else 0

    def stats(self) -> Dict[str, float]:
        """Structure statistics for reports."""
        return {
            "cliques": len(self.cliques),
            "max_clique_vars": max((len(c) for c in self.cliques), default=0),
            "max_clique_states": self.max_clique_size(),
            "fill_ins": len(self.fill_ins),
            "total_table_entries": sum(p.size for p in self._potentials),
        }

    def __repr__(self) -> str:
        return (
            f"JunctionTree(cliques={len(self.cliques)}, "
            f"max_clique={max((len(c) for c in self.cliques), default=0)})"
        )
