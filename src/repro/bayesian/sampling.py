"""Approximate inference by sampling.

Forward (ancestral) sampling and likelihood weighting.  These serve as
statistical cross-checks of the exact engines and as the machinery
behind statistically-simulative baselines.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.bayesian.network import BayesianNetwork
from repro.errors import ZeroBeliefError


def forward_sample(
    bn: BayesianNetwork,
    n_samples: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Draw ancestral samples from the joint distribution.

    Returns a mapping from variable name to an integer state array of
    length ``n_samples``.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = rng or np.random.default_rng()
    bn.validate()
    samples: Dict[str, np.ndarray] = {}
    for node in bn.topological_order():
        cpd = bn.cpd(node)
        card = cpd.cardinality
        table = cpd.to_factor().values
        if not cpd.parents:
            probs = table
            cdf = np.cumsum(probs)
            u = rng.random(n_samples)
            samples[node] = np.searchsorted(cdf, u).clip(0, card - 1).astype(np.int64)
        else:
            # Row-index each sample's parent configuration, then inverse-CDF.
            flat_table = table.reshape(-1, card)
            strides = np.ones(len(cpd.parents), dtype=np.int64)
            for k in range(len(cpd.parents) - 2, -1, -1):
                strides[k] = strides[k + 1] * table.shape[k + 1]
            row = np.zeros(n_samples, dtype=np.int64)
            for k, parent in enumerate(cpd.parents):
                row += samples[parent] * strides[k]
            cdfs = np.cumsum(flat_table[row], axis=1)
            u = rng.random(n_samples)[:, None]
            samples[node] = (u > cdfs[:, :-1]).sum(axis=1).astype(np.int64)
    return samples


def sample_marginal(
    bn: BayesianNetwork,
    variable: str,
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Monte-Carlo estimate of a prior marginal."""
    samples = forward_sample(bn, n_samples, rng)
    card = bn.cardinality(variable)
    counts = np.bincount(samples[variable], minlength=card).astype(np.float64)
    return counts / counts.sum()


def likelihood_weighting(
    bn: BayesianNetwork,
    targets: Sequence[str],
    evidence: Mapping[str, int],
    n_samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Posterior marginals under evidence via likelihood weighting.

    Evidence variables are clamped; each sample is weighted by the
    likelihood of the clamped values given its sampled parents.
    """
    rng = rng or np.random.default_rng()
    bn.validate()
    evidence = dict(evidence)
    samples: Dict[str, np.ndarray] = {}
    weights = np.ones(n_samples)
    for node in bn.topological_order():
        cpd = bn.cpd(node)
        card = cpd.cardinality
        table = cpd.to_factor().values
        flat_table = table.reshape(-1, card)
        if cpd.parents:
            strides = np.ones(len(cpd.parents), dtype=np.int64)
            for k in range(len(cpd.parents) - 2, -1, -1):
                strides[k] = strides[k + 1] * table.shape[k + 1]
            row = np.zeros(n_samples, dtype=np.int64)
            for k, parent in enumerate(cpd.parents):
                row += samples[parent] * strides[k]
        else:
            row = np.zeros(n_samples, dtype=np.int64)
        probs = flat_table[row]
        if node in evidence:
            state = evidence[node]
            samples[node] = np.full(n_samples, state, dtype=np.int64)
            weights *= probs[:, state]
        else:
            cdfs = np.cumsum(probs, axis=1)
            u = rng.random(n_samples)[:, None]
            samples[node] = (u > cdfs[:, :-1]).sum(axis=1).astype(np.int64)

    total = weights.sum()
    if total <= 0:
        raise ZeroBeliefError("all sample weights are zero (impossible evidence?)")
    result: Dict[str, np.ndarray] = {}
    for target in targets:
        card = bn.cardinality(target)
        est = np.zeros(card)
        for state in range(card):
            est[state] = weights[samples[target] == state].sum()
        result[target] = est / total
    return result
