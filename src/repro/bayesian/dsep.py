"""d-separation (Pearl's Definition 2) and related structural queries.

Implemented with the classical reduction: ``X`` is d-separated from ``Y``
by ``Z`` in DAG ``D`` iff ``X`` and ``Y`` are separated by ``Z`` in the
*moralized ancestral graph* of ``X ∪ Y ∪ Z`` (Lauritzen et al.).  This
form is short, obviously correct, and fast enough for the sizes we use
it at (tests and Theorem-3 verification).
"""

from __future__ import annotations

from typing import Iterable, Set

import networkx as nx


def ancestral_subgraph(dag: nx.DiGraph, nodes: Iterable[str]) -> nx.DiGraph:
    """Induced subgraph on ``nodes`` and all their ancestors."""
    keep: Set[str] = set()
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if node in keep:
            continue
        keep.add(node)
        stack.extend(dag.predecessors(node))
    return dag.subgraph(keep).copy()


def moralize_graph(dag: nx.DiGraph) -> nx.Graph:
    """Moral graph: marry all parents of each node, drop directions."""
    moral = nx.Graph()
    moral.add_nodes_from(dag.nodes)
    moral.add_edges_from((u, v) for u, v in dag.edges)
    for node in dag.nodes:
        parents = list(dag.predecessors(node))
        for i in range(len(parents)):
            for j in range(i + 1, len(parents)):
                moral.add_edge(parents[i], parents[j])
    return moral


def d_separated(
    dag: nx.DiGraph,
    x: Iterable[str],
    y: Iterable[str],
    z: Iterable[str] = (),
) -> bool:
    """True iff ``X`` is d-separated from ``Y`` given ``Z`` in ``dag``.

    Raises
    ------
    ValueError
        If the sets overlap or reference unknown nodes.
    """
    x_set, y_set, z_set = set(x), set(y), set(z)
    if x_set & y_set or x_set & z_set or y_set & z_set:
        raise ValueError("X, Y, Z must be pairwise disjoint")
    unknown = (x_set | y_set | z_set) - set(dag.nodes)
    if unknown:
        raise ValueError(f"unknown nodes {sorted(unknown)}")
    if not x_set or not y_set:
        return True

    ancestral = ancestral_subgraph(dag, x_set | y_set | z_set)
    moral = moralize_graph(ancestral)
    moral.remove_nodes_from(z_set)

    # Separated iff no path from any X to any Y in the punctured moral graph.
    reachable: Set[str] = set()
    stack = [n for n in x_set if n in moral]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(moral.neighbors(node))
    return not (reachable & y_set)


def all_d_separations(dag: nx.DiGraph, max_conditioning: int = 2):
    """Enumerate (x, y, z) singleton-pair d-separations up to a set size.

    Yields tuples ``(x, y, z_frozenset)`` with ``x < y`` lexicographically.
    Exponential in ``max_conditioning``; intended for tests on small DAGs.
    """
    from itertools import combinations

    nodes = sorted(dag.nodes)
    for x, y in combinations(nodes, 2):
        rest = [n for n in nodes if n not in (x, y)]
        for size in range(max_conditioning + 1):
            for z in combinations(rest, size):
                if d_separated(dag, {x}, {y}, set(z)):
                    yield x, y, frozenset(z)
