"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 10 ** -precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are fixed-point at ``precision`` digits (general format for
    extreme magnitudes); columns auto-size to the widest cell.
    """
    text_rows: List[List[str]] = [
        [_format_cell(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def rows_from_dicts(
    dicts: Iterable[Mapping[str, Cell]], keys: Sequence[str]
) -> List[List[Cell]]:
    """Extract ordered rows from a list of dict records."""
    return [[record.get(k, "-") for k in keys] for record in dicts]
