"""Error metrics matching the paper's Table 1 columns.

Per circuit the paper reports, over all nodes:

- ``µ Err``: mean absolute error between estimated and simulated
  switching activity,
- ``σ Err``: standard deviation of that error,
- ``% Error``: relative difference of the *average* switching activity
  (estimated vs. simulated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """Node-level error statistics between two activity maps."""

    mean_abs_error: float
    std_error: float
    max_abs_error: float
    percent_error_of_means: float
    n_lines: int

    def as_row(self) -> Dict[str, float]:
        return {
            "mu_err": self.mean_abs_error,
            "sigma_err": self.std_error,
            "max_err": self.max_abs_error,
            "pct_err": self.percent_error_of_means,
            "lines": self.n_lines,
        }


def error_statistics(
    estimated: Mapping[str, float], reference: Mapping[str, float]
) -> ErrorStats:
    """Compute Table 1-style error statistics.

    Parameters
    ----------
    estimated, reference:
        Switching activity per line; keys must match exactly (use the
        same circuit's line set for both).
    """
    if set(estimated) != set(reference):
        missing = set(estimated) ^ set(reference)
        raise KeyError(f"line sets differ; symmetric difference {sorted(missing)[:5]}")
    if not estimated:
        raise ValueError("empty activity maps")
    lines = sorted(estimated)
    est = np.array([estimated[ln] for ln in lines])
    ref = np.array([reference[ln] for ln in lines])
    errors = est - ref
    max_abs = float(np.max(np.abs(errors)))
    # np.mean's division round-off can push the mean of identical values
    # one ULP above the max; clamp to keep mean <= max exact.
    return ErrorStats(
        mean_abs_error=min(float(np.mean(np.abs(errors))), max_abs),
        std_error=float(np.std(errors)),
        max_abs_error=max_abs,
        percent_error_of_means=percent_error_of_means(estimated, reference),
        n_lines=len(lines),
    )


def percent_error_of_means(
    estimated: Mapping[str, float], reference: Mapping[str, float]
) -> float:
    """``100 * |mean(est) - mean(ref)| / mean(ref)`` (Table 1's %Error)."""
    est_mean = float(np.mean(list(estimated.values())))
    ref_mean = float(np.mean(list(reference.values())))
    if ref_mean == 0:
        return 0.0 if est_mean == 0 else float("inf")
    return 100.0 * abs(est_mean - ref_mean) / ref_mean
