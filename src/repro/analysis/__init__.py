"""Error metrics, timing helpers and table formatting for experiments."""

from repro.analysis.metrics import (
    ErrorStats,
    error_statistics,
    percent_error_of_means,
)
from repro.analysis.tables import format_table

__all__ = [
    "ErrorStats",
    "error_statistics",
    "format_table",
    "percent_error_of_means",
]
