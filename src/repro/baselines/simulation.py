"""Zero-delay logic simulation -- the ground-truth estimator.

The paper validates its Bayesian-network estimates against logic
simulation with pseudo-random input streams; this module is that
reference.  Input vector *pairs* are drawn from the same
:class:`~repro.core.inputs.InputModel` the estimator uses, both cycles
are simulated, and per-line transition counts accumulate into empirical
4-state distributions.  Evaluation is vectorized over patterns and
processed in batches to bound memory on multi-thousand-line circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import N_STATES, switching_probability


@dataclass
class SimulationResult:
    """Empirical transition statistics from logic simulation."""

    #: empirical 4-state distribution per line
    distributions: Dict[str, np.ndarray]
    #: number of vector pairs simulated
    n_pairs: int

    def switching(self, line: str) -> float:
        return switching_probability(self.distributions[line])

    @property
    def activities(self) -> Dict[str, float]:
        return {ln: self.switching(ln) for ln in self.distributions}

    def mean_activity(self) -> float:
        acts = self.activities
        return float(np.mean(list(acts.values()))) if acts else 0.0


def simulate_switching(
    circuit: Circuit,
    input_model: Optional[InputModel] = None,
    n_pairs: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 16_384,
) -> SimulationResult:
    """Estimate per-line transition distributions by logic simulation.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    input_model:
        Input statistics; vector pairs are drawn from this model
        (default: independent fair coins, the paper's random streams).
    n_pairs:
        Total number of consecutive-cycle vector pairs.
    batch_size:
        Patterns evaluated per vectorized pass (memory knob).
    """
    if n_pairs < 1:
        raise ValueError("n_pairs must be >= 1")
    model = input_model if input_model is not None else IndependentInputs(0.5)
    rng = rng or np.random.default_rng()

    counts = {line: np.zeros(N_STATES, dtype=np.int64) for line in circuit.lines}
    remaining = n_pairs
    while remaining > 0:
        batch = min(batch_size, remaining)
        prev_in, curr_in = model.sample_pairs(circuit.inputs, batch, rng)
        prev_vals = circuit.evaluate_vectors(prev_in)
        curr_vals = circuit.evaluate_vectors(curr_in)
        for line in circuit.lines:
            states = (prev_vals[line].astype(np.int64) << 1) | curr_vals[line]
            counts[line] += np.bincount(states, minlength=N_STATES)
        remaining -= batch

    distributions = {
        line: count.astype(np.float64) / n_pairs for line, count in counts.items()
    }
    return SimulationResult(distributions=distributions, n_pairs=n_pairs)


def simulate_sequential_switching(
    circuit: Circuit,
    state_map,
    input_model: Optional[InputModel] = None,
    n_cycles: int = 100_000,
    warmup: int = 256,
    n_walkers: int = 512,
    rng: Optional[np.random.Generator] = None,
) -> SimulationResult:
    """Ground truth for scan-converted *sequential* circuits.

    Runs ``n_walkers`` independent synchronous machines in parallel:
    each cycle draws fresh primary-input vectors from ``input_model``,
    evaluates the combinational core, feeds every next-state line back
    into its present-state line (``state_map``), and counts per-line
    transitions between consecutive cycles after a warm-up period.

    The per-cycle input draws are temporally independent (the random
    streams of the paper's experiments); states evolve with their true
    joint feedback dynamics, so this measures exactly what the fixpoint
    estimator of :mod:`repro.core.sequential` approximates.
    """
    if n_cycles < 2:
        raise ValueError("n_cycles must be >= 2")
    model = input_model if input_model is not None else IndependentInputs(0.5)
    rng = rng or np.random.default_rng()
    state_map = dict(state_map)
    true_inputs = [ln for ln in circuit.inputs if ln not in state_map]
    input_index = {name: j for j, name in enumerate(circuit.inputs)}

    matrix = np.zeros((n_walkers, circuit.num_inputs), dtype=np.uint8)
    # Random initial state, random initial inputs.
    for name in circuit.inputs:
        matrix[:, input_index[name]] = rng.integers(0, 2, n_walkers, dtype=np.uint8)

    counts = {line: np.zeros(N_STATES, dtype=np.int64) for line in circuit.lines}
    total_pairs = 0
    previous_values = None
    steps = max(2, (warmup + n_cycles) // n_walkers + 1)
    for step in range(steps):
        if true_inputs:
            _, fresh = model.sample_pairs(true_inputs, n_walkers, rng)
            for j, name in enumerate(true_inputs):
                matrix[:, input_index[name]] = fresh[:, j]
        # Copy: evaluate_vectors exposes input columns as views, and the
        # matrix is mutated in place for the next cycle.
        values = circuit.evaluate_vectors(matrix.copy())
        if previous_values is not None and step * n_walkers >= warmup:
            for line in circuit.lines:
                states = (previous_values[line].astype(np.int64) << 1) | values[line]
                counts[line] += np.bincount(states, minlength=N_STATES)
            total_pairs += n_walkers
        previous_values = values
        for present, nxt in state_map.items():
            matrix[:, input_index[present]] = values[nxt]

    distributions = {
        line: count.astype(np.float64) / max(total_pairs, 1)
        for line, count in counts.items()
    }
    return SimulationResult(distributions=distributions, n_pairs=total_pairs)
