"""Monte-Carlo switching estimation with a stopping criterion.

The statistically-simulative baseline (Burch, Najm & Trick style):
simulate in rounds and stop when the half-width of the normal-theory
confidence interval for the mean circuit activity falls below a target
relative error.  Unlike the fixed-budget ground truth in
:mod:`repro.baselines.simulation`, the sample size here is adaptive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.simulation import simulate_switching
from repro.circuits.netlist import Circuit
from repro.core.inputs import InputModel
from repro.core.states import N_STATES


@dataclass
class MonteCarloResult:
    """Adaptive Monte-Carlo estimate with convergence metadata."""

    distributions: Dict[str, np.ndarray]
    n_pairs: int
    converged: bool
    half_width: float

    def switching(self, line: str) -> float:
        dist = self.distributions[line]
        return float(dist[1] + dist[2])

    def mean_activity(self) -> float:
        return float(
            np.mean([self.switching(line) for line in self.distributions])
        )


def monte_carlo_switching(
    circuit: Circuit,
    input_model: Optional[InputModel] = None,
    relative_error: float = 0.01,
    confidence_z: float = 2.576,
    round_size: int = 4_096,
    max_pairs: int = 500_000,
    rng: Optional[np.random.Generator] = None,
) -> MonteCarloResult:
    """Simulate until the mean-activity estimate is statistically tight.

    Parameters
    ----------
    relative_error:
        Target half-width of the confidence interval, relative to the
        running mean activity.
    confidence_z:
        Normal quantile (2.576 = 99% confidence, the classic choice).
    round_size:
        Vector pairs per round.
    max_pairs:
        Hard budget; the result reports ``converged=False`` if hit.
    """
    if relative_error <= 0:
        raise ValueError("relative_error must be positive")
    rng = rng or np.random.default_rng()

    counts: Dict[str, np.ndarray] = {}
    total = 0
    per_round_means = []
    half_width = float("inf")
    converged = False

    while total < max_pairs:
        result = simulate_switching(
            circuit, input_model, n_pairs=round_size, rng=rng
        )
        for line, dist in result.distributions.items():
            counts.setdefault(line, np.zeros(N_STATES))
            counts[line] += dist * round_size
        total += round_size
        per_round_means.append(result.mean_activity())

        if len(per_round_means) >= 3:
            mean = float(np.mean(per_round_means))
            sem = float(np.std(per_round_means, ddof=1)) / np.sqrt(
                len(per_round_means)
            )
            half_width = confidence_z * sem
            if mean > 0 and half_width <= relative_error * mean:
                converged = True
                break

    distributions = {line: c / total for line, c in counts.items()}
    return MonteCarloResult(
        distributions=distributions,
        n_pairs=total,
        converged=converged,
        half_width=half_width,
    )
