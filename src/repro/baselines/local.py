"""Depth-bounded exact local-cone propagation.

The "approximate higher-order correlation" class of baselines
(Schneider et al. '96; local-OBDD tagged simulation of Ding et al.):
for every line, the joint distribution over its transitive fanin is
computed *exactly* but only up to a bounded structural depth.  Lines at
the cut are treated as independent with their previously estimated
4-state distributions, so correlation between cut lines is lost --
increasing the depth trades time for accuracy and converges to the
exact answer.

The cone evaluation is vectorized: all joint states of the cone's cut
inputs are enumerated as one batch and pushed through the cone at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.cpt import _transition_function
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import N_STATES, switching_probability


@dataclass
class LocalConeResult:
    """Per-line 4-state distributions from depth-bounded cones."""

    distributions: Dict[str, np.ndarray]
    #: actual cone depth used per line (after input-budget shrinking)
    depths: Dict[str, int]

    def switching(self, line: str) -> float:
        return switching_probability(self.distributions[line])

    @property
    def activities(self) -> Dict[str, float]:
        return {ln: self.switching(ln) for ln in self.distributions}

    def mean_activity(self) -> float:
        acts = self.activities
        return float(np.mean(list(acts.values()))) if acts else 0.0


def _bounded_cone(
    circuit: Circuit, line: str, depth: int, max_cut: int, position: Dict[str, int]
) -> tuple:
    """Cone of ``line`` up to ``depth`` gate levels, shrunk to respect
    the cut-size budget.  Returns (cone_lines_topo, cut_lines, used_depth).

    Depth never shrinks below 1 (the line's own gate must be evaluated);
    a single gate whose fan-in exceeds the budget is accepted as-is.
    """
    for d in range(max(depth, 1), 0, -1):
        cone: Set[str] = {line}
        frontier = {line}
        for _ in range(d):
            next_frontier = set()
            for ln in frontier:
                gate = circuit.driver(ln)
                if gate is None:
                    continue
                for src in gate.inputs:
                    if src not in cone:
                        next_frontier.add(src)
            cone |= next_frontier
            frontier = next_frontier
        # A cone line is evaluated only if all its sources are in the cone;
        # everything else is a cut input.
        cut = sorted(
            ln
            for ln in cone
            if circuit.driver(ln) is None
            or not all(src in cone for src in circuit.driver(ln).inputs)
        )
        if len(cut) <= max_cut or d == 1:
            ordered = sorted(cone, key=position.__getitem__)
            return ordered, cut, d
    raise AssertionError("unreachable: d == 1 always returns")  # pragma: no cover


def local_cone_switching(
    circuit: Circuit,
    input_model: Optional[InputModel] = None,
    depth: int = 3,
    max_cut_inputs: int = 6,
) -> LocalConeResult:
    """Estimate switching with depth-bounded exact cones.

    Parameters
    ----------
    depth:
        Gate levels of exact joint modeling behind each line.
    max_cut_inputs:
        Budget on cut width; cones whose cut exceeds it shrink their
        depth (enumeration is ``4^cut``).
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    distributions: Dict[str, np.ndarray] = {
        name: np.asarray(model.marginal_distribution(name), dtype=np.float64)
        for name in circuit.inputs
    }
    depths: Dict[str, int] = {name: 0 for name in circuit.inputs}
    position = {ln: i for i, ln in enumerate(circuit.topological_order())}

    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is None:
            continue
        cone_lines, cut, used_depth = _bounded_cone(
            circuit, line, depth, max_cut_inputs, position
        )
        depths[line] = used_depth

        # Enumerate all joint cut states as one vectorized batch.
        n_cut = len(cut)
        n_rows = N_STATES ** n_cut
        grids = np.meshgrid(*([np.arange(N_STATES)] * n_cut), indexing="ij")
        cut_states = {ln: g.reshape(-1) for ln, g in zip(cut, grids)}
        weights = np.ones(n_rows)
        for ln in cut:
            weights *= distributions[ln][cut_states[ln]]

        states: Dict[str, np.ndarray] = dict(cut_states)
        for ln in cone_lines:
            if ln in states:
                continue
            g = circuit.driver(ln)
            table = np.asarray(_transition_function(g.gate_type, g.arity))
            flat = np.zeros(n_rows, dtype=np.int64)
            for src in g.inputs:
                flat = flat * N_STATES + states[src]
            states[ln] = table[flat]

        dist = np.zeros(N_STATES)
        np.add.at(dist, states[line], weights)
        total = dist.sum()
        distributions[line] = dist / total if total > 0 else np.full(N_STATES, 0.25)

    return LocalConeResult(distributions=distributions, depths=depths)
