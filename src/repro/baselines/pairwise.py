"""Pairwise correlation-coefficient propagation (Ercolani/Marculescu style).

The classical middle ground between independence and exact modeling:
track, for every pair of lines, the spatial correlation coefficient

    C(a, b) = P(a=1, b=1) / (P(a=1) P(b=1))

and propagate it through gates, approximating every higher-order joint
as a *composition of pairwise* coefficients (Marculescu et al. 1998),
e.g. ``P(a,b,z) ~= p_a p_b p_z C_ab C_az C_bz``.  This yields closed
per-gate update rules:

- AND  ``y = a & b``:  ``p_y = p_a p_b C_ab`` and, for any other line z,
  ``C_yz = C_az C_bz`` (the composition makes ``C_ab`` cancel).
- NOT  ``y = !a``:     ``p_y = 1 - p_a``, ``C_yz = (1 - p_a C_az) / (1 - p_a)``.
- XOR via the disjoint decomposition ``a XOR b = a!b + !a b``.
- OR / NAND / NOR via De Morgan.

Under temporally independent inputs a line's consecutive values are
independent, so switching activity is exactly ``2 p (1 - p)`` given the
line's signal probability p -- the whole error of this method is the
pairwise spatial approximation, which is what the paper's Table 2
compares against the exact Bayesian network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import signal_probability

_EPS = 1e-12


@dataclass
class PairwiseResult:
    """Signal probabilities and switching activities from pairwise
    correlation propagation."""

    signal_probabilities: Dict[str, float]
    activities: Dict[str, float]

    def switching(self, line: str) -> float:
        return self.activities[line]

    def mean_activity(self) -> float:
        return float(np.mean(list(self.activities.values())))


class _PairwiseState:
    """Dense working state: per-line signal probability p and the
    correlation-coefficient matrix over materialized lines."""

    def __init__(self, capacity: int):
        self.p = np.zeros(capacity)
        self.corr = np.ones((capacity, capacity), dtype=np.float64)
        self.count = 0

    def add_line(self, p: float, row: Optional[np.ndarray] = None) -> int:
        idx = self.count
        self.p[idx] = p
        if row is not None:
            self.corr[idx, :idx] = row[:idx]
            self.corr[:idx, idx] = row[:idx]
        # Diagonal C(z, z) = P(z, z)/p^2 = 1/p.
        self.corr[idx, idx] = 1.0 / max(p, _EPS)
        self.count += 1
        return idx

    def row(self, idx: int) -> np.ndarray:
        """C(line idx, z) for all materialized z, as a copy."""
        return self.corr[idx, : self.count].copy()

    def clip_row(self, p_y: float, row: np.ndarray) -> np.ndarray:
        """Enforce the Frechet bound ``P(y, z) <= min(p_y, p_z)``."""
        p_z = self.p[: self.count]
        upper = 1.0 / np.maximum(np.maximum(p_y, p_z), _EPS)
        return np.clip(row, 0.0, upper)


def _complement(
    state: _PairwiseState, p: float, row: np.ndarray
) -> Tuple[float, np.ndarray]:
    """``C(!a, z) = (1 - p_a C(a, z)) / (1 - p_a)``."""
    pc = 1.0 - p
    new_row = (1.0 - p * row) / max(pc, _EPS)
    return pc, state.clip_row(pc, new_row)


def _complement_scalar(p: float, c: float) -> float:
    """C(!a, b) from C(a, b), complementing the *first* argument."""
    return (1.0 - p * c) / max(1.0 - p, _EPS)


def _and2(
    state: _PairwiseState,
    pa: float,
    row_a: np.ndarray,
    pb: float,
    row_b: np.ndarray,
    c_ab: float,
) -> Tuple[float, np.ndarray]:
    """AND of two literals under pairwise composition: ``C_yz = C_az C_bz``."""
    py = float(np.clip(pa * pb * c_ab, 0.0, min(pa, pb)))
    return py, state.clip_row(py, row_a * row_b)


class _Literal:
    """A (possibly complemented) view of a materialized line."""

    __slots__ = ("p", "row", "base_index", "negated")

    def __init__(self, p: float, row: np.ndarray, base_index: int, negated: bool):
        self.p = p
        self.row = row
        self.base_index = base_index
        self.negated = negated


def _make_literal(state: _PairwiseState, idx: int, negated: bool) -> _Literal:
    p, row = state.p[idx], state.row(idx)
    if negated:
        p, row = _complement(state, p, row)
    return _Literal(p, row, idx, negated)


def _pair_coefficient(state: _PairwiseState, acc_row: np.ndarray, lit: _Literal) -> float:
    """C(accumulator, literal): read the literal's base column out of the
    accumulator's correlation row, complementing if needed."""
    c = float(acc_row[lit.base_index])
    if lit.negated:
        c = _complement_scalar(state.p[lit.base_index], c)
    return max(c, 0.0)


def _fold_and(state: _PairwiseState, literals: List[_Literal]) -> Tuple[float, np.ndarray]:
    """Left fold of AND over two or more literals."""
    p_acc, row_acc = literals[0].p, literals[0].row
    for lit in literals[1:]:
        c_ab = _pair_coefficient(state, row_acc, lit)
        p_acc, row_acc = _and2(state, p_acc, row_acc, lit.p, lit.row, c_ab)
    return p_acc, row_acc


def _fold_xor(state: _PairwiseState, literals: List[_Literal]) -> Tuple[float, np.ndarray]:
    """Left fold of XOR via the disjoint sum ``a XOR b = a!b + !a b``.

    Probabilities of the two disjoint terms add; the correlation row of
    the result is the probability-weighted mix of the terms' rows.
    """
    p_acc, row_acc = literals[0].p, literals[0].row
    for lit in literals[1:]:
        p_b, row_b = lit.p, lit.row
        c_ab = _pair_coefficient(state, row_acc, lit)
        p_na, row_na = _complement(state, p_acc, row_acc)
        p_nb, row_nb = _complement(state, p_b, row_b)
        c_a_nb = _complement_scalar(p_b, c_ab)  # C(a, !b) via symmetry
        c_na_b = _complement_scalar(p_acc, c_ab)
        p1, row1 = _and2(state, p_acc, row_acc, p_nb, row_nb, c_a_nb)
        p2, row2 = _and2(state, p_na, row_na, p_b, row_b, c_na_b)
        p_y = p1 + p2
        if p_y <= _EPS:
            row_y = np.ones_like(row1)
        else:
            row_y = (p1 * row1 + p2 * row2) / p_y
        p_acc = float(np.clip(p_y, 0.0, 1.0))
        row_acc = state.clip_row(p_acc, row_y)
    return p_acc, row_acc


def pairwise_switching(
    circuit: Circuit, input_model: Optional[InputModel] = None
) -> PairwiseResult:
    """Estimate switching by pairwise correlation propagation.

    Inputs are taken spatially independent (the model supplies p per
    input); every internal line gets a signal probability computed with
    the pairwise rules and a switching activity of ``2 p (1 - p)``
    (exact temporal treatment for temporally independent streams).

    Memory is O(n^2) in the number of lines (the C matrix); fine for
    ISCAS-scale circuits.
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    state = _PairwiseState(len(circuit.lines))
    index: Dict[str, int] = {}

    for name in circuit.inputs:
        p = signal_probability(model.marginal_distribution(name))
        index[name] = state.add_line(p)

    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is None:
            continue
        gt = gate.gate_type
        in_idx = [index[s] for s in gate.inputs]

        if gt is GateType.BUF:
            lit = _make_literal(state, in_idx[0], negated=False)
            p_y, row_y = lit.p, lit.row
        elif gt is GateType.NOT:
            lit = _make_literal(state, in_idx[0], negated=True)
            p_y, row_y = lit.p, lit.row
        elif gt in (GateType.AND, GateType.NAND):
            literals = [_make_literal(state, i, False) for i in in_idx]
            p_y, row_y = _fold_and(state, literals)
            if gt is GateType.NAND:
                p_y, row_y = _complement(state, p_y, row_y)
        elif gt in (GateType.OR, GateType.NOR):
            literals = [_make_literal(state, i, True) for i in in_idx]
            p_y, row_y = _fold_and(state, literals)
            if gt is GateType.OR:
                p_y, row_y = _complement(state, p_y, row_y)
        elif gt in (GateType.XOR, GateType.XNOR):
            literals = [_make_literal(state, i, False) for i in in_idx]
            p_y, row_y = _fold_xor(state, literals)
            if gt is GateType.XNOR:
                p_y, row_y = _complement(state, p_y, row_y)
        else:  # pragma: no cover - exhaustive over gate types
            raise ValueError(f"unsupported gate type {gt}")

        p_y = float(np.clip(p_y, 0.0, 1.0))
        index[line] = state.add_line(p_y, row_y)

    probabilities = {name: float(state.p[idx]) for name, idx in index.items()}
    activities = {name: 2.0 * p * (1.0 - p) for name, p in probabilities.items()}
    return PairwiseResult(signal_probabilities=probabilities, activities=activities)
