"""Reference and comparison estimators.

- :mod:`repro.baselines.simulation` -- vectorized zero-delay logic
  simulation; the ground truth of the paper's Tables 1 and 2.
- :mod:`repro.baselines.montecarlo` -- Monte-Carlo estimation with a
  statistical stopping criterion (Burch/Najm style).
- :mod:`repro.baselines.independent` -- spatial-independence signal
  probability propagation and Najm-style transition density.
- :mod:`repro.baselines.pairwise` -- Ercolani/Marculescu-style pairwise
  correlation-coefficient propagation.
- :mod:`repro.baselines.local` -- depth-bounded exact local-cone
  propagation (the "approximate higher-order correlation" class of
  Schneider et al.).
"""

from repro.baselines.independent import (
    independence_switching,
    transition_density,
)
from repro.baselines.local import local_cone_switching
from repro.baselines.montecarlo import monte_carlo_switching
from repro.baselines.pairwise import pairwise_switching
from repro.baselines.simulation import simulate_switching

__all__ = [
    "independence_switching",
    "local_cone_switching",
    "monte_carlo_switching",
    "pairwise_switching",
    "simulate_switching",
    "transition_density",
]
