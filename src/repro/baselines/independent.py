"""Spatial-independence baselines.

Two classical fast estimators that ignore spatial correlation:

- :func:`independence_switching` propagates each line's full 4-state
  transition distribution assuming the gate inputs' transition variables
  are *independent* (Parker-McCluskey signal probability, lifted to
  transition space).  Temporal correlation of each line with itself is
  kept; correlation *between* lines is dropped -- precisely the
  assumption the paper's Bayesian network removes.
- :func:`transition_density` is Najm's transition-density propagation:
  ``D(y) = sum_i P(dy/dx_i) D(x_i)`` with Boolean-difference
  probabilities computed under independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.core.cpt import _decode_flat, _transition_function
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import N_STATES, signal_probability, switching_probability


@dataclass
class IndependenceResult:
    """Per-line transition distributions under the independence assumption."""

    distributions: Dict[str, np.ndarray]

    def switching(self, line: str) -> float:
        return switching_probability(self.distributions[line])

    @property
    def activities(self) -> Dict[str, float]:
        return {ln: self.switching(ln) for ln in self.distributions}

    def mean_activity(self) -> float:
        acts = self.activities
        return float(np.mean(list(acts.values()))) if acts else 0.0


def independence_switching(
    circuit: Circuit, input_model: Optional[InputModel] = None
) -> IndependenceResult:
    """Propagate 4-state distributions gate by gate assuming independence.

    For each gate the output distribution is computed from the *product*
    of the input marginals -- the exact computation our CPTs perform,
    minus the joint dependency structure.  Exact on fanout-free (tree)
    circuits; biased wherever fanout reconverges.
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    distributions: Dict[str, np.ndarray] = {
        name: np.asarray(model.marginal_distribution(name), dtype=np.float64)
        for name in circuit.inputs
    }
    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is None:
            continue
        arity = gate.arity
        function_table = _transition_function(gate.gate_type, arity)
        out = np.zeros(N_STATES)
        parent_dists = [distributions[src] for src in gate.inputs]
        for flat, out_state in enumerate(function_table):
            states = _decode_flat(flat, arity)
            weight = 1.0
            for dist, s in zip(parent_dists, states):
                weight *= dist[s]
            out[out_state] += weight
        distributions[line] = out
    return IndependenceResult(distributions=distributions)


#: Boolean-difference probability rules per gate type, given the other
#: inputs' signal probabilities (spatial independence assumed).
def _boolean_difference_probability(
    gate_type: GateType, other_probs: np.ndarray
) -> float:
    if gate_type in (GateType.AND, GateType.NAND):
        return float(np.prod(other_probs))
    if gate_type in (GateType.OR, GateType.NOR):
        return float(np.prod(1.0 - other_probs))
    # XOR/XNOR/NOT/BUF: the output always toggles when one input toggles.
    return 1.0


@dataclass
class TransitionDensityResult:
    """Najm-style transition densities (toggles per cycle) per line."""

    densities: Dict[str, float]
    signal_probabilities: Dict[str, float]

    def density(self, line: str) -> float:
        return self.densities[line]

    def mean_density(self) -> float:
        return float(np.mean(list(self.densities.values())))


def transition_density(
    circuit: Circuit, input_model: Optional[InputModel] = None
) -> TransitionDensityResult:
    """Propagate transition densities through the circuit.

    ``D(y) = sum_i P(dy/dx_i) D(x_i)`` where the Boolean-difference
    probability is evaluated under spatial independence.  Densities are
    additive upper-ish estimates: simultaneous input toggles are double
    counted, so ``D`` can exceed the true switching activity (and 1.0).
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    probs: Dict[str, float] = {}
    densities: Dict[str, float] = {}
    for name in circuit.inputs:
        dist = model.marginal_distribution(name)
        probs[name] = signal_probability(dist)
        densities[name] = switching_probability(dist)

    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is None:
            continue
        in_probs = np.array([probs[s] for s in gate.inputs])
        # Signal probability under independence.
        if gate.gate_type in (GateType.AND, GateType.NAND):
            p = float(np.prod(in_probs))
        elif gate.gate_type in (GateType.OR, GateType.NOR):
            p = 1.0 - float(np.prod(1.0 - in_probs))
        elif gate.gate_type in (GateType.XOR, GateType.XNOR):
            p = 0.0
            for q in in_probs:
                p = p * (1 - q) + (1 - p) * q
        else:  # NOT / BUF
            p = float(in_probs[0])
        if gate.gate_type in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR):
            p = 1.0 - p
        probs[line] = p

        density = 0.0
        for i, src in enumerate(gate.inputs):
            others = np.delete(in_probs, i)
            density += _boolean_difference_probability(gate.gate_type, others) * (
                densities[src]
            )
        densities[line] = density

    return TransitionDensityResult(densities=densities, signal_probabilities=probs)
