"""Dependency-preserving switching-activity estimation with Bayesian networks.

A from-scratch reproduction of Bhanja & Ranganathan, *"Dependency
Preserving Probabilistic Modeling of Switching Activity using Bayesian
Networks"* (DAC 2001): combinational circuits are mapped to
LIDAG-structured Bayesian networks over 4-state transition variables,
compiled to junction trees, and queried by local message passing for
exact per-line switching activity.

Quickstart::

    from repro import estimate
    from repro.circuits.examples import c17

    result = estimate(c17())          # backend="auto" picks the method
    print(result.switching("22"))

or, compile once and query many times (optionally through the on-disk
compile cache)::

    from repro import compile_model

    model = compile_model(c17(), backend="junction-tree", cache=True)
    result = model.query()

Packages
--------
- :mod:`repro.circuits` -- gate-level netlists, parsers, generators.
- :mod:`repro.bayesian` -- the exact inference engine (factors, junction
  trees, variable elimination, sampling).
- :mod:`repro.core` -- the LIDAG switching model (the paper's
  contribution), multi-BN segmentation, and the backend layer
  (:mod:`repro.core.backend`) every estimate routes through.
- :mod:`repro.baselines` -- logic simulation ground truth and classical
  approximate estimators.
- :mod:`repro.bdd` -- ROBDDs with exact signal probability.
- :mod:`repro.power` -- switched-capacitance power model.
- :mod:`repro.analysis` -- error metrics and report tables.
- :mod:`repro.experiments` -- the paper's tables and figures.
"""

from repro.core import (
    CorrelatedGroupInputs,
    IndependentInputs,
    SegmentedEstimator,
    SwitchingActivityEstimator,
    SwitchingEstimate,
    TemporalInputs,
    build_lidag,
    exact_switching_by_enumeration,
)
from repro.core.backend import (
    Backend,
    CliqueBudgetExceeded,
    CompileCache,
    CompiledModel,
    Method,
    available_backends,
    compile_model,
    estimate,
    estimate_many,
    get_backend,
    register_backend,
)
from repro.core.backend.facade import DEFAULT_FALLBACK_CHAIN
from repro.errors import (
    CompileError,
    InputModelError,
    PropagationError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "CliqueBudgetExceeded",
    "CompileError",
    "DEFAULT_FALLBACK_CHAIN",
    "InputModelError",
    "PropagationError",
    "ReproError",
    "ValidationError",
    "CompileCache",
    "CompiledModel",
    "CorrelatedGroupInputs",
    "IndependentInputs",
    "Method",
    "SegmentedEstimator",
    "SwitchingActivityEstimator",
    "SwitchingEstimate",
    "TemporalInputs",
    "available_backends",
    "build_lidag",
    "compile_model",
    "estimate",
    "estimate_many",
    "exact_switching_by_enumeration",
    "get_backend",
    "register_backend",
    "__version__",
]
