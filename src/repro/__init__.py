"""Dependency-preserving switching-activity estimation with Bayesian networks.

A from-scratch reproduction of Bhanja & Ranganathan, *"Dependency
Preserving Probabilistic Modeling of Switching Activity using Bayesian
Networks"* (DAC 2001): combinational circuits are mapped to
LIDAG-structured Bayesian networks over 4-state transition variables,
compiled to junction trees, and queried by local message passing for
exact per-line switching activity.

Quickstart::

    from repro import SwitchingActivityEstimator
    from repro.circuits.examples import c17

    estimate = SwitchingActivityEstimator(c17()).estimate()
    print(estimate.switching("22"))

Packages
--------
- :mod:`repro.circuits` -- gate-level netlists, parsers, generators.
- :mod:`repro.bayesian` -- the exact inference engine (factors, junction
  trees, variable elimination, sampling).
- :mod:`repro.core` -- the LIDAG switching model (the paper's
  contribution) and multi-BN segmentation.
- :mod:`repro.baselines` -- logic simulation ground truth and classical
  approximate estimators.
- :mod:`repro.bdd` -- ROBDDs with exact signal probability.
- :mod:`repro.power` -- switched-capacitance power model.
- :mod:`repro.analysis` -- error metrics and report tables.
- :mod:`repro.experiments` -- the paper's tables and figures.
"""

from repro.core import (
    CorrelatedGroupInputs,
    IndependentInputs,
    SegmentedEstimator,
    SwitchingActivityEstimator,
    SwitchingEstimate,
    TemporalInputs,
    build_lidag,
    exact_switching_by_enumeration,
)

__version__ = "1.0.0"

__all__ = [
    "CorrelatedGroupInputs",
    "IndependentInputs",
    "SegmentedEstimator",
    "SwitchingActivityEstimator",
    "SwitchingEstimate",
    "TemporalInputs",
    "build_lidag",
    "exact_switching_by_enumeration",
    "__version__",
]
