"""Client for the estimation server, plus a load generator.

:class:`ServeClient` is a thin stdlib (``urllib``) JSON client.
:func:`run_load` drives a server in the two canonical load-testing
shapes:

- **closed loop** -- ``concurrency`` workers each issue their next
  request the moment the previous one returns.  Throughput is
  demand-limited; this is the shape that shows dynamic batching's
  throughput win (16 closed-loop clients on one circuit coalesce into
  ~16-wide propagations).
- **open loop** -- requests *arrive* on a fixed schedule (``rate`` per
  second) regardless of completions, the shape real traffic has.
  Latency is measured from the scheduled arrival, so queueing delay
  under overload is visible instead of silently throttled away.

Orthogonally to the loop shape, ``workload`` picks the *scenario
stream* the requests carry.  ``"uniform"`` (the default, and the
pre-existing behavior) gives every request a distinct scenario;
``"zipf:A"``, ``"hotspot:P"``, and ``"burst:N"`` replay a small
scenario universe with the skew real sweep traffic has (synthesis
loops hammering one operating point, bursts of identical what-if
queries), which is what the server's result cache and single-flight
dedup are measured against.

Latency percentiles use the nearest-rank method on the full sample
set (no reservoir -- the load run owns its samples).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "LoadReport",
    "ServeClient",
    "ServeRequestError",
    "run_load",
    "workload_scenario_ids",
]

#: golden-ratio low-discrepancy stream, matching benchmarks/common.py's
#: salted scenarios: distinct p_one per request, deterministic per salt.
PHI = 0.6180339887498949


class ServeRequestError(ReproError):
    """The server answered with an error payload (or not at all)."""

    def __init__(self, message: str, status: int = 0, kind: str = ""):
        super().__init__(message)
        self.status = status
        self.kind = kind


def scenario_spec(index: int, salt: float = 0.0) -> Dict[str, Any]:
    """Deterministic scenario ``index``: independent inputs with a
    low-discrepancy ``p_one`` in [0.05, 0.95]."""
    return {
        "kind": "independent",
        "p_one": round(0.05 + ((index * PHI + salt) % 1.0) * 0.9, 12),
    }


#: scenario ids the skewed workloads draw from; small enough that a
#: hot stream revisits ids within one load run, large enough that a
#: uniform draw over it still misses a cold cache most of the time.
WORKLOAD_UNIVERSE = 64

#: fixed stream seed -- workloads are part of a benchmark's identity,
#: so the same (workload, requests) pair must replay the same ids.
WORKLOAD_SEED = 0x5EED


def workload_scenario_ids(
    workload: str,
    requests: int,
    universe: int = WORKLOAD_UNIVERSE,
    seed: int = WORKLOAD_SEED,
) -> Optional[List[int]]:
    """Scenario id per request index for a named workload.

    - ``"uniform"`` -- ``None``: request ``i`` carries distinct
      scenario ``i`` (the historical stream; nothing ever repeats).
    - ``"zipf:A"`` -- ids drawn from a Zipf(``A``) distribution over
      ``universe`` ranked ids (id 0 hottest).  ``A=1.1`` gives the
      heavy skew of synthesis loops re-querying one operating point.
    - ``"hotspot:P"`` -- id 0 with probability ``P``, else uniform
      over the remaining universe.
    - ``"burst:N"`` -- blocks of ``N`` consecutive requests share one
      id (``i // N``): back-to-back identical what-if queries.

    The map is a precomputed list (deterministic in ``seed``), so the
    stream is independent of worker-thread interleaving: request index
    ``i`` always carries the same scenario.
    """
    if workload == "uniform":
        return None
    name, _, param = workload.partition(":")
    try:
        value = float(param) if param else None
        if name == "zipf":
            if value is None or value <= 1.0:
                raise ReproError(
                    f"zipf workload needs an exponent > 1, got {workload!r}"
                )
            weights = [rank ** -value for rank in range(1, universe + 1)]
            total = sum(weights)
            cdf = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cdf.append(acc)
            rng = random.Random(seed)
            ids = []
            for _ in range(requests):
                u = rng.random()
                ids.append(next(i for i, c in enumerate(cdf) if u <= c))
            return ids
        if name == "hotspot":
            if value is None or not 0.0 < value <= 1.0:
                raise ReproError(
                    f"hotspot workload needs a probability in (0, 1], got {workload!r}"
                )
            rng = random.Random(seed)
            return [
                0 if rng.random() < value else rng.randrange(1, universe)
                for _ in range(requests)
            ]
        if name == "burst":
            width = int(value) if value is not None else 8
            if width < 1:
                raise ReproError(f"burst width must be >= 1, got {workload!r}")
            return [i // width for i in range(requests)]
    except ValueError:
        pass
    raise ReproError(
        f"unknown workload {workload!r} (uniform|zipf:A|hotspot:P|burst:N)"
    )


class ServeClient:
    """JSON client for one server; safe to share across threads.

    Each thread keeps one persistent (keep-alive) connection -- a fresh
    TCP handshake per request caps a loopback load run at the accept
    queue, not the estimator.  A stale connection (server restarted,
    keep-alive dropped) is rebuilt and the request retried once.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ReproError(f"unsupported scheme {split.scheme!r} (http only)")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self.timeout = timeout
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            # http.client sends headers and body in separate writes;
            # without TCP_NODELAY, Nagle parks the body behind the
            # server's delayed ACK (~40ms per request on loopback).
            connection.connect()
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None if payload is None else json.dumps(payload)
        last_error: Optional[Exception] = None
        for attempt in range(2):
            connection = self._connection()
            try:
                connection.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                status = response.status
                data = response.read()
            except (http.client.HTTPException, TimeoutError, OSError) as exc:
                self._drop_connection()
                last_error = exc
                continue
            if status >= 400:
                try:
                    error = json.loads(data.decode()).get("error", {})
                except ValueError:
                    error = {}
                raise ServeRequestError(
                    error.get("message", f"HTTP {status}"),
                    status=status,
                    kind=error.get("type", ""),
                )
            try:
                return json.loads(data.decode())
            except ValueError as exc:
                raise ServeRequestError(f"invalid JSON response: {exc}", status=status)
        raise ServeRequestError(f"server unreachable: {last_error}") from None

    def estimate(
        self,
        circuit: str,
        scenario: Optional[Dict[str, Any]] = None,
        backend: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
        detail: Optional[str] = None,
    ) -> dict:
        payload: Dict[str, Any] = {"circuit": circuit}
        if scenario is not None:
            payload["scenario"] = scenario
        if backend is not None:
            payload["backend"] = backend
        if options:
            payload["options"] = options
        if detail is not None:
            payload["detail"] = detail
        return self._request("POST", "/estimate", payload)

    def estimate_many(
        self,
        circuit: str,
        scenarios: List[Dict[str, Any]],
        backend: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> dict:
        payload: Dict[str, Any] = {"circuit": circuit, "scenarios": scenarios}
        if backend is not None:
            payload["backend"] = backend
        if options:
            payload["options"] = options
        return self._request("POST", "/estimate_many", payload)

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")


def _percentile(sorted_samples: List[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, int(round(q * (len(sorted_samples) - 1)))))
    return sorted_samples[rank]


@dataclass
class LoadReport:
    """One load run's results (the ``bench_serving.py`` row material)."""

    mode: str
    circuit: str
    concurrency: int
    requests: int
    errors: int
    duration_seconds: float
    scenarios_per_sec: float
    p50_latency_seconds: float
    p90_latency_seconds: float
    p99_latency_seconds: float
    max_latency_seconds: float
    rate: Optional[float] = None
    workload: str = "uniform"
    first_error: str = ""
    latencies: List[float] = field(default_factory=list, repr=False)

    def to_row(self) -> Dict[str, Any]:
        row = {
            "mode": self.mode,
            "circuit": self.circuit,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "scenarios_per_sec": self.scenarios_per_sec,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p90_latency_seconds": self.p90_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "max_latency_seconds": self.max_latency_seconds,
        }
        if self.rate is not None:
            row["rate"] = self.rate
        # Only skewed streams tag their rows, so rows from the historic
        # uniform stream keep their pre-workload identity in diffs.
        if self.workload != "uniform":
            row["workload"] = self.workload
        return row


def run_load(
    base_url: str,
    circuit: str,
    mode: str = "closed",
    concurrency: int = 4,
    requests: int = 100,
    rate: float = 50.0,
    salt: float = 0.0,
    backend: Optional[str] = None,
    options: Optional[Dict[str, Any]] = None,
    detail: Optional[str] = None,
    timeout: float = 60.0,
    warmup: bool = True,
    workload: str = "uniform",
) -> LoadReport:
    """Drive ``requests`` scenarios at the server and report latency.

    ``mode="closed"``: ``concurrency`` workers in a send-receive loop.
    ``mode="open"``: arrivals scheduled every ``1/rate`` seconds,
    dispatched by up to ``concurrency`` workers; latency counts from
    the scheduled arrival time (queueing delay included).
    ``workload`` names the scenario stream
    (:func:`workload_scenario_ids`); skewed streams repeat scenario
    ids, which is the traffic shape the server's result cache serves.
    """
    if mode not in ("closed", "open"):
        raise ReproError(f"unknown load mode {mode!r} (closed|open)")
    if concurrency < 1 or requests < 1:
        raise ReproError("concurrency and requests must be >= 1")
    scenario_ids = workload_scenario_ids(workload, requests)
    client = ServeClient(base_url, timeout=timeout)
    if warmup:
        # Pays compile + pool admission outside the timed window.
        client.estimate(circuit, scenario_spec(0, salt), backend=backend, options=options)

    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(concurrency + 1)
    counter = {"next": 0}

    def take_index() -> Optional[int]:
        with lock:
            if counter["next"] >= requests:
                return None
            counter["next"] += 1
            return counter["next"] - 1

    start_at = [0.0]  # filled after the barrier releases

    def worker() -> None:
        start_barrier.wait()
        while True:
            index = take_index()
            if index is None:
                return
            if mode == "open":
                scheduled = start_at[0] + index / rate
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                began = scheduled
            else:
                began = time.perf_counter()
            scenario_id = (
                scenario_ids[index] if scenario_ids is not None else index
            )
            try:
                client.estimate(
                    circuit, scenario_spec(scenario_id, salt),
                    backend=backend, options=options, detail=detail,
                )
            except ServeRequestError as exc:
                with lock:
                    errors.append(str(exc))
                continue
            elapsed = time.perf_counter() - began
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, name=f"load-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    start_at[0] = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start_at[0]

    ordered = sorted(latencies)
    completed = len(latencies)
    return LoadReport(
        mode=mode,
        circuit=circuit,
        concurrency=concurrency,
        requests=requests,
        errors=len(errors),
        duration_seconds=duration,
        scenarios_per_sec=completed / duration if duration > 0 else 0.0,
        p50_latency_seconds=_percentile(ordered, 0.50),
        p90_latency_seconds=_percentile(ordered, 0.90),
        p99_latency_seconds=_percentile(ordered, 0.99),
        max_latency_seconds=ordered[-1] if ordered else 0.0,
        rate=rate if mode == "open" else None,
        workload=workload,
        first_error=errors[0] if errors else "",
        latencies=latencies,
    )
