"""Dynamic batching: coalesce concurrent scenarios into one propagation.

The engine's batched sweep is the whole win of serving resident models:
PR 5 measured 2.3-12.3x scenarios/sec at K=64 versus looped single
queries.  A server only harvests that if *concurrent clients'* requests
-- each one scenario -- merge into one ``query_many`` call.  The
classic inference-server recipe applies:

- Requests are grouped into *lanes*, one per pooled model (same
  compile-cache fingerprint => same lane => batchable).
- A fixed worker pool drains lanes.  A worker claiming a non-empty
  lane waits up to ``linger_seconds`` for it to fill to ``max_batch``
  before propagating -- the latency-for-throughput knob.  The wait
  ends early the moment the batch is full, and a lone request on an
  otherwise idle server never waits longer than the linger.
- At most one worker drains a given lane at a time, so batches stay
  maximal instead of two workers splitting one burst.

``max_batch=1`` degenerates to unbatched request-at-a-time serving
(the baseline ``bench_serving.py`` compares against).  The batcher
knows nothing about HTTP or estimation: it coalesces ``(lane key,
item)`` pairs and hands ``(key, [items])`` to the ``run_batch``
callable, fulfilling one :class:`concurrent.futures.Future` per item.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Tuple

from repro.obs.metrics import get_metrics

__all__ = ["BatchStats", "DynamicBatcher"]


@dataclass
class BatchStats:
    """Cumulative batcher accounting (also mirrored into ``repro.obs``).

    ``items`` counts batch *slots* (unique propagations); ``deduped``
    counts requests that piggybacked on an already-parked identical
    slot, so ``items + deduped`` is the number of requests served.
    """

    items: int = 0
    batches: int = 0
    full_batches: int = 0
    deduped: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, size: int, max_batch: int) -> None:
        with self.lock:
            self.items += size
            self.batches += 1
            if size >= max_batch:
                self.full_batches += 1
        registry = get_metrics()
        if registry.enabled:
            registry.counter("serve.batch.items").inc(size)
            registry.counter("serve.batch.batches").inc(1)
            registry.histogram("serve.batch.size").observe(float(size))

    def record_dedup(self) -> None:
        with self.lock:
            self.deduped += 1
        registry = get_metrics()
        if registry.enabled:
            registry.counter("serve.batcher.dedup").inc(1)

    def mean_batch_size(self) -> float:
        with self.lock:
            return self.items / self.batches if self.batches else 0.0


class _Slot:
    """One batch slot: an item plus every future waiting on its result."""

    __slots__ = ("item", "dedup_key", "futures")

    def __init__(self, item: Any, dedup_key: Any) -> None:
        self.item = item
        self.dedup_key = dedup_key
        self.futures: List[Future] = [Future()]


class _Lane:
    """Pending slots for one model key; drained by at most one worker."""

    __slots__ = ("items", "claimed", "oldest")

    def __init__(self) -> None:
        self.items: Deque[_Slot] = deque()
        self.claimed = False
        self.oldest = 0.0


class DynamicBatcher:
    """Worker pool + per-model lanes with a bounded linger window.

    Parameters
    ----------
    run_batch:
        ``run_batch(key, items) -> list[result]`` -- must return one
        result per item, in order.  An exception fails every future in
        the batch (each client sees the same typed error).
    max_batch:
        Scenario ceiling per propagation (engine memory scales with it).
    linger_seconds:
        How long a claimed, non-full lane waits for company.  ``0``
        batches only what has already queued up (pure opportunistic
        coalescing -- under bursts batches still form because requests
        queue while every worker is busy).
    workers:
        Drain threads.  One is enough to saturate a single core with
        batched propagation; more overlap pickle/IO with compute.
    """

    def __init__(
        self,
        run_batch: Callable[[str, List[Any]], List[Any]],
        max_batch: int = 16,
        linger_seconds: float = 0.002,
        workers: int = 2,
        name: str = "batcher",
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.linger_seconds = max(0.0, linger_seconds)
        self.stats = BatchStats()
        self._lanes: "OrderedDict[str, _Lane]" = OrderedDict()
        self._cond = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, key: str, item: Any, dedup_key: Any = None) -> "Future[Any]":
        """Enqueue one item for ``key``'s lane; resolves with its result.

        ``dedup_key`` (optional, hashable) enables single-flight
        coalescing: when an identical ``dedup_key`` is already *parked*
        in the lane -- submitted but not yet handed to a worker -- this
        request shares that slot and its one propagation fans out to
        every waiting future.  Slots already being propagated are never
        joined (their batch is in flight), so dedup only ever removes
        bitwise-identical duplicate work from a pending batch.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = _Lane()
            if dedup_key is not None:
                for slot in lane.items:
                    if slot.dedup_key == dedup_key:
                        future: "Future[Any]" = Future()
                        slot.futures.append(future)
                        self.stats.record_dedup()
                        return future
            if not lane.items:
                lane.oldest = time.monotonic()
            slot = _Slot(item, dedup_key)
            lane.items.append(slot)
            self._cond.notify()
            return slot.futures[0]

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain pending lanes, join the workers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _claim(self) -> "Tuple[str, _Lane] | None":
        """Next unclaimed non-empty lane, oldest head-of-line first."""
        best = None
        for key, lane in self._lanes.items():
            if lane.items and not lane.claimed:
                if best is None or lane.oldest < best[1].oldest:
                    best = (key, lane)
        if best is not None:
            best[1].claimed = True
        return best

    def _worker(self) -> None:
        while True:
            with self._cond:
                claimed = self._claim()
                while claimed is None:
                    if self._closed:
                        return
                    self._cond.wait(timeout=0.1)
                    claimed = self._claim()
                key, lane = claimed
                # Linger: wait (releasing the lock) for the lane to
                # fill, but never past the oldest item's deadline.
                deadline = lane.oldest + self.linger_seconds
                while len(lane.items) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = [
                    lane.items.popleft()
                    for _ in range(min(self.max_batch, len(lane.items)))
                ]
                if lane.items:
                    # Leftovers start a fresh linger window and another
                    # worker may claim them while we propagate.
                    lane.oldest = time.monotonic()
                    self._cond.notify()
                lane.claimed = False
            self._process(key, batch)

    def _process(self, key: str, batch: List[_Slot]) -> None:
        items = [slot.item for slot in batch]
        self.stats.record(len(items), self.max_batch)
        try:
            results = self._run_batch(key, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except BaseException as exc:
            for slot in batch:
                for future in slot.futures:
                    if not future.cancelled():
                        future.set_exception(exc)
            return
        for slot, result in zip(batch, results):
            for future in slot.futures:
                if not future.cancelled():
                    future.set_result(result)
