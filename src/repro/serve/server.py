"""Stdlib HTTP/JSON front end over the model pool and dynamic batcher.

Endpoints (all JSON):

- ``POST /estimate`` -- ``{"circuit": name-or-path, "scenario": spec,
  "backend"?: name, "options"?: {...}}``.  The scenario spec uses the
  :func:`repro.core.inputs.input_model_from_spec` vocabulary.  The
  request joins its model's batching lane and returns that scenario's
  switching estimate.
- ``POST /estimate_many`` -- same, with ``"scenarios": [spec, ...]``;
  the scenarios are fanned into the batcher together and the response
  carries one result per scenario, in order.
- ``GET /metrics`` -- a schema-valid ``repro.obs`` report: the global
  registry snapshot (including the ``serve.latency.*`` per-endpoint
  histograms with p50/p90/p99) with pool/batcher stats in ``meta``.
- ``GET /healthz`` -- liveness plus uptime and resident-model count.

Determinism contract: every checked-out replica is
``reset_propagation()``-ed before it propagates, so each batch is a
*full* pass -- a pure function of the scenario potentials.  Responses
are therefore bitwise-identical to a cold ``facade.estimate`` no
matter how requests interleave, which batches they share, or what the
replica served before (the concurrency stress test pins this).  A
``ZeroBeliefError`` inside a shared batch triggers a per-scenario
retry so one degenerate scenario fails alone, not its batch-mates.

Two reuse layers ride on that purity without weakening it: the
fingerprint-keyed result cache (``repro.core.rcache``) replays the
stored marginals of a previous full pass for an exact scenario repeat
(same pool key, same canonical scenario digest), and the batcher's
single-flight dedup merges concurrent identical requests into one
batch slot.  Both key on the canonical digest of the *induced input
CPDs*, the only scenario-dependent propagation inputs, so a hit or a
merged request returns exactly the bytes a fresh propagation would
have produced.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.circuits import suite
from repro.circuits.netlist import Circuit
from repro.core.backend.base import CompiledModel
from repro.core.backend.facade import resolve_cache
from repro.core.estimator import SwitchingEstimate
from repro.core.rcache import ResultCache, scenario_digest
from repro.core.inputs import InputModel, input_model_from_spec
from repro.errors import ReproError, UnknownCircuitError, ZeroBeliefError
from repro.obs.metrics import enable_metrics, get_metrics
from repro.obs.report import build_report
from repro.serve.batcher import DynamicBatcher
from repro.serve.pool import ModelPool, PoolTimeout, PooledModel

__all__ = ["EstimationServer", "ServerConfig", "install_signal_handlers"]


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8337
    backend: str = "auto"
    options: Dict[str, Any] = field(default_factory=dict)
    cache: Any = True
    max_models: int = 8
    engines_per_model: int = 2
    max_batch: int = 16
    linger_ms: float = 2.0
    workers: int = 2
    request_timeout: float = 60.0
    #: LRU capacity of the fingerprint-keyed result cache (exact repeat
    #: scenarios replay stored marginals without propagating); 0 turns
    #: result caching off.
    result_cache_entries: int = 4096


class EstimationServer:
    """Owns the pool, the batcher, and the HTTP listener.

    ``start()`` binds the socket (``port=0`` picks a free one; the
    bound port is ``self.port``) and serves on a background thread;
    ``serve_forever()`` serves on the calling thread (the CLI path).
    ``close()`` drains and joins everything.
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        enable_metrics(reset=False)
        self.pool = ModelPool(
            cache=resolve_cache(self.config.cache),
            max_models=self.config.max_models,
            engines_per_model=self.config.engines_per_model,
        )
        self.batcher = DynamicBatcher(
            self._run_batch,
            max_batch=self.config.max_batch,
            linger_seconds=self.config.linger_ms / 1000.0,
            workers=self.config.workers,
        )
        self.rcache: Optional[ResultCache] = (
            ResultCache(max_entries=self.config.result_cache_entries)
            if self.config.result_cache_entries > 0
            else None
        )
        self.started = time.time()
        self._circuits: Dict[str, Circuit] = {}
        self._circuits_lock = threading.Lock()
        # Exact-spec digest memo: (pool key, canonical spec JSON) ->
        # scenario digest.  A spec that repeats byte-for-byte (the
        # skewed-traffic common case) skips rebuilding its induced
        # input CPDs; a differently-spelled equivalent spec misses the
        # memo, recomputes the canonical digest, and still collides at
        # the cache-key level.  Bounded FIFO, same order of size as the
        # result cache it fronts.
        self._digest_memo: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        self._digest_memo_lock = threading.Lock()
        self._digest_memo_limit = max(
            1024, 2 * self.config.result_cache_entries
        )
        handler = _make_handler(self)
        server_cls = type(
            "ReproHTTPServer",
            (ThreadingHTTPServer,),
            # Default accept backlog is 5; a 16-client closed-loop burst
            # of fresh connections overflows it and the retransmit shows
            # up as a spurious ~1s p99.
            {"request_queue_size": 128, "daemon_threads": True},
        )
        self.httpd = server_cls((self.config.host, self.config.port), handler)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EstimationServer":
        self._serving = True
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self._serving = False

    def shutdown(self) -> None:
        self.httpd.shutdown()

    def close(self) -> None:
        # shutdown() blocks on the serve loop's exit handshake and
        # would hang forever if serve_forever never ran.
        if self._serving:
            self.httpd.shutdown()
            self._serving = False
        self.httpd.server_close()
        self.batcher.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "EstimationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request handling (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def _resolve_circuit(self, spec: str) -> Circuit:
        with self._circuits_lock:
            circuit = self._circuits.get(spec)
        if circuit is not None:
            return circuit
        if spec in suite.available_circuits():
            circuit = suite.load_circuit(spec)
        else:
            path = Path(spec)
            if path.suffix == ".bench" and path.is_file():
                from repro.circuits.bench import parse_bench_file

                circuit = parse_bench_file(path)
            else:
                raise UnknownCircuitError(
                    f"unknown circuit {spec!r}: not a suite name "
                    f"({', '.join(suite.available_circuits())}) and not a "
                    ".bench file on the server"
                )
        with self._circuits_lock:
            self._circuits[spec] = circuit
        return circuit

    def _parse_scenario(self, circuit: Circuit, spec: Any) -> InputModel:
        if not isinstance(spec, dict):
            raise ReproError(f"scenario must be a spec object, got {type(spec).__name__}")
        try:
            model = input_model_from_spec(spec)
            # Probe each input's marginal (a few tiny array builds, no
            # CPD construction): bad values -- out-of-range p_one, a
            # misshapen matrix -- fail admission with a 400 here
            # instead of surfacing mid-propagation as a 500.
            for name in circuit.inputs:
                model.marginal_distribution(name)
            return model
        except ReproError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise ReproError(f"malformed scenario spec: {exc}") from None

    def _scenario_key(
        self, entry: PooledModel, scenario: InputModel, raw: Any
    ) -> Tuple[str, str]:
        """``(fingerprint, digest)`` result-cache key for one scenario.

        The digest half is memoized on the spec's canonical JSON bytes:
        skewed traffic repeats specs verbatim, and rebuilding the
        induced input CPDs per request would dominate the hit path on
        wide circuits.  A differently-spelled equivalent spec misses
        the memo, pays the canonical :func:`scenario_digest` once, and
        still collides at the cache-key level.
        """
        token = None
        if isinstance(raw, dict):
            try:
                token = json.dumps(raw, sort_keys=True, separators=(",", ":"))
            except (TypeError, ValueError):
                token = None
        if token is not None:
            memo_key = (entry.key, token)
            with self._digest_memo_lock:
                digest = self._digest_memo.get(memo_key)
            if digest is not None:
                return (entry.key, digest)
        digest = scenario_digest(entry.model.circuit, scenario)
        if token is not None:
            with self._digest_memo_lock:
                self._digest_memo[memo_key] = digest
                while len(self._digest_memo) > self._digest_memo_limit:
                    self._digest_memo.popitem(last=False)
        return (entry.key, digest)

    def _lookup(
        self, entry: PooledModel, scenario: InputModel, raw: Any, detail: str
    ) -> "Tuple[Optional[Tuple[str, str]], Optional[Dict[str, Any]]]":
        """Result-cache probe for one admitted scenario.

        Returns ``(key, stored payload)``; the key is ``None`` when
        result caching is off, the payload is ``None`` on a miss.  The
        key's fingerprint half is the pool entry's compile-cache key,
        so a cached result can never outlive anything that would have
        changed the compiled model.  Marginal arrays are only copied
        out when ``detail`` actually renders them.
        """
        if self.rcache is None:
            return None, None
        key = self._scenario_key(entry, scenario, raw)
        payload = self.rcache.get(key, need_arrays=(detail == "distributions"))
        return key, payload

    def _store(
        self, key: Optional[Tuple[str, str]], result: SwitchingEstimate
    ) -> None:
        if self.rcache is not None and key is not None:
            result.result_cache_hit = False
            self.rcache.put(key, result)

    def handle_estimate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        entry, scenarios, raw, detail = self._admit(payload, one=True)
        key, cached = self._lookup(entry, scenarios[0], raw[0], detail)
        if cached is not None:
            return self._cached_payload(entry, cached, detail)
        future = self.batcher.submit(
            entry.key,
            (entry, scenarios[0]),
            dedup_key=key[1] if key is not None else None,
        )
        result = future.result(timeout=self.config.request_timeout)
        if isinstance(result, BaseException):
            raise result
        self._store(key, result)
        return self._estimate_payload(entry, result, detail)

    def handle_estimate_many(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        entry, scenarios, raw, detail = self._admit(payload, one=False)
        slots: List[Tuple[Optional[Tuple[str, str]], Any, Any]] = []
        for scenario, raw_spec in zip(scenarios, raw):
            key, cached = self._lookup(entry, scenario, raw_spec, detail)
            if cached is not None:
                slots.append((key, None, cached))
            else:
                future = self.batcher.submit(
                    entry.key,
                    (entry, scenario),
                    dedup_key=key[1] if key is not None else None,
                )
                slots.append((key, future, None))
        deadline = time.monotonic() + self.config.request_timeout
        results = []
        for key, future, cached in slots:
            if cached is not None:
                results.append(self._cached_payload(entry, cached, detail))
                continue
            result = future.result(timeout=max(0.0, deadline - time.monotonic()))
            if isinstance(result, BaseException):
                results.append(
                    {"error": {"type": type(result).__name__, "message": str(result)}}
                )
            else:
                self._store(key, result)
                results.append(self._estimate_payload(entry, result, detail))
        return {"circuit": entry.model.circuit.name, "results": results}

    _DETAILS = ("mean", "activities", "distributions")

    def _admit(
        self, payload: Dict[str, Any], one: bool
    ) -> Tuple[PooledModel, List[InputModel], List[Any], str]:
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        spec = payload.get("circuit")
        if not isinstance(spec, str) or not spec:
            raise ReproError('request is missing a "circuit" name')
        circuit = self._resolve_circuit(spec)
        if one:
            raw = [payload.get("scenario", {"kind": "independent", "p_one": 0.5})]
        else:
            raw = payload.get("scenarios")
            if not isinstance(raw, list) or not raw:
                raise ReproError('request needs a non-empty "scenarios" list')
        scenarios = [self._parse_scenario(circuit, s) for s in raw]
        detail = payload.get("detail", "activities")
        if detail not in self._DETAILS:
            raise ReproError(
                f"unknown detail {detail!r} ({'|'.join(self._DETAILS)})"
            )
        backend = payload.get("backend", self.config.backend)
        options = dict(self.config.options)
        options.update(payload.get("options") or {})
        entry = self.pool.get(
            circuit,
            backend=backend,
            timeout=self.config.request_timeout,
            **options,
        )
        return entry, scenarios, raw, detail

    def _cached_payload(
        self, entry: PooledModel, payload: Dict[str, Any], detail: str
    ) -> Dict[str, Any]:
        """Response for a result-cache hit, rendered from the stored
        floats (no estimate materialization, no activity recompute)."""
        response = {
            "circuit": entry.model.circuit.name,
            "backend": entry.model.backend_name,
            "method": payload["method"],
            "mean_activity": payload["mean_activity"],
            "result_cache_hit": True,
        }
        if detail in ("activities", "distributions"):
            response["activities"] = payload["activities"]
        if detail == "distributions":
            response["distributions"] = {
                line: [float(v) for v in dist]
                for line, dist in payload["distributions"].items()
            }
        return response

    def _estimate_payload(
        self, entry: PooledModel, estimate: SwitchingEstimate, detail: str
    ) -> Dict[str, Any]:
        payload = {
            "circuit": entry.model.circuit.name,
            "backend": entry.model.backend_name,
            "method": estimate.method,
            "mean_activity": float(estimate.mean_activity()),
        }
        if estimate.result_cache_hit is not None:
            payload["result_cache_hit"] = estimate.result_cache_hit
        if detail in ("activities", "distributions"):
            payload["activities"] = {
                line: float(p) for line, p in estimate.activities.items()
            }
        if detail == "distributions":
            payload["distributions"] = {
                line: [float(v) for v in dist]
                for line, dist in estimate.distributions.items()
            }
        return payload

    # ------------------------------------------------------------------
    # Batch execution (called from batcher worker threads)
    # ------------------------------------------------------------------

    def _run_batch(
        self, key: str, items: List[Tuple[PooledModel, InputModel]]
    ) -> List[Any]:
        entry = items[0][0]
        models = [model for _, model in items]
        replica = entry.engines.checkout(timeout=self.config.request_timeout)
        try:
            try:
                self._reset(replica)
                return list(replica.query_many(models))
            except Exception:
                if len(models) == 1:
                    raise
                # One bad scenario (zero-mass belief, out-of-range
                # probability -- the propagation path validates lazily)
                # must not fail the batch it happened to share; re-run
                # each scenario alone and hand the error only to its
                # own requester.  Full passes are scenario-independent,
                # so the survivors' results are unchanged.
                results: List[Any] = []
                for model in models:
                    self._reset(replica)
                    try:
                        results.extend(replica.query_many([model]))
                    except ReproError as exc:
                        results.append(exc)
                return results
        finally:
            entry.engines.checkin(replica)

    @staticmethod
    def _reset(replica: CompiledModel) -> None:
        reset = getattr(getattr(replica, "estimator", None), "reset_propagation", None)
        if reset is not None:
            reset()

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def metrics_report(self) -> Dict[str, Any]:
        return build_report(
            meta={
                "kind": "repro-serve",
                "uptime_seconds": time.time() - self.started,
                "config": {
                    "backend": self.config.backend,
                    "max_batch": self.config.max_batch,
                    "linger_ms": self.config.linger_ms,
                    "workers": self.config.workers,
                    "max_models": self.config.max_models,
                    "engines_per_model": self.config.engines_per_model,
                    "result_cache_entries": self.config.result_cache_entries,
                },
                "pool": self.pool.stats(),
                "batcher": {
                    "items": self.batcher.stats.items,
                    "batches": self.batcher.stats.batches,
                    "full_batches": self.batcher.stats.full_batches,
                    "deduped": self.batcher.stats.deduped,
                    "mean_batch_size": self.batcher.stats.mean_batch_size(),
                },
                "result_cache": (
                    self.rcache.stats() if self.rcache is not None else None
                ),
            }
        )

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "resident_models": self.pool.stats()["resident"],
        }


def _make_handler(server: EstimationServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"
        # One send() per response: a buffered writer plus TCP_NODELAY.
        # Unbuffered wfile emits headers and body as separate small
        # segments, and Nagle holds the second one for the peer's
        # delayed ACK -- a flat ~40ms stall per request on loopback.
        wbufsize = 64 * 1024
        disable_nagle_algorithm = True

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # request logging is the metrics registry's job

        # ---------------- helpers ----------------

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                return json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ReproError(f"request body is not valid JSON: {exc}")

        def _dispatch(self, endpoint: str, fn) -> None:
            registry = get_metrics()
            start = time.perf_counter()
            try:
                payload = fn()
            except PoolTimeout as exc:
                self._error(endpoint, 503, exc)
            except ReproError as exc:
                self._error(endpoint, 400, exc)
            except TimeoutError as exc:
                self._error(endpoint, 503, exc)
            except Exception as exc:  # pragma: no cover - defensive
                self._error(endpoint, 500, exc)
            else:
                registry.counter(f"serve.requests.{endpoint}").inc(1)
                registry.histogram(f"serve.latency.{endpoint}").observe(
                    time.perf_counter() - start
                )
                self._send_json(200, payload)

        def _error(self, endpoint: str, status: int, exc: BaseException) -> None:
            get_metrics().counter(f"serve.errors.{endpoint}").inc(1)
            self._send_json(
                status,
                {"error": {"type": type(exc).__name__, "message": str(exc)}},
            )

        # ---------------- routes ----------------

        def do_GET(self) -> None:
            if self.path == "/metrics":
                self._dispatch("metrics", server.metrics_report)
            elif self.path == "/healthz":
                self._dispatch("healthz", server.health)
            else:
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": self.path}}
                )

        def do_POST(self) -> None:
            if self.path == "/estimate":
                self._dispatch(
                    "estimate", lambda: server.handle_estimate(self._body())
                )
            elif self.path == "/estimate_many":
                self._dispatch(
                    "estimate_many",
                    lambda: server.handle_estimate_many(self._body()),
                )
            else:
                self._send_json(
                    404, {"error": {"type": "NotFound", "message": self.path}}
                )

    return Handler


def install_signal_handlers(server: EstimationServer) -> None:
    """SIGTERM/SIGINT -> stop accepting, drain, and return from
    ``serve_forever`` so the CLI can exit 0 (the CI smoke step sends
    SIGTERM and requires a clean shutdown)."""

    def _stop(signum, frame):
        # shutdown() blocks until serve_forever returns, which would
        # deadlock inside a handler running on the serving thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
