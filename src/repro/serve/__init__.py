"""Resident estimation service: hot models, dynamic batching, metrics.

Every ``repro estimate`` invocation pays process startup plus compile
(or compile-cache deserialization) before the first propagation.  This
package keeps the compiled half of the paper's *compile once,
re-propagate in milliseconds* bargain resident:

- :mod:`repro.serve.pool` -- an LRU-managed in-memory pool of
  :class:`~repro.core.backend.base.CompiledModel` artifacts keyed by
  the compile-cache fingerprint, each with a pool of *engine replicas*
  so no two in-flight requests ever share propagation buffers.
- :mod:`repro.serve.batcher` -- inference-server-style dynamic
  batching: concurrent clients' scenarios for one model coalesce into
  a single batched ``query_many`` propagation (configurable max batch
  ``K`` and max linger).
- :mod:`repro.serve.server` -- a stdlib-only HTTP/JSON front end
  (``http.server``) with a ``/metrics`` endpoint exporting the
  ``repro.obs`` registry plus per-endpoint latency histograms.
- :mod:`repro.serve.client` -- a matching client and a closed-/open-
  loop load generator feeding ``benchmarks/bench_serving.py``.

Start one with ``repro serve``; drive it with ``repro client``.
"""

from repro.serve.batcher import BatchStats, DynamicBatcher
from repro.serve.client import (
    LoadReport,
    ServeClient,
    run_load,
    workload_scenario_ids,
)
from repro.serve.pool import EnginePool, ModelPool, PooledModel
from repro.serve.server import EstimationServer, ServerConfig

__all__ = [
    "BatchStats",
    "DynamicBatcher",
    "EnginePool",
    "EstimationServer",
    "LoadReport",
    "ModelPool",
    "PooledModel",
    "ServeClient",
    "ServerConfig",
    "run_load",
    "workload_scenario_ids",
]
