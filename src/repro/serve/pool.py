"""In-memory model pool with per-model engine replicas.

Two layers, one invariant:

- :class:`ModelPool` keeps hot :class:`~repro.core.backend.base.
  CompiledModel` artifacts pinned in memory under an LRU policy, keyed
  by the *compile-cache fingerprint* (:meth:`CompileCache.key_for`:
  netlist hash + backend + options token + artifact schema version).
  Reusing the cache key means the resident pool, the on-disk cache,
  and a cold ``repro estimate`` all agree on what "the same compile"
  means.

- :class:`EnginePool` hands out *engine replicas* of one pooled model.
  A compiled artifact's propagation engine mutates preallocated
  belief/message buffers in place, so a model checked out by one
  request must never be visible to another
  (:class:`~repro.errors.ConcurrentPropagationError` is the tripwire
  for exactly that bug).  Replicas are deserialized from the master
  artifact's pickled bytes -- the same round-trip a compile-cache hit
  pays, a few ms, against tens of ms to seconds for a recompile -- and
  created lazily up to ``engines_per_model``; checkout blocks when all
  replicas are in flight.

Both layers publish ``serve.pool.*`` counters/gauges into the global
``repro.obs`` registry when it is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.circuits.netlist import Circuit
from repro.core.backend.base import CompiledModel
from repro.core.backend.cache import CompileCache
from repro.core.backend.facade import compile_model
from repro.core.backend.registry import get_backend
from repro.errors import ReproError
from repro.obs.metrics import get_metrics

__all__ = ["EnginePool", "ModelPool", "PooledModel", "PoolTimeout"]


class PoolTimeout(ReproError, TimeoutError):
    """An engine checkout (or model compile wait) exceeded its deadline."""


class EnginePool:
    """Replica checkout for one compiled model.

    ``checkout()`` returns a private :class:`CompiledModel` replica; the
    caller must ``checkin()`` it (or use :meth:`lease`).  Replicas are
    materialized lazily from the master's serialized bytes, never more
    than ``capacity`` at once; further checkouts block until a replica
    is returned.
    """

    def __init__(self, master: CompiledModel, capacity: int = 2):
        if capacity < 1:
            raise ValueError(f"engine pool capacity must be >= 1, got {capacity}")
        self._master_bytes = master.to_bytes()
        self.capacity = capacity
        self._free: List[CompiledModel] = []
        self._created = 0
        self._cond = threading.Condition()

    def checkout(self, timeout: Optional[float] = None) -> CompiledModel:
        with self._cond:
            while True:
                if self._free:
                    return self._free.pop()
                if self._created < self.capacity:
                    self._created += 1
                    break
                if not self._cond.wait(timeout=timeout):
                    raise PoolTimeout(
                        f"no engine replica free after {timeout:.3f}s "
                        f"(capacity {self.capacity}); raise "
                        "--engines-per-model or lower concurrency"
                    )
        # Deserialize outside the lock: it can take milliseconds and
        # other threads may be returning replicas meanwhile.
        try:
            replica = CompiledModel.from_bytes(self._master_bytes)
        except BaseException:
            with self._cond:
                self._created -= 1
                self._cond.notify()
            raise
        registry = get_metrics()
        if registry.enabled:
            registry.counter("serve.pool.engines_created").inc(1)
        return replica

    def checkin(self, replica: CompiledModel) -> None:
        with self._cond:
            self._free.append(replica)
            self._cond.notify()

    @property
    def created(self) -> int:
        return self._created


class PooledModel:
    """One resident compile: the master artifact plus its engine pool."""

    def __init__(self, key: str, model: CompiledModel, engines: int):
        self.key = key
        self.model = model
        self.engines = EnginePool(model, capacity=engines)
        self.hits = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "circuit": self.model.circuit.name,
            "backend": self.model.backend_name,
            "hits": self.hits,
            "engines_created": self.engines.created,
            "engine_capacity": self.engines.capacity,
        }


class ModelPool:
    """LRU pool of compiled models keyed by compile-cache fingerprint.

    ``get()`` returns the resident :class:`PooledModel` for
    ``(circuit, backend, options)``, compiling through
    :func:`repro.core.backend.facade.compile_model` (and the on-disk
    compile cache, when one is configured) on a miss.  At most
    ``max_models`` compiles stay resident; the least recently used is
    evicted when the pool is full.

    Concurrent misses for the *same* key collapse into one compile: the
    first thread inserts a placeholder event, later threads wait on it
    instead of compiling the same circuit twice.
    """

    def __init__(
        self,
        cache: Optional[CompileCache] = None,
        max_models: int = 8,
        engines_per_model: int = 2,
    ):
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        self.cache = cache
        #: fingerprints come from CompileCache.key_for, which is a pure
        #: content hash; with no on-disk cache configured a detached
        #: instance still computes keys (it never touches the disk).
        self._keyer = cache if cache is not None else CompileCache()
        self.max_models = max_models
        self.engines_per_model = engines_per_model
        self._entries: "OrderedDict[str, PooledModel]" = OrderedDict()
        self._pending: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self.evictions = 0

    def key_for(self, circuit: Circuit, backend: str = "auto", **options: Any) -> str:
        backend_obj = get_backend(backend)
        return self._keyer.key_for(
            circuit, backend_obj.name, None, backend_obj.cache_token(**options)
        )

    def get(
        self,
        circuit: Circuit,
        backend: str = "auto",
        timeout: Optional[float] = None,
        **options: Any,
    ) -> PooledModel:
        key = self.key_for(circuit, backend, **options)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.hits += 1
                    self._publish("serve.pool.hits")
                    return entry
                pending = self._pending.get(key)
                if pending is None:
                    self._pending[key] = threading.Event()
                    break
            # Another thread is compiling this key; wait and re-check.
            if not pending.wait(timeout=timeout):
                raise PoolTimeout(
                    f"compile of {circuit.name!r} not finished after "
                    f"{timeout:.3f}s"
                )
        try:
            model = compile_model(
                circuit, backend=backend, cache=self.cache, **options
            )
            entry = PooledModel(key, model, self.engines_per_model)
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_models:
                    evicted_key, _ = self._entries.popitem(last=False)
                    self.evictions += 1
                    self._publish("serve.pool.evictions")
                    if evicted_key == key:  # max_models == 0 guard
                        raise RuntimeError("evicted the entry being inserted")
            self._publish("serve.pool.misses")
            registry = get_metrics()
            if registry.enabled:
                registry.gauge("serve.pool.resident").set(len(self._entries))
            return entry
        finally:
            with self._lock:
                self._pending.pop(key).set()

    def _publish(self, name: str) -> None:
        registry = get_metrics()
        if registry.enabled:
            registry.counter(name).inc(1)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "resident": len(self._entries),
                "max_models": self.max_models,
                "engines_per_model": self.engines_per_model,
                "evictions": self.evictions,
                "models": [e.describe() for e in self._entries.values()],
                "cache": self.cache.stats() if self.cache is not None else None,
            }
