"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli table1 [--circuits c17 alu ...] [--pairs N] [--trace FILE]
    python -m repro.cli table2 [--circuits ...] [--pairs N] [--trace FILE]
    python -m repro.cli figures
    python -m repro.cli ablations [--which triangulation|segmentation|compile|inputs]
    python -m repro.cli estimate --circuit c17 [--backend auto] [--p-one 0.5]
    python -m repro.cli sweep --circuit c17 --scenarios FILE.json [--batch K]
    python -m repro.cli stats --circuit c432s [--json out.json]
    python -m repro.cli cache ls|clear [--dir DIR]
    python -m repro.cli fuzz [--seeds N] [--max-gates N] [--out DIR]
    python -m repro.cli perf record [--quick] [--store DIR] [--baseline FILE]
    python -m repro.cli perf log [--metric M] [--circuit C] [--all-machines]
    python -m repro.cli perf diff OLD NEW [--noise-band B] [--force]

``estimate`` goes through the backend facade and the on-disk compile
cache (``--no-cache`` disables it, ``--cache-dir`` relocates it); a
second run on the same circuit loads the compiled junction trees
instead of rebuilding them.  ``--circuit`` accepts a suite name *or* a
path to a ``.bench`` netlist, which is validated before estimation;
``--fallback`` enables graceful degradation through the backend chain.
``sweep`` compiles a circuit once and batch-propagates every
input-statistics scenario from a JSON file through the compiled model
in one vectorized pass per batch.  ``cache`` lists or clears the
cached artifacts.  ``stats`` profiles
one full compile + propagate + re-propagate cycle with the
observability layer enabled and prints the span tree and metrics
(optionally exporting the schema-versioned JSON report); ``--trace
FILE`` on the experiment subcommands writes the same report for a
table run.  ``fuzz`` runs the cross-backend differential harness and
exits non-zero if any backend disagrees with the enumeration oracle.
``perf`` tracks performance over time: ``record`` measures (or ingests
``BENCH_*.json`` reports) into the append-only profile store,
``log`` renders each metric's trajectory across recorded versions, and
``diff`` statistically compares two profiles -- exit 0 no change, 1
perf regression beyond the noise band, 2 accuracy drift or profiles
that are not comparable at all.

Every anticipated failure (unknown circuit, malformed netlist, unknown
backend, infeasible input statistics, ...) exits with status 1 and a
one-line ``repro: error: ...`` message -- no traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.tables import format_table, rows_from_dicts
from repro.circuits import suite
from repro.core.inputs import IndependentInputs
from repro.errors import ReproError, UnknownCircuitError


def _write_trace(path: str, meta: dict) -> None:
    """Export the enabled obs state as a validated JSON report."""
    from repro import obs

    report = obs.validate_report(obs.build_report(meta=meta))
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote trace report to {path}")


def _maybe_traced(args, command: str):
    """Enable obs when ``--trace`` was given; return a finalizer."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return lambda: None
    from repro import obs

    obs.enable()
    return lambda: _write_trace(trace_path, {"command": command})


def _cmd_table1(args) -> None:
    from repro.experiments.table1 import TABLE1_COLUMNS, run_table1

    finish = _maybe_traced(args, "table1")
    rows = run_table1(args.circuits, n_pairs=args.pairs, seed=args.seed)
    print(
        format_table(
            TABLE1_COLUMNS,
            rows_from_dicts(rows, TABLE1_COLUMNS),
            title="Table 1: switching activity estimation by Bayesian network modeling",
        )
    )
    finish()


def _cmd_table2(args) -> None:
    from repro.experiments.table2 import TABLE2_COLUMNS, run_table2

    finish = _maybe_traced(args, "table2")
    rows = run_table2(args.circuits, n_pairs=args.pairs, seed=args.seed)
    print(
        format_table(
            TABLE2_COLUMNS,
            rows_from_dicts(rows, TABLE2_COLUMNS),
            title="Table 2: BN vs approximate dependency models",
        )
    )
    finish()


def _cmd_figures(_args) -> None:
    from repro.experiments.figures import figure_walkthrough

    data = figure_walkthrough()
    circuit = data["circuit"]
    print("Figure 1: example circuit")
    for line in circuit.internal_lines:
        print(f"  {circuit.driver(line)}")
    print("\nFigure 2: LIDAG-structured Bayesian network")
    print(f"  joint = {data['factorization']}")
    for u, v in data["lidag_edges"]:
        print(f"  X{u} -> X{v}")
    print("\nFigure 3: moralized + triangulated graph")
    print(f"  marriage edges added: {data['marriages']}")
    print(f"  triangulation fill-ins: {data['fill_ins']}")
    print("\nFigure 4: junction tree of cliques")
    for clique in data["cliques"]:
        print(f"  clique {{{', '.join('X' + x for x in clique)}}}")
    for left, right, sep in data["separators"]:
        print(
            f"  {sorted(left)} --{sorted(sep)}-- {sorted(right)}"
        )


def _cmd_ablations(args) -> None:
    from repro.experiments import ablations

    which = args.which
    if which in ("triangulation", "all"):
        rows = ablations.ablate_triangulation()
        cols = ["circuit", "heuristic", "fill_ins", "max_clique_states", "compile_s"]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Triangulation heuristics"))
        print()
    if which in ("segmentation", "all"):
        rows = ablations.ablate_segmentation()
        cols = [
            "circuit", "boundary", "lookback", "backend", "segments",
            "mu_abs_err", "sigma_err", "pct_err", "compile_s",
        ]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Segmentation knobs"))
        print()
    if which in ("compile", "all"):
        rows = ablations.ablate_compile_vs_propagate()
        cols = ["circuit", "gates", "compile_s", "mean_propagate_s", "speedup"]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Compile vs propagate"))
        print()
    if which in ("inputs", "all"):
        rows = ablations.ablate_input_models()
        cols = [
            "circuit", "input_model", "mean_activity",
            "sim_mean_activity", "mu_abs_err", "sigma_err",
        ]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Input statistics models"))


def _resolve_cli_cache(args):
    """``--no-cache``/``--cache-dir`` -> a facade ``cache`` argument."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or True


def _resolve_circuit(spec: str):
    """A suite name, or a path to a ``.bench`` netlist on disk."""
    if spec in suite.available_circuits():
        return suite.load_circuit(spec)
    path = Path(spec)
    if path.suffix == ".bench" or path.is_file():
        if not path.is_file():
            raise UnknownCircuitError(f"no such .bench file: {spec}")
        from repro.circuits.bench import parse_bench_file

        return parse_bench_file(path)
    raise UnknownCircuitError(
        f"unknown circuit {spec!r}: not a suite name "
        f"({', '.join(suite.available_circuits())}) and not a .bench file"
    )


def _refine_opts(args) -> dict:
    """Boundary-refinement options, forwarded only when requested.

    Like ``--kernel``, ``--refine`` is a backend-specific knob: the
    segmented (and auto) backends accept it and bake it into the compile
    cache key; backends without the knob would reject the option.
    """
    if not getattr(args, "refine", 0):
        return {}
    opts = {"refine": args.refine, "refine_tol": args.refine_tol}
    if args.max_iters is not None:
        opts["max_iters"] = args.max_iters
    return opts


def _cmd_estimate(args) -> None:
    from repro.core.backend import estimate

    finish = _maybe_traced(args, "estimate")
    circuit = _resolve_circuit(args.circuit)
    # --kernel is only forwarded when set: exact backends accept it and
    # bake it into the compile (and its cache key); backends without the
    # knob (enumeration, baselines) would reject the option.
    kernel_opts = {"kernel": args.kernel} if args.kernel else {}
    result = estimate(
        circuit,
        IndependentInputs(args.p_one),
        backend=args.backend,
        cache=_resolve_cli_cache(args),
        fallback=args.fallback or None,
        budget_seconds=args.budget_seconds,
        **kernel_opts,
        **_refine_opts(args),
    )
    cache_note = {True: "hit", False: "miss", None: "off"}[result.cache_hit]
    print(
        f"{circuit.name}: {circuit.num_gates} gates, {result.segments} segment(s), "
        f"method {result.method}, cache {cache_note}, "
        f"compile {result.compile_seconds:.3f}s, propagate {result.propagate_seconds:.3f}s"
    )
    if result.refine_iterations:
        print(
            f"  refine: {result.refine_iterations} iteration(s), "
            f"final boundary delta {result.refine_delta:.3e}"
        )
    for failed, reason in result.fallbacks:
        print(f"  fallback: {failed} failed ({reason})")
    print(f"mean switching activity: {result.mean_activity():.4f}")
    outputs = [(ln, result.switching(ln)) for ln in circuit.outputs]
    print(
        format_table(
            ["output", "switching"],
            outputs,
            title="Primary-output switching activity",
        )
    )
    finish()


def _load_scenarios(path: str):
    """Read a sweep scenario file: a JSON list of input-model specs,
    or an object with a ``"scenarios"`` list."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read scenario file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed JSON in {path}: {exc}") from exc
    if isinstance(data, dict):
        data = data.get("scenarios")
    if not isinstance(data, list) or not data:
        raise ReproError(
            f"{path}: expected a non-empty JSON list of input-model specs "
            '(or {"scenarios": [...]})'
        )
    from repro.core.inputs import input_model_from_spec

    models = []
    for i, spec in enumerate(data):
        if not isinstance(spec, dict):
            raise ReproError(f"{path}: scenario {i} is not an object")
        try:
            models.append(input_model_from_spec(spec))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"{path}: scenario {i}: {exc}") from exc
    return models


def _cmd_sweep(args) -> None:
    """Sweep K input-statistics scenarios against one compile."""
    import time

    from repro.core.backend import estimate_many

    finish = _maybe_traced(args, "sweep")
    circuit = _resolve_circuit(args.circuit)
    models = _load_scenarios(args.scenarios)
    start = time.perf_counter()
    kernel_opts = {"kernel": args.kernel} if args.kernel else {}
    results = estimate_many(
        circuit,
        models,
        backend=args.backend,
        cache=_resolve_cli_cache(args),
        batch_size=args.batch,
        dtype=args.dtype,
        sweep_mode=args.sweep_mode,
        **kernel_opts,
        **_refine_opts(args),
    )
    elapsed = time.perf_counter() - start
    cache_note = {True: "hit", False: "miss", None: "off"}[results[0].cache_hit]
    batch_note = args.batch if args.batch else len(models)
    print(
        f"{circuit.name}: {circuit.num_gates} gates, {len(models)} scenario(s), "
        f"batch {batch_note}, sweep {args.sweep_mode}, "
        f"method {results[0].method}, cache {cache_note}"
    )
    rows = [
        (k, f"{r.mean_activity():.6f}", f"{r.propagate_seconds * 1e3:.2f}")
        for k, r in enumerate(results)
    ]
    print(
        format_table(
            ["scenario", "mean_activity", "propagate_ms"],
            rows,
            title="Mean switching activity per scenario",
        )
    )
    # compile_seconds is the fresh-compile cost; on a cache hit it was
    # paid in an earlier process, so the whole elapsed time is queries.
    query_seconds = elapsed
    if results[0].cache_hit is not True:
        query_seconds = max(elapsed - results[0].compile_seconds, 0.0)
    rate = len(models) / query_seconds if query_seconds > 0 else float("inf")
    print(
        f"swept {len(models)} scenario(s) in {elapsed:.3f}s "
        f"({rate:.1f} scenarios/sec after compile)"
    )
    finish()


def _cmd_stats(args) -> None:
    """Profile one compile + propagate + re-propagate cycle.

    The second estimate runs with fresh input statistics so the
    dirty-clique fast path (skipped versus repropagated cliques) shows
    up in the counters -- the paper's asymmetric cost claim, measured.
    """
    from repro import obs
    from repro.core.backend import compile_model

    obs.enable()
    tracer = obs.get_tracer()
    circuit = _resolve_circuit(args.circuit)
    kernel_opts = {"kernel": args.kernel} if args.kernel else {}
    with tracer.span("stats.run", circuit=args.circuit):
        model = compile_model(
            circuit, IndependentInputs(args.p_one), backend="auto", **kernel_opts
        )
        result = model.query()
        repeat = model.query(IndependentInputs(args.repropagate_p_one))
    report = obs.build_report(
        meta={
            "command": "stats",
            "circuit": args.circuit,
            "gates": circuit.num_gates,
            "segments": repeat.segments,
            "mean_activity": repeat.mean_activity(),
        }
    )
    obs.validate_report(report)
    obs.check_span_containment(report)
    print(obs.render_report(report))
    support = getattr(model.estimator, "support_stats", None)
    if support is not None:
        st = support()
        print(
            f"kernel {st['kernel']}: {st['feasible_states']}/"
            f"{st['total_states']} feasible clique states "
            f"(density {st['support_density']:.3f}), "
            f"{st['sparse_cliques']}/{st['cliques']} packed cliques"
        )
    print(
        f"compile {result.compile_seconds:.3f}s, "
        f"first propagate {result.propagate_seconds:.3f}s, "
        f"re-propagate {repeat.propagate_seconds:.3f}s"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")


def _cmd_cache(args) -> None:
    """List or clear the on-disk compile cache."""
    from repro.core.backend import CompileCache

    cache = CompileCache(args.dir) if args.dir else CompileCache()
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.root}: empty")
            return
        print(f"cache at {cache.root}: {len(entries)} artifact(s)")
        print(
            format_table(
                ["key", "backend", "circuit", "bytes"],
                [
                    (e.key[:16], e.backend, e.circuit, e.size_bytes)
                    for e in entries
                ],
            )
        )
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} artifact(s) from {cache.root}")


def _cmd_fuzz(args) -> int:
    """Differentially fuzz the exact backends against the oracle."""
    from repro.core.backend import get_backend
    from repro.testing.differential import (
        DEFAULT_FUZZ_BACKENDS,
        parse_backend_spec,
        run_fuzz,
    )

    backends = tuple(args.backends) if args.backends else DEFAULT_FUZZ_BACKENDS
    if args.refine:
        # Deliberately approximate: small segments force real cuts, the
        # loose per-spec atol guards against divergence, not exactness.
        backends += (
            f"segmented(refine={args.refine}, max_gates_per_segment=10, "
            f"lookback=1, atol=0.75)",
        )
    for spec in backends:
        get_backend(parse_backend_spec(spec)[0])  # typos fail up front
    report = run_fuzz(
        seeds=args.seeds,
        max_gates=args.max_gates,
        max_inputs=args.max_inputs,
        backends=backends,
        atol=args.atol,
        out_dir=Path(args.out),
        seed_base=args.seed_base,
        progress=lambda case: (
            None
            if case.ok
            else print(f"seed {case.seed}: MISMATCH (reproducer: {case.reproducer})")
        ),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args) -> None:
    """Run the resident estimation server until SIGTERM/SIGINT."""
    from repro.serve import EstimationServer, ServerConfig
    from repro.serve.server import install_signal_handlers

    config = ServerConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        options={"kernel": args.kernel} if args.kernel else {},
        cache=_resolve_cli_cache(args),
        max_models=args.max_models,
        engines_per_model=args.engines_per_model,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        workers=args.workers,
        result_cache_entries=0 if args.no_result_cache else args.result_cache_entries,
    )
    server = EstimationServer(config)
    install_signal_handlers(server)
    print(
        f"repro-serve listening on {server.address} "
        f"(max_batch={config.max_batch}, linger={config.linger_ms}ms, "
        f"engines/model={config.engines_per_model}, "
        f"result_cache={config.result_cache_entries})",
        flush=True,
    )
    server.serve_forever()
    server.close()
    print("repro-serve: shut down cleanly")


def _cmd_client(args) -> int:
    """Load-generate against a running server (or just scrape it)."""
    from repro.obs import validate_report
    from repro.serve import ServeClient, run_load

    if args.check_metrics:
        report = ServeClient(args.url, timeout=args.timeout).metrics()
        validate_report(report)  # raises ObsError on schema violations
        groups = report.get("metrics", {})
        total = sum(len(v) for v in groups.values() if isinstance(v, dict))
        print(
            f"metrics report valid: schema {report['schema']}, "
            f"{total} metric(s), "
            f"{report['meta']['pool']['resident']} resident model(s)"
        )
        return 0

    if args.quick:
        args.concurrency, args.requests = 4, 24
    report = run_load(
        args.url,
        args.circuit,
        mode=args.mode,
        concurrency=args.concurrency,
        requests=args.requests,
        rate=args.rate,
        salt=args.salt,
        backend=args.backend or None,
        detail=args.detail,
        timeout=args.timeout,
        workload=args.workload,
    )
    row = report.to_row()
    cols = list(row.keys())
    print(format_table(cols, rows_from_dicts([row], cols), title="Load run"))
    if report.errors:
        print(f"first error: {report.first_error}", file=sys.stderr)
        return 1
    return 0


def _load_bench_json(path: str, kind: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read {kind} report {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed JSON in {path}: {exc}") from exc


def _cmd_perf_record(args) -> None:
    """Record one perf profile: measure live, or ingest bench reports."""
    from repro.perf import (
        PerfStore,
        collect_profile,
        ingest_bench_documents,
        load_profiles_file,
        write_history,
    )

    if (
        args.from_propagation
        or args.from_throughput
        or args.from_segmentation
        or args.from_serving
    ):
        profile = ingest_bench_documents(
            propagation=(
                _load_bench_json(args.from_propagation, "propagation")
                if args.from_propagation
                else None
            ),
            throughput=(
                _load_bench_json(args.from_throughput, "throughput")
                if args.from_throughput
                else None
            ),
            segmentation=(
                _load_bench_json(args.from_segmentation, "segmentation")
                if args.from_segmentation
                else None
            ),
            serving=(
                _load_bench_json(args.from_serving, "serving")
                if args.from_serving
                else None
            ),
            note=args.note,
        )
    else:
        circuits = (
            [c.strip() for c in args.circuits.split(",") if c.strip()]
            if args.circuits
            else None
        )
        profile = collect_profile(
            circuits=circuits,
            repeats=args.repeats,
            batch_sizes=[
                int(k) for k in args.batch_sizes.split(",") if k.strip()
            ],
            parallelism=args.parallelism,
            kernel=args.kernel,
            note=args.note,
            quick=args.quick,
            progress=lambda name, block: print(
                f"{name:>10s}  repeat(min) "
                f"{block['repeat_estimate_min_seconds'] * 1e3:8.3f}ms"
                + (
                    f"  max_abs_error {block['max_abs_error']:.2e}"
                    if "max_abs_error" in block
                    else ""
                )
            ),
        )
    store = PerfStore(args.store)
    path = store.append(profile)
    git = profile["git"]
    print(
        f"recorded profile {git['short']}{'*' if git['dirty'] else ''} "
        f"({len(profile['measurements'])} circuit(s), machine "
        f"{profile['fingerprint']['digest']}) into {path}"
    )
    if args.baseline:
        baseline = Path(args.baseline)
        history = load_profiles_file(baseline) if baseline.is_file() else []
        history.append(profile)
        write_history(baseline, history)
        print(f"appended to baseline {baseline} ({len(history)} profile(s))")


def _cmd_perf_log(args) -> None:
    """Render each metric's trajectory across recorded versions."""
    from repro.perf import PerfStore, machine_fingerprint, render_log

    store = PerfStore(args.store)
    digest = None if args.all_machines else machine_fingerprint()["digest"]
    profiles = store.profiles(fingerprint_digest=digest)
    if not profiles and digest is not None and store.profiles():
        print(
            f"note: the store has profiles, but none from this machine "
            f"(digest {digest}); pass --all-machines to see them"
        )
    print(render_log(profiles, metric=args.metric, circuit=args.circuit), end="")


def _cmd_perf_diff(args) -> int:
    """Statistically compare two profiles; exit 0 ok / 1 perf / 2 accuracy."""
    from repro.errors import PerfDiffError, PerfProfileError
    from repro.perf import (
        PerfStore,
        compare_profiles,
        exit_code,
        render_diff,
        version_label,
    )

    store = PerfStore(args.store)
    try:
        old = store.resolve(args.old)
        new = store.resolve(args.new)
        records = compare_profiles(
            old,
            new,
            noise_band=args.noise_band,
            floor_seconds=args.floor_seconds,
            accuracy_atol=args.accuracy_atol,
            force=args.force,
        )
    except (PerfDiffError, PerfProfileError) as exc:
        # Not-comparable is contractually exit 2 (CI distinguishes it
        # from the plain perf regression's exit 1).
        print(f"repro perf diff: {exc}", file=sys.stderr)
        return 2
    print(f"old: {version_label(old)}  {old.get('recorded_at', '?')}")
    print(f"new: {version_label(new)}  {new.get('recorded_at', '?')}")
    print(render_diff(records), end="")
    rc = exit_code(records)
    counts = {}
    for record in records:
        counts[record["status"]] = counts.get(record["status"], 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    verdict = {0: "ok", 1: "PERF REGRESSION", 2: "ACCURACY DRIFT"}[rc]
    print(f"perf diff: {summary} -> {verdict}")
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Bayesian-network switching activity experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="accuracy + timing over the benchmark suite")
    p1.add_argument("--circuits", nargs="*", default=None, choices=suite.FULL_SUITE)
    p1.add_argument("--pairs", type=int, default=100_000)
    p1.add_argument("--seed", type=int, default=0)
    p1.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="BN vs approximate dependency models")
    p2.add_argument("--circuits", nargs="*", default=None, choices=suite.FULL_SUITE)
    p2.add_argument("--pairs", type=int, default=100_000)
    p2.add_argument("--seed", type=int, default=0)
    p2.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    p2.set_defaults(func=_cmd_table2)

    pf = sub.add_parser("figures", help="Figures 1-4 walkthrough")
    pf.set_defaults(func=_cmd_figures)

    pa = sub.add_parser("ablations", help="design-choice ablations")
    pa.add_argument(
        "--which",
        default="all",
        choices=["triangulation", "segmentation", "compile", "inputs", "all"],
    )
    pa.set_defaults(func=_cmd_ablations)

    pe = sub.add_parser("estimate", help="estimate one circuit (suite name or .bench path)")
    pe.add_argument(
        "--circuit", required=True, metavar="NAME_OR_BENCH",
        help="suite circuit name, or path to a .bench netlist",
    )
    pe.add_argument("--p-one", type=float, default=0.5)
    pe.add_argument(
        "--backend", default="auto",
        help="inference backend (see `repro.core.backend`); default: auto",
    )
    pe.add_argument(
        "--fallback", action="store_true",
        help="degrade through the default backend chain on compile failure",
    )
    pe.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget; once exceeded, jump to the cheapest fallback",
    )
    pe.add_argument(
        "--kernel", choices=["auto", "dense", "sparse"], default=None,
        help="propagation message kernel for exact backends "
             "(default: the backend's own default, auto)",
    )
    pe.add_argument(
        "--refine", type=int, default=0, metavar="N",
        help="segmented backend: up to N iterative boundary-refinement "
             "passes over the segment graph (default: 0, off)",
    )
    pe.add_argument(
        "--refine-tol", type=float, default=1e-5, metavar="TOL",
        help="refinement convergence tolerance on the max boundary-belief "
             "delta (default: 1e-5)",
    )
    pe.add_argument(
        "--max-iters", type=int, default=None, metavar="N",
        help="hard cap on refinement iterations (default: the --refine value)",
    )
    pe.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="compile-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pe.add_argument(
        "--no-cache", action="store_true",
        help="compile fresh, skipping the on-disk cache",
    )
    pe.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    pe.set_defaults(func=_cmd_estimate)

    pw = sub.add_parser(
        "sweep",
        help="batch-propagate many input-statistics scenarios over one compile",
    )
    pw.add_argument(
        "--circuit", required=True, metavar="NAME_OR_BENCH",
        help="suite circuit name, or path to a .bench netlist",
    )
    pw.add_argument(
        "--scenarios", required=True, metavar="FILE",
        help='JSON list of input-model specs (or {"scenarios": [...]}); '
             'each spec is {"kind": "independent", "p_one": 0.3}-style',
    )
    pw.add_argument(
        "--batch", type=int, default=None, metavar="K",
        help="scenarios per batched propagation (default: all in one batch)",
    )
    pw.add_argument(
        "--backend", default="auto",
        help="inference backend (see `repro.core.backend`); default: auto",
    )
    pw.add_argument(
        "--kernel", choices=["auto", "dense", "sparse"], default=None,
        help="propagation message kernel for exact backends "
             "(default: the backend's own default, auto)",
    )
    pw.add_argument(
        "--dtype", choices=["float64", "float32"], default="float64",
        help="batch-buffer dtype; float32 halves sweep memory at ~1e-6 "
             "relative tolerance",
    )
    pw.add_argument(
        "--sweep-mode", choices=["auto", "batched", "delta"], default="batched",
        dest="sweep_mode",
        help="delta mode dedups equal scenarios and runs similar ones as an "
             "incremental chain (bitwise-equal to batched); auto picks delta "
             "only when the sweep has exploitable structure",
    )
    pw.add_argument(
        "--refine", type=int, default=0, metavar="N",
        help="segmented backend: up to N iterative boundary-refinement "
             "passes over the segment graph (default: 0, off)",
    )
    pw.add_argument(
        "--refine-tol", type=float, default=1e-5, metavar="TOL",
        help="refinement convergence tolerance on the max boundary-belief "
             "delta (default: 1e-5)",
    )
    pw.add_argument(
        "--max-iters", type=int, default=None, metavar="N",
        help="hard cap on refinement iterations (default: the --refine value)",
    )
    pw.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="compile-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pw.add_argument(
        "--no-cache", action="store_true",
        help="compile fresh, skipping the on-disk cache",
    )
    pw.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    pw.set_defaults(func=_cmd_sweep)

    pc = sub.add_parser("cache", help="inspect or clear the compile cache")
    pc.add_argument("action", choices=["ls", "clear"])
    pc.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pc.set_defaults(func=_cmd_cache)

    ps = sub.add_parser(
        "stats", help="profile compile/propagate with the obs layer"
    )
    ps.add_argument(
        "--circuit", required=True, metavar="NAME_OR_BENCH",
        help="suite circuit name, or path to a .bench netlist",
    )
    ps.add_argument("--p-one", type=float, default=0.5)
    ps.add_argument(
        "--repropagate-p-one", type=float, default=0.3,
        help="input probability for the re-propagation pass",
    )
    ps.add_argument(
        "--kernel", choices=["auto", "dense", "sparse"], default=None,
        help="propagation message kernel (default: auto)",
    )
    ps.add_argument("--json", default=None, metavar="FILE",
                    help="also write the JSON report here")
    ps.set_defaults(func=_cmd_stats)

    pz = sub.add_parser(
        "fuzz",
        help="differentially fuzz backends against the enumeration oracle",
    )
    pz.add_argument("--seeds", type=int, default=50,
                    help="number of random cases (default: 50)")
    pz.add_argument("--seed-base", type=int, default=0,
                    help="first seed (default: 0)")
    pz.add_argument("--max-gates", type=int, default=40,
                    help="max gates per generated circuit (default: 40)")
    pz.add_argument("--max-inputs", type=int, default=6,
                    help="max primary inputs; bounds the 4^n oracle (default: 6)")
    pz.add_argument(
        "--backends", nargs="*", default=None, metavar="SPEC",
        help="backend names or specs like 'segmented(refine=2,atol=0.5)' "
             "(default: junction-tree segmented enumeration)",
    )
    pz.add_argument(
        "--refine", type=int, default=0, metavar="N",
        help="also fuzz a refined segmented config (small segments, "
             "N refinement iterations) at a loose approximate tolerance",
    )
    pz.add_argument("--atol", type=float, default=1e-10,
                    help="per-entry tolerance on line distributions (default: 1e-10)")
    pz.add_argument(
        "--out", default="fuzz-failures", metavar="DIR",
        help="directory for shrunk reproducers (default: fuzz-failures)",
    )
    pz.set_defaults(func=_cmd_fuzz)

    pv = sub.add_parser(
        "serve",
        help="run the resident estimation server (HTTP/JSON, dynamic batching)",
    )
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=8337)
    pv.add_argument("--backend", default="auto",
                    help="default backend for /estimate (default: auto)")
    pv.add_argument("--kernel", choices=["auto", "dense", "sparse"],
                    default=None, help="propagation kernel for every compile")
    pv.add_argument("--max-models", type=int, default=8,
                    help="LRU ceiling on resident compiled models (default: 8)")
    pv.add_argument("--engines-per-model", type=int, default=2,
                    help="engine replicas per model (default: 2)")
    pv.add_argument("--max-batch", type=int, default=16,
                    help="scenario ceiling per coalesced propagation "
                         "(1 = unbatched; default: 16)")
    pv.add_argument("--linger-ms", type=float, default=2.0,
                    help="how long a non-full batch waits for company "
                         "(default: 2.0)")
    pv.add_argument("--workers", type=int, default=2,
                    help="batch drain threads (default: 2)")
    pv.add_argument("--result-cache-entries", type=int, default=4096,
                    dest="result_cache_entries", metavar="N",
                    help="LRU capacity of the fingerprint-keyed result cache "
                         "(exact scenario repeats replay without propagating)")
    pv.add_argument("--no-result-cache", action="store_true",
                    help="disable result caching (every request propagates)")
    pv.add_argument("--no-cache", action="store_true",
                    help="skip the on-disk compile cache")
    pv.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="compile cache directory (default: $REPRO_CACHE_DIR)")
    pv.set_defaults(func=_cmd_serve)

    pg = sub.add_parser(
        "client",
        help="drive a running estimation server: load-generate or scrape",
    )
    pg.add_argument("--url", default="http://127.0.0.1:8337")
    pg.add_argument("--circuit", default="c17",
                    help="suite name or .bench path (default: c17)")
    pg.add_argument("--mode", choices=["closed", "open"], default="closed",
                    help="closed: send-receive loops; open: fixed arrival rate")
    pg.add_argument("--concurrency", type=int, default=8)
    pg.add_argument("--requests", type=int, default=100)
    pg.add_argument("--rate", type=float, default=50.0,
                    help="open-loop arrivals per second (default: 50)")
    pg.add_argument("--workload", default="uniform", metavar="SPEC",
                    help="scenario stream: uniform (all distinct), zipf:A, "
                         "hotspot:P, or burst:N (skewed streams repeat "
                         "scenarios and exercise the server's result cache)")
    pg.add_argument("--salt", type=float, default=0.0,
                    help="scenario stream offset (default: 0)")
    pg.add_argument("--backend", default=None)
    pg.add_argument("--detail", choices=["mean", "activities", "distributions"],
                    default=None, help="response payload detail level")
    pg.add_argument("--timeout", type=float, default=60.0)
    pg.add_argument("--quick", action="store_true",
                    help="CI smoke configuration: 4 workers, 24 requests")
    pg.add_argument("--check-metrics", action="store_true",
                    help="scrape /metrics, validate the repro.obs report, exit")
    pg.set_defaults(func=_cmd_client)

    pp = sub.add_parser(
        "perf", help="record, inspect and diff performance profiles"
    )
    perf_sub = pp.add_subparsers(dest="perf_command", required=True)

    def _add_store(p):
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="profile store directory "
                 "(default: $REPRO_PERF_DIR or .repro-perf)",
        )

    pr = perf_sub.add_parser(
        "record", help="measure (or ingest bench reports) into the store"
    )
    _add_store(pr)
    pr.add_argument(
        "--circuits", default=None, metavar="A,B,...",
        help="comma-separated circuit names (default: the benchmark suite)",
    )
    pr.add_argument("--repeats", type=int, default=3)
    pr.add_argument(
        "--batch-sizes", default="64", metavar="K,...",
        help="comma-separated scenario-sweep batch sizes (default: 64)",
    )
    pr.add_argument(
        "--parallelism", type=int, default=0,
        help="worker threads for segmented circuits (0 = serial)",
    )
    pr.add_argument(
        "--kernel", choices=["auto", "dense", "sparse"], default="auto",
        help="propagation message kernel for every compile",
    )
    pr.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: c17 only, 2 repeats, K=64",
    )
    pr.add_argument(
        "--from-propagation", default=None, metavar="FILE",
        help="ingest a BENCH_propagation.json instead of measuring",
    )
    pr.add_argument(
        "--from-throughput", default=None, metavar="FILE",
        help="ingest a BENCH_throughput.json instead of measuring",
    )
    pr.add_argument(
        "--from-segmentation", default=None, metavar="FILE",
        help="ingest a BENCH_segmentation.json instead of measuring",
    )
    pr.add_argument(
        "--from-serving", default=None, metavar="FILE",
        help="ingest a BENCH_serving.json instead of measuring",
    )
    pr.add_argument(
        "--note", default="", metavar="TEXT",
        help="free-form provenance note stored with the profile",
    )
    pr.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="also append the profile to this committed history document "
             "(PERF_HISTORY.json)",
    )
    pr.set_defaults(func=_cmd_perf_record)

    pl = perf_sub.add_parser(
        "log", help="per-metric trajectory across recorded versions"
    )
    _add_store(pl)
    pl.add_argument(
        "--metric", default=None, metavar="NAME",
        help="show only this metric (e.g. repeat_estimate_min_seconds)",
    )
    pl.add_argument(
        "--circuit", default=None, metavar="NAME",
        help="show only this circuit",
    )
    pl.add_argument(
        "--all-machines", action="store_true",
        help="include profiles recorded on other machines "
             "(default: this machine's fingerprint only)",
    )
    pl.set_defaults(func=_cmd_perf_log)

    pd = perf_sub.add_parser(
        "diff", help="compare two profiles (exit 1 perf / 2 accuracy)"
    )
    _add_store(pd)
    pd.add_argument(
        "old",
        help="baseline profile: a file (profile JSON, PERF_HISTORY.json, "
             ".jsonl log), 'latest', or a git SHA prefix",
    )
    pd.add_argument("new", help="candidate profile (same reference forms)")
    pd.add_argument(
        "--noise-band", type=float, default=0.25,
        help="fractional tolerance before a timing delta counts as a "
             "regression; auto-widened by the runs' own dispersion",
    )
    pd.add_argument(
        "--floor-seconds", type=float, default=0.001,
        help="timing rows where both sides are below this are skipped",
    )
    pd.add_argument(
        "--accuracy-atol", type=float, default=1e-6,
        help="absolute tolerance on accuracy metrics (exit 2 beyond it)",
    )
    pd.add_argument(
        "--force", action="store_true",
        help="compare across different machine fingerprints anyway",
    )
    pd.set_defaults(func=_cmd_perf_diff)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rc = args.func(args)
    except ReproError as exc:
        # Anticipated, typed failures get a one-line message, not a
        # traceback: the exit status is the machine-readable part.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    return int(rc or 0)


if __name__ == "__main__":
    sys.exit(main())
