"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli table1 [--circuits c17 alu ...] [--pairs N] [--trace FILE]
    python -m repro.cli table2 [--circuits ...] [--pairs N] [--trace FILE]
    python -m repro.cli figures
    python -m repro.cli ablations [--which triangulation|segmentation|compile|inputs]
    python -m repro.cli estimate --circuit c17 [--backend auto] [--p-one 0.5]
    python -m repro.cli stats --circuit c432s [--json out.json]
    python -m repro.cli cache ls|clear [--dir DIR]

``estimate`` goes through the backend facade and the on-disk compile
cache (``--no-cache`` disables it, ``--cache-dir`` relocates it); a
second run on the same circuit loads the compiled junction trees
instead of rebuilding them.  ``cache`` lists or clears the cached
artifacts.  ``stats`` profiles one full compile + propagate +
re-propagate cycle with the observability layer enabled and prints the
span tree and metrics (optionally exporting the schema-versioned JSON
report); ``--trace FILE`` on the experiment subcommands writes the
same report for a table run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.tables import format_table, rows_from_dicts
from repro.circuits import suite
from repro.core.inputs import IndependentInputs


def _write_trace(path: str, meta: dict) -> None:
    """Export the enabled obs state as a validated JSON report."""
    from repro import obs

    report = obs.validate_report(obs.build_report(meta=meta))
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote trace report to {path}")


def _maybe_traced(args, command: str):
    """Enable obs when ``--trace`` was given; return a finalizer."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return lambda: None
    from repro import obs

    obs.enable()
    return lambda: _write_trace(trace_path, {"command": command})


def _cmd_table1(args) -> None:
    from repro.experiments.table1 import TABLE1_COLUMNS, run_table1

    finish = _maybe_traced(args, "table1")
    rows = run_table1(args.circuits, n_pairs=args.pairs, seed=args.seed)
    print(
        format_table(
            TABLE1_COLUMNS,
            rows_from_dicts(rows, TABLE1_COLUMNS),
            title="Table 1: switching activity estimation by Bayesian network modeling",
        )
    )
    finish()


def _cmd_table2(args) -> None:
    from repro.experiments.table2 import TABLE2_COLUMNS, run_table2

    finish = _maybe_traced(args, "table2")
    rows = run_table2(args.circuits, n_pairs=args.pairs, seed=args.seed)
    print(
        format_table(
            TABLE2_COLUMNS,
            rows_from_dicts(rows, TABLE2_COLUMNS),
            title="Table 2: BN vs approximate dependency models",
        )
    )
    finish()


def _cmd_figures(_args) -> None:
    from repro.experiments.figures import figure_walkthrough

    data = figure_walkthrough()
    circuit = data["circuit"]
    print("Figure 1: example circuit")
    for line in circuit.internal_lines:
        print(f"  {circuit.driver(line)}")
    print("\nFigure 2: LIDAG-structured Bayesian network")
    print(f"  joint = {data['factorization']}")
    for u, v in data["lidag_edges"]:
        print(f"  X{u} -> X{v}")
    print("\nFigure 3: moralized + triangulated graph")
    print(f"  marriage edges added: {data['marriages']}")
    print(f"  triangulation fill-ins: {data['fill_ins']}")
    print("\nFigure 4: junction tree of cliques")
    for clique in data["cliques"]:
        print(f"  clique {{{', '.join('X' + x for x in clique)}}}")
    for left, right, sep in data["separators"]:
        print(
            f"  {sorted(left)} --{sorted(sep)}-- {sorted(right)}"
        )


def _cmd_ablations(args) -> None:
    from repro.experiments import ablations

    which = args.which
    if which in ("triangulation", "all"):
        rows = ablations.ablate_triangulation()
        cols = ["circuit", "heuristic", "fill_ins", "max_clique_states", "compile_s"]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Triangulation heuristics"))
        print()
    if which in ("segmentation", "all"):
        rows = ablations.ablate_segmentation()
        cols = [
            "circuit", "boundary", "lookback", "backend", "segments",
            "mu_abs_err", "sigma_err", "pct_err", "compile_s",
        ]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Segmentation knobs"))
        print()
    if which in ("compile", "all"):
        rows = ablations.ablate_compile_vs_propagate()
        cols = ["circuit", "gates", "compile_s", "mean_propagate_s", "speedup"]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Compile vs propagate"))
        print()
    if which in ("inputs", "all"):
        rows = ablations.ablate_input_models()
        cols = [
            "circuit", "input_model", "mean_activity",
            "sim_mean_activity", "mu_abs_err", "sigma_err",
        ]
        print(format_table(cols, rows_from_dicts(rows, cols), title="Input statistics models"))


def _resolve_cli_cache(args):
    """``--no-cache``/``--cache-dir`` -> a facade ``cache`` argument."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or True


def _cmd_estimate(args) -> None:
    from repro.core.backend import compile_model

    finish = _maybe_traced(args, "estimate")
    circuit = suite.load_circuit(args.circuit)
    model = compile_model(
        circuit,
        IndependentInputs(args.p_one),
        backend=args.backend,
        cache=_resolve_cli_cache(args),
    )
    result = model.query(IndependentInputs(args.p_one))
    cache_note = {True: "hit", False: "miss", None: "off"}[model.cache_hit]
    print(
        f"{args.circuit}: {circuit.num_gates} gates, {result.segments} segment(s), "
        f"method {result.method}, cache {cache_note}, "
        f"compile {model.compile_seconds:.3f}s, propagate {result.propagate_seconds:.3f}s"
    )
    print(f"mean switching activity: {result.mean_activity():.4f}")
    outputs = [(ln, result.switching(ln)) for ln in circuit.outputs]
    print(
        format_table(
            ["output", "switching"],
            outputs,
            title="Primary-output switching activity",
        )
    )
    finish()


def _cmd_stats(args) -> None:
    """Profile one compile + propagate + re-propagate cycle.

    The second estimate runs with fresh input statistics so the
    dirty-clique fast path (skipped versus repropagated cliques) shows
    up in the counters -- the paper's asymmetric cost claim, measured.
    """
    from repro import obs
    from repro.core.backend import compile_model

    obs.enable()
    tracer = obs.get_tracer()
    circuit = suite.load_circuit(args.circuit)
    with tracer.span("stats.run", circuit=args.circuit):
        model = compile_model(
            circuit, IndependentInputs(args.p_one), backend="auto"
        )
        result = model.query()
        repeat = model.query(IndependentInputs(args.repropagate_p_one))
    report = obs.build_report(
        meta={
            "command": "stats",
            "circuit": args.circuit,
            "gates": circuit.num_gates,
            "segments": repeat.segments,
            "mean_activity": repeat.mean_activity(),
        }
    )
    obs.validate_report(report)
    obs.check_span_containment(report)
    print(obs.render_report(report))
    print(
        f"compile {result.compile_seconds:.3f}s, "
        f"first propagate {result.propagate_seconds:.3f}s, "
        f"re-propagate {repeat.propagate_seconds:.3f}s"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")


def _cmd_cache(args) -> None:
    """List or clear the on-disk compile cache."""
    from repro.core.backend import CompileCache

    cache = CompileCache(args.dir) if args.dir else CompileCache()
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.root}: empty")
            return
        print(f"cache at {cache.root}: {len(entries)} artifact(s)")
        print(
            format_table(
                ["key", "backend", "circuit", "bytes"],
                [
                    (e.key[:16], e.backend, e.circuit, e.size_bytes)
                    for e in entries
                ],
            )
        )
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} artifact(s) from {cache.root}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Bayesian-network switching activity experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="accuracy + timing over the benchmark suite")
    p1.add_argument("--circuits", nargs="*", default=None, choices=suite.FULL_SUITE)
    p1.add_argument("--pairs", type=int, default=100_000)
    p1.add_argument("--seed", type=int, default=0)
    p1.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="BN vs approximate dependency models")
    p2.add_argument("--circuits", nargs="*", default=None, choices=suite.FULL_SUITE)
    p2.add_argument("--pairs", type=int, default=100_000)
    p2.add_argument("--seed", type=int, default=0)
    p2.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    p2.set_defaults(func=_cmd_table2)

    pf = sub.add_parser("figures", help="Figures 1-4 walkthrough")
    pf.set_defaults(func=_cmd_figures)

    pa = sub.add_parser("ablations", help="design-choice ablations")
    pa.add_argument(
        "--which",
        default="all",
        choices=["triangulation", "segmentation", "compile", "inputs", "all"],
    )
    pa.set_defaults(func=_cmd_ablations)

    pe = sub.add_parser("estimate", help="estimate one suite circuit")
    pe.add_argument("--circuit", required=True, choices=suite.FULL_SUITE)
    pe.add_argument("--p-one", type=float, default=0.5)
    pe.add_argument(
        "--backend", default="auto",
        help="inference backend (see `repro.core.backend`); default: auto",
    )
    pe.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="compile-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pe.add_argument(
        "--no-cache", action="store_true",
        help="compile fresh, skipping the on-disk cache",
    )
    pe.add_argument("--trace", default=None, metavar="FILE",
                    help="write an obs JSON report of the run")
    pe.set_defaults(func=_cmd_estimate)

    pc = sub.add_parser("cache", help="inspect or clear the compile cache")
    pc.add_argument("action", choices=["ls", "clear"])
    pc.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pc.set_defaults(func=_cmd_cache)

    ps = sub.add_parser(
        "stats", help="profile compile/propagate with the obs layer"
    )
    ps.add_argument("--circuit", required=True, choices=suite.FULL_SUITE)
    ps.add_argument("--p-one", type=float, default=0.5)
    ps.add_argument(
        "--repropagate-p-one", type=float, default=0.3,
        help="input probability for the re-propagation pass",
    )
    ps.add_argument("--json", default=None, metavar="FILE",
                    help="also write the JSON report here")
    ps.set_defaults(func=_cmd_stats)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
