"""Differential fuzzing of estimation backends against the oracle.

Theorem 3 makes a falsifiable promise: on *any* well-formed
combinational circuit, junction-tree propagation over the LIDAG is
exact.  The curated Table-1 suite exercises a handful of shapes; this
harness generates random circuits (:func:`~repro.circuits.generate.
random_layered_circuit`) crossed with random input models --
independent (including hard 0/1 probabilities), spatially correlated
groups, zero-smoothing traces, and lag-1 temporal streams -- runs each
configured backend, and compares every line's 4-state transition
distribution against :func:`~repro.core.estimator.
exact_switching_by_enumeration`, a separate dict-based enumeration that
shares no code with the backends under test.

On a mismatch (or a backend crash) the failing case is *shrunk* --
re-tried on the fanin cone of each mismatching line, smallest cone
first, with the input model restricted to the surviving inputs -- and a
reproducer is written out as a ``.bench`` netlist plus a JSON input
model that :func:`input_model_from_json` loads back.

Drive it from Python (:func:`run_fuzz`) or the CLI (``repro fuzz``).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.bench import to_bench, write_bench_file
from repro.circuits.generate import random_layered_circuit
from repro.circuits.netlist import Circuit
from repro.core.backend.facade import compile_model
from repro.core.estimator import exact_switching_by_enumeration
from repro.core.inputs import InputModel, input_model_from_spec
from repro.errors import ReproError

__all__ = [
    "DEFAULT_FUZZ_BACKENDS",
    "FuzzCase",
    "FuzzReport",
    "Mismatch",
    "input_model_from_json",
    "input_model_to_json",
    "make_case",
    "parse_backend_spec",
    "restrict_model_spec",
    "run_fuzz",
    "shrink_case",
]

#: The exact backends whose agreement with the oracle is an invariant.
#: Approximate baselines (pairwise, local-cone, ...) are *expected* to
#: deviate and are deliberately absent.
DEFAULT_FUZZ_BACKENDS: Tuple[str, ...] = (
    "junction-tree",
    "segmented",
    "enumeration",
)

#: JSON schema tag of reproducer input-model files.
INPUT_MODEL_SCHEMA = "repro.inputs/v1"


# ----------------------------------------------------------------------
# Input-model (de)serialization -- the reproducer side channel
# ----------------------------------------------------------------------


def input_model_to_json(spec: Dict) -> Dict:
    """Wrap a model *spec* (see :func:`make_case`) as a JSON document."""
    return {"schema": INPUT_MODEL_SCHEMA, **spec}


def input_model_from_json(data: Dict) -> InputModel:
    """Rebuild an :class:`InputModel` from a reproducer JSON document.

    Validates the schema tag, then delegates the kind dispatch to the
    shared :func:`repro.core.inputs.input_model_from_spec` (the same
    vocabulary ``repro sweep`` scenario files use).
    """
    schema = data.get("schema", INPUT_MODEL_SCHEMA)
    if schema != INPUT_MODEL_SCHEMA:
        raise ReproError(f"unknown input-model schema {schema!r}")
    return input_model_from_spec(data)


def restrict_model_spec(spec: Dict, input_names: Sequence[str]) -> Dict:
    """Restrict a model spec to a subset of inputs (used by shrinking)."""
    names = list(input_names)
    name_set = set(names)
    kind = spec["kind"]
    if kind == "independent":
        return {
            "kind": kind,
            "p_one": {k: v for k, v in spec["p_one"].items() if k in name_set},
        }
    if kind == "temporal":
        return {
            "kind": kind,
            "p_one": {k: v for k, v in spec["p_one"].items() if k in name_set},
            "activity": {
                k: v for k, v in spec["activity"].items() if k in name_set
            },
        }
    if kind == "trace":
        columns = [
            j for j, name in enumerate(spec["input_names"]) if name in name_set
        ]
        kept = [spec["input_names"][j] for j in columns]
        trace = np.asarray(spec["trace"])[:, columns]
        return {
            "kind": kind,
            "trace": trace.tolist(),
            "input_names": kept,
            "smoothing": spec["smoothing"],
        }
    if kind == "correlated":
        groups = [
            [n for n in group if n in name_set] for group in spec["groups"]
        ]
        groups = [g for g in groups if len(g) >= 2]
        return {
            "kind": kind,
            "groups": groups,
            "rho": spec["rho"],
            "base_p_one": {
                k: v for k, v in spec["base_p_one"].items() if k in name_set
            },
        }
    raise ReproError(f"unknown input-model kind {kind!r}")


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------

_MODEL_KINDS = ("independent", "correlated", "trace", "temporal")


def make_case(
    seed: int, max_gates: int = 40, max_inputs: int = 6
) -> Tuple[Circuit, Dict]:
    """Deterministically generate one fuzz case: a circuit + model spec.

    The circuit is a random layered netlist small enough for the
    ``4^inputs`` oracle; the model kind rotates with the seed.  Every
    fifth seed pins some input probabilities to exactly 0 or 1 so
    zero-mass transition states reach the propagation kernels.
    """
    rng = np.random.default_rng(seed)
    n_inputs = int(rng.integers(3, max_inputs + 1))
    n_gates = int(rng.integers(3, max_gates + 1))
    circuit = random_layered_circuit(
        n_inputs=n_inputs, n_gates=n_gates, seed=seed, name=f"fuzz{seed}"
    )
    kind = _MODEL_KINDS[seed % len(_MODEL_KINDS)]
    extreme = seed % 5 == 0
    def p_draw() -> float:
        if extreme and rng.random() < 0.4:
            return float(rng.integers(0, 2))
        return float(np.round(rng.uniform(0.02, 0.98), 6))

    if kind == "independent":
        spec: Dict = {
            "kind": kind,
            "p_one": {name: p_draw() for name in circuit.inputs},
        }
    elif kind == "temporal":
        # activity/2 <= min(p, 1-p) keeps the lag-1 Markov chain feasible;
        # extreme seeds sit exactly on that boundary.
        p_one = {
            name: float(np.round(rng.uniform(0.05, 0.95), 6))
            for name in circuit.inputs
        }
        activity = {}
        for name, p in p_one.items():
            ceiling = 2.0 * min(p, 1.0 - p)
            frac = 1.0 if (extreme and rng.random() < 0.4) else rng.uniform(0.05, 0.95)
            activity[name] = float(np.round(ceiling * frac, 6))
        spec = {"kind": kind, "p_one": p_one, "activity": activity}
    elif kind == "trace":
        n_cycles = int(rng.integers(4, 24))
        trace = rng.integers(0, 2, size=(n_cycles, n_inputs))
        if extreme:
            trace[:, 0] = 1  # a constant column: three states get zero mass
        spec = {
            "kind": kind,
            "trace": trace.tolist(),
            "input_names": list(circuit.inputs),
            "smoothing": 0.0,
        }
    else:  # correlated
        names = list(circuit.inputs)
        split = max(2, n_inputs // 2)
        groups = [names[:split]]
        if n_inputs - split >= 2:
            groups.append(names[split:])
        rho = 1.0 if extreme else float(np.round(rng.uniform(0.1, 0.95), 6))
        spec = {
            "kind": kind,
            "groups": [list(g) for g in groups],
            "rho": rho,
            "base_p_one": {name: p_draw() for name in names},
        }
    return circuit, spec


# ----------------------------------------------------------------------
# Backend specs
# ----------------------------------------------------------------------


def parse_backend_spec(
    spec: str,
) -> Tuple[str, Dict[str, Any], Optional[float]]:
    """Parse a fuzz backend spec into ``(name, options, atol_override)``.

    A spec is either a bare backend name (``"segmented"``) or a name
    with compile options in call syntax, e.g.
    ``"segmented(refine=2,max_gates_per_segment=10)"``.  Values are
    Python literals.  The pseudo-option ``atol=...`` is not forwarded to
    the compile; it overrides the run-wide tolerance for this spec only,
    which is how deliberately *approximate* configurations (refined
    segmentation on circuits that do not fit one exact segment) ride the
    same differential harness as the exact backends.
    """
    spec = spec.strip()
    if "(" not in spec:
        return spec, {}, None
    name, _, rest = spec.partition("(")
    name = name.strip()
    if not name or not rest.endswith(")"):
        raise ReproError(f"malformed backend spec {spec!r}")
    options: Dict[str, Any] = {}
    atol: Optional[float] = None
    body = rest[:-1].strip()
    for part in body.split(",") if body else []:
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ReproError(
                f"malformed backend spec {spec!r}: expected key=value, got {part!r}"
            )
        try:
            parsed = ast.literal_eval(value.strip())
        except (SyntaxError, ValueError) as exc:
            raise ReproError(
                f"malformed backend spec {spec!r}: {value.strip()!r} is not a "
                f"Python literal"
            ) from exc
        if key == "atol":
            atol = float(parsed)
        else:
            options[key] = parsed
    return name, options, atol


# ----------------------------------------------------------------------
# Differential execution
# ----------------------------------------------------------------------


@dataclass
class Mismatch:
    """One backend/line disagreement with the oracle (or a crash)."""

    backend: str
    line: Optional[str]
    max_abs_error: float
    error: Optional[str] = None  # exception text when the backend crashed

    def as_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "line": self.line,
            "max_abs_error": self.max_abs_error,
            "error": self.error,
        }


@dataclass
class FuzzCase:
    """Outcome of one seed."""

    seed: int
    circuit: Circuit
    model_spec: Dict
    mismatches: List[Mismatch] = field(default_factory=list)
    reproducer: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class FuzzReport:
    """Outcome of a whole fuzz run."""

    seeds: int
    atol: float
    backends: Tuple[str, ...]
    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def failures(self) -> List[FuzzCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.seeds} seed(s), backends {list(self.backends)}, "
            f"atol {self.atol:g}: "
            f"{len(self.cases) - len(self.failures)} ok, "
            f"{len(self.failures)} failing"
        ]
        for case in self.failures:
            worst = max(m.max_abs_error for m in case.mismatches)
            crashed = [m.backend for m in case.mismatches if m.error]
            note = f", crashed: {sorted(set(crashed))}" if crashed else ""
            lines.append(
                f"  seed {case.seed} ({case.circuit.name}): "
                f"{len(case.mismatches)} mismatch(es), worst {worst:.3g}{note}"
                + (f" -> {case.reproducer}" if case.reproducer else "")
            )
        return "\n".join(lines)


def _diff_case(
    circuit: Circuit,
    model: InputModel,
    backends: Sequence[str],
    atol: float,
) -> List[Mismatch]:
    """Run every backend spec on one case; return all disagreements."""
    oracle = exact_switching_by_enumeration(circuit, model)
    mismatches: List[Mismatch] = []
    for backend in backends:
        name, options, spec_atol = parse_backend_spec(backend)
        tolerance = atol if spec_atol is None else spec_atol
        try:
            compiled = compile_model(circuit, model, backend=name, **options)
            result = compiled.query(model)
        except Exception as exc:  # crashes are findings, not aborts
            mismatches.append(
                Mismatch(
                    backend=backend,
                    line=None,
                    max_abs_error=float("inf"),
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        worst_line: Optional[str] = None
        worst = 0.0
        for line, expected in oracle.items():
            got = result.distributions.get(line)
            if got is None:
                worst_line, worst = line, float("inf")
                break
            err = float(np.abs(np.asarray(got) - expected).max())
            if err > worst:
                worst_line, worst = line, err
        if worst > tolerance:
            mismatches.append(
                Mismatch(backend=backend, line=worst_line, max_abs_error=worst)
            )
    return mismatches


def shrink_case(
    circuit: Circuit,
    model_spec: Dict,
    backends: Sequence[str],
    atol: float,
) -> Tuple[Circuit, Dict, List[Mismatch]]:
    """Shrink a failing case to the smallest still-failing fanin cone.

    Candidate subcircuits are the transitive fanin cones of each
    mismatching line (plus crashing backends keep the whole circuit as
    a candidate), tried smallest first; the input model is restricted
    to each cone's surviving primary inputs.
    """
    mismatches = _diff_case(
        circuit, input_model_from_json(input_model_to_json(model_spec)),
        backends, atol,
    )
    lines = sorted(
        {m.line for m in mismatches if m.line is not None},
        key=lambda ln: len(circuit.fanin_cone(ln)),
    )
    for line in lines:
        cone = circuit.fanin_cone(line)
        sub = circuit.subcircuit(cone, name=f"{circuit.name}.cone")
        sub_spec = restrict_model_spec(model_spec, sub.inputs)
        try:
            sub_model = input_model_from_json(input_model_to_json(sub_spec))
            sub_mismatches = _diff_case(sub, sub_model, backends, atol)
        except Exception:
            continue
        if sub_mismatches:
            return sub, sub_spec, sub_mismatches
    return circuit, model_spec, mismatches


def _write_reproducer(
    out_dir: Path,
    seed: int,
    circuit: Circuit,
    model_spec: Dict,
    mismatches: List[Mismatch],
    atol: float,
) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"seed{seed}"
    bench_path = out_dir / f"{stem}.bench"
    write_bench_file(circuit, bench_path)
    with open(out_dir / f"{stem}.inputs.json", "w") as fh:
        json.dump(input_model_to_json(model_spec), fh, indent=2)
        fh.write("\n")
    with open(out_dir / f"{stem}.report.json", "w") as fh:
        json.dump(
            {
                "seed": seed,
                "atol": atol,
                "circuit": circuit.name,
                "gates": circuit.num_gates,
                "inputs": circuit.num_inputs,
                "mismatches": [m.as_dict() for m in mismatches],
                "bench": to_bench(circuit),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
    return bench_path


def run_fuzz(
    seeds: int = 50,
    max_gates: int = 40,
    max_inputs: int = 6,
    backends: Sequence[str] = DEFAULT_FUZZ_BACKENDS,
    atol: float = 1e-10,
    out_dir: Optional[Path] = None,
    seed_base: int = 0,
    progress=None,
) -> FuzzReport:
    """Differentially fuzz ``seeds`` random cases; shrink + dump failures.

    Parameters
    ----------
    seeds:
        Number of cases; seeds run ``seed_base .. seed_base+seeds-1``.
    max_gates, max_inputs:
        Upper bounds on generated circuit size (``max_inputs`` also
        bounds the ``4^n`` oracle cost; keep it <= 8).
    backends:
        Backend names -- or specs with compile options and an optional
        per-spec tolerance, e.g. ``"segmented(refine=2,
        max_gates_per_segment=10, atol=0.5)"`` (see
        :func:`parse_backend_spec`) -- to compare against the oracle.
    atol:
        Per-entry tolerance on each line's 4-state distribution
        (overridden per spec by an ``atol=...`` pseudo-option).
    out_dir:
        Where reproducers for failing (shrunk) cases are written;
        ``None`` disables reproducer emission.
    progress:
        Optional callback ``progress(case: FuzzCase)`` after each seed.
    """
    report = FuzzReport(seeds=seeds, atol=atol, backends=tuple(backends))
    for seed in range(seed_base, seed_base + seeds):
        circuit, spec = make_case(seed, max_gates=max_gates, max_inputs=max_inputs)
        model = input_model_from_json(input_model_to_json(spec))
        mismatches = _diff_case(circuit, model, backends, atol)
        case = FuzzCase(seed=seed, circuit=circuit, model_spec=spec)
        if mismatches:
            shrunk_circuit, shrunk_spec, shrunk_mismatches = shrink_case(
                circuit, spec, backends, atol
            )
            case.circuit = shrunk_circuit
            case.model_spec = shrunk_spec
            case.mismatches = shrunk_mismatches or mismatches
            if out_dir is not None:
                case.reproducer = _write_reproducer(
                    Path(out_dir),
                    seed,
                    case.circuit,
                    case.model_spec,
                    case.mismatches,
                    atol,
                )
        report.cases.append(case)
        if progress is not None:
            progress(case)
    return report
