"""Testing utilities: the cross-backend differential fuzz harness.

This package is part of the library (not the test suite) so the
``repro fuzz`` CLI and CI can drive it, and so downstream users can
fuzz their own backends registered via
:func:`repro.core.backend.register_backend`.
"""

from repro.testing.differential import (
    FuzzCase,
    FuzzReport,
    Mismatch,
    input_model_from_json,
    input_model_to_json,
    make_case,
    run_fuzz,
)

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "Mismatch",
    "input_model_from_json",
    "input_model_to_json",
    "make_case",
    "run_fuzz",
]
