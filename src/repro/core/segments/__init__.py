"""Segment-graph estimation of large circuits.

The package splits the former monolithic ``repro.core.segmentation``
module along its three concerns:

- :mod:`.partition` -- cut discovery and the explicit segment DAG
  (:class:`SegmentGraph`), pure structure;
- :mod:`.boundary` -- the input models that carry statistics across a
  cut (:class:`BoundaryModel` protocol);
- :mod:`.refine` -- iterative boundary refinement via glue-cone joints;
- :mod:`.estimator` -- :class:`SegmentedEstimator`, orchestrating all
  of the above.

``repro.core.segmentation`` remains as a compatibility shim
re-exporting the public names (and the historical underscore-prefixed
ones) from here.
"""

from repro.core.segments.boundary import (
    BoundaryModel,
    FixedMarginalInputs,
    SegmentInputs,
    TreeBoundaryInputs,
)
from repro.core.segments.estimator import SegmentedEstimator
from repro.core.segments.partition import (
    SegmentGraph,
    SegmentNode,
    SegmentRegistry,
)
from repro.core.segments.refine import BoundaryRefiner, GlueEdge

__all__ = [
    "BoundaryModel",
    "BoundaryRefiner",
    "FixedMarginalInputs",
    "GlueEdge",
    "SegmentGraph",
    "SegmentInputs",
    "SegmentNode",
    "SegmentRegistry",
    "SegmentedEstimator",
    "TreeBoundaryInputs",
]
