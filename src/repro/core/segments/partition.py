"""Cut discovery and segment-DAG construction.

The partitioning pipeline is pure structure -- no probabilities touch
it -- and lives here as free functions over a :class:`Circuit`:

1. :func:`cone_clustered_order` linearizes the gate-output lines in DFS
   post-order from the outputs, so contiguous chunks follow output
   *cones* (narrow vertical slices) instead of full-width level bands;
2. the chunks (fixed gate count for junction-tree segments,
   :func:`partition_by_inputs` for enumeration segments) expand with
   :func:`expand_with_lookback` levels of duplicated upstream logic;
3. each compiled segment registers with a :class:`SegmentRegistry`,
   which resolves boundary *providers* (who publishes a line) for the
   spanning-forest construction in :func:`boundary_forest`;
4. the finished registry freezes into a :class:`SegmentGraph` -- the
   explicit segment DAG (nodes, line ownership, dependency levels,
   downstream adjacency) that propagation and iterative refinement
   walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.states import N_STATES

__all__ = [
    "SegmentGraph",
    "SegmentNode",
    "SegmentRegistry",
    "boundary_forest",
    "chunk_levels",
    "cone_clustered_order",
    "cone_overlap",
    "expand_with_lookback",
    "partition_by_inputs",
    "provider_has_joint",
    "truncated_cone",
]


# ----------------------------------------------------------------------
# Linearization and chunking
# ----------------------------------------------------------------------


def cone_clustered_order(circuit: Circuit) -> List[str]:
    """Gate-output lines in DFS post-order from the primary outputs.

    Post-order is a valid topological order (a gate's sources always
    precede it) whose contiguous ranges follow output *cones* --
    narrow vertical slices of the circuit -- rather than full-width
    level bands.  Chunking this order keeps per-segment moral-graph
    treewidth near the cone width instead of the circuit width,
    which is what makes large shallow circuits compile.
    """
    visited: set = set()
    order: List[str] = []
    roots = list(circuit.outputs) + circuit.internal_lines
    for root in roots:
        if root in visited:
            continue
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            gate = circuit.driver(node)
            if gate is None:
                continue  # primary inputs are not chunked
            stack.append((node, True))
            for src in gate.inputs:
                if src not in visited:
                    stack.append((src, False))
    return order


def expand_with_lookback(circuit: Circuit, chunk: Sequence[str], lookback: int) -> set:
    """Chunk lines plus ``lookback`` levels of duplicated upstream gates."""
    expanded = set(chunk)
    frontier = set(chunk)
    for _ in range(lookback):
        next_frontier = set()
        for line in frontier:
            gate = circuit.driver(line)
            if gate is None:
                continue
            for src in gate.inputs:
                if src not in expanded and circuit.driver(src) is not None:
                    next_frontier.add(src)
        expanded |= next_frontier
        frontier = next_frontier
    return expanded


def partition_by_inputs(
    circuit: Circuit, order: List[str], enum_input_states: int
) -> List[List[str]]:
    """Greedy cone-order partition bounded by external-input count.

    Enumeration cost is ``4^inputs`` regardless of segment size, so
    segments grow until adding the next gate would push the external
    input set past the budget.
    """
    max_inputs = int(np.log(enum_input_states) / np.log(N_STATES))
    chunks: List[List[str]] = []
    current: List[str] = []
    produced: set = set()
    external: set = set()
    for line in order:
        gate = circuit.driver(line)
        new_external = {s for s in gate.inputs if s not in produced}
        if current and len(external | new_external) > max_inputs:
            chunks.append(current)
            current = []
            produced = set()
            external = set()
            new_external = set(gate.inputs)
        current.append(line)
        produced.add(line)
        external |= new_external
    if current:
        chunks.append(current)
    return chunks


def chunk_levels(
    circuit: Circuit, chunks: List[List[str]], lookback: int
) -> List[int]:
    """Dependency level per chunk over the chunk-ownership DAG.

    Chunk ``j`` is a dependency of chunk ``i`` when any line of
    ``i``'s lookback-expanded segment (gates or their sources) is
    owned by ``j``.  The expansion with the *maximum* lookback is
    used, so levels stay conservative even when a budget miss later
    sheds lookback or splits the chunk (sub-chunks only shrink the
    expansion).
    """
    owner_chunk = {
        line: index for index, chunk in enumerate(chunks) for line in chunk
    }
    levels: List[int] = []
    for index, chunk in enumerate(chunks):
        expanded = expand_with_lookback(circuit, chunk, lookback)
        needed = set(expanded)
        for line in expanded:
            needed.update(circuit.driver(line).inputs)
        deps = {
            owner_chunk[line]
            for line in needed
            if line in owner_chunk and owner_chunk[line] != index
        }
        levels.append(1 + max((levels[d] for d in deps), default=-1))
    return levels


# ----------------------------------------------------------------------
# Structural correlation proxies
# ----------------------------------------------------------------------


def truncated_cone(
    circuit: Circuit, line: str, depth: int, cache: Dict[str, frozenset]
) -> frozenset:
    """Fanin cone of ``line`` truncated at ``depth`` levels, memoized."""
    cached = cache.get(line)
    if cached is not None:
        return cached
    cone = {line}
    frontier = {line}
    for _ in range(depth):
        next_frontier = set()
        for ln in frontier:
            gate = circuit.driver(ln)
            if gate is not None:
                next_frontier.update(
                    src for src in gate.inputs if src not in cone
                )
        cone |= next_frontier
        frontier = next_frontier
    result = frozenset(cone)
    cache[line] = result
    return result


def cone_overlap(
    circuit: Circuit,
    a: str,
    b: str,
    cache: Dict[str, frozenset],
    depth: int = 8,
) -> int:
    """Size of the shared truncated fanin cone -- a cheap structural
    proxy for the correlation strength of two lines."""
    return len(
        truncated_cone(circuit, a, depth, cache)
        & truncated_cone(circuit, b, depth, cache)
    )


def provider_has_joint(provider_estimator, a: str, b: str) -> bool:
    """Can the provider supply the joint of two of its lines?"""
    from repro.core.enumeration import EnumerationSegment

    if isinstance(provider_estimator, EnumerationSegment):
        return True  # enumeration can join any pair it retained
    cliques = provider_estimator.junction_tree.cliques
    pair = {a, b}
    return any(pair <= clique for clique in cliques)


def boundary_forest(
    circuit: Circuit,
    inputs: Sequence[str],
    registry: "SegmentRegistry",
    cone_cache: Dict[str, frozenset],
) -> Dict[str, str]:
    """Spanning forest over segment inputs whose pairwise joints are
    available upstream, weighted by shared-fanin-cone size.

    Only *same-provider* pairs qualify: the joint of two lines owned by
    different segments does not exist anywhere upstream.  The iterative
    refinement mode grafts cross-provider *glue* edges onto this forest
    (see :mod:`repro.core.segments.refine`).
    """
    import itertools

    import networkx as nx

    by_provider: Dict[int, List[str]] = {}
    providers: Dict[int, object] = {}
    for line in inputs:
        provider = registry.provider_of(line)
        if provider is not None:
            by_provider.setdefault(id(provider), []).append(line)
            providers[id(provider)] = provider

    graph = nx.Graph()
    for key, lines in by_provider.items():
        if len(lines) < 2:
            continue
        provider_estimator = providers[key]
        for a, b in itertools.combinations(lines, 2):
            if provider_has_joint(provider_estimator, a, b):
                weight = cone_overlap(circuit, a, b, cone_cache)
                if weight > 0:
                    graph.add_edge(a, b, weight=weight)

    parent_of: Dict[str, str] = {}
    forest = nx.Graph()
    forest.add_edges_from(nx.maximum_spanning_edges(graph, data=False))
    for component in nx.connected_components(forest):
        root = next(iter(component))
        for parent, child in nx.bfs_edges(forest, root):
            parent_of[child] = parent
    return parent_of


# ----------------------------------------------------------------------
# The segment graph
# ----------------------------------------------------------------------


@dataclass
class SegmentNode:
    """One compiled segment: its subcircuit, estimator, and cut data.

    ``owned`` is the set of lines this segment publishes (duplicated
    lookback gates are excluded); ``parent_of`` is the boundary forest
    over the segment's *input* lines, and ``glue_children`` marks the
    subset of forest children whose edge crosses providers -- their
    conditionals come from a glue estimator during refinement instead
    of a live upstream joint query.
    """

    segment: Circuit
    estimator: object
    owned: set
    parent_of: Dict[str, str]
    glue_children: frozenset = frozenset()
    #: child -> gate-output lines of its glue cone (compile-time plan;
    #: the cone's enumeration estimator is built once at finalize)
    glue_plans: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def as_record(self) -> Tuple[Circuit, object, set, Dict[str, str]]:
        return (self.segment, self.estimator, self.owned, self.parent_of)


class SegmentRegistry:
    """Staging area for compiled segments.

    Registration order is the (deterministic) serial compile order.  A
    registry can chain to a frozen ``base``: parallel compile workers
    stage their own chunk's segments locally while resolving boundary
    providers through the base, which holds every lower-level segment.
    Same-level chunks never provide each other's inputs, so a worker's
    view is identical to what the serial pass would have seen.
    """

    __slots__ = ("base", "records", "_provider")

    def __init__(self, base: Optional["SegmentRegistry"] = None):
        self.base = base
        #: :class:`SegmentNode` entries in registration order
        self.records: List[SegmentNode] = []
        self._provider: Dict[str, object] = {}

    def provider_of(self, line: str):
        """The estimator that publishes ``line``, or None."""
        provider = self._provider.get(line)
        if provider is None and self.base is not None:
            return self.base.provider_of(line)
        return provider

    def add(
        self,
        segment: Circuit,
        estimator,
        owned: set,
        parent_of: Dict[str, str],
        glue_children: frozenset = frozenset(),
        glue_plans: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.add_node(
            SegmentNode(
                segment, estimator, owned, parent_of, glue_children,
                glue_plans or {},
            )
        )

    def add_node(self, node: SegmentNode) -> None:
        self.records.append(node)
        for line in node.owned:
            self._provider[line] = node.estimator


class SegmentGraph:
    """The explicit segment DAG: nodes, ownership, levels, adjacency.

    Edges run from the owner of a boundary line to every segment that
    consumes it.  Propagation walks the nodes in registration order (a
    topological order of this DAG by construction); the level pipeline
    and the refinement loop use :meth:`levels` and :meth:`dependents`
    to parallelize and to cascade dirtiness.
    """

    def __init__(self, nodes: List[SegmentNode]):
        self.nodes = nodes
        self.owner: Dict[str, int] = {}
        for index, node in enumerate(nodes):
            for line in node.owned:
                self.owner[line] = index

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index: int) -> SegmentNode:
        return self.nodes[index]

    def dependencies(self, index: int) -> set:
        """Indices of segments owning this segment's input lines."""
        node = self.nodes[index]
        return {
            self.owner[line]
            for line in node.segment.inputs
            if line in self.owner and self.owner[line] != index
        }

    def dependents(self) -> Dict[int, List[int]]:
        """Downstream adjacency: owner index -> consumer indices."""
        out: Dict[int, List[int]] = {i: [] for i in range(len(self.nodes))}
        for index in range(len(self.nodes)):
            for dep in self.dependencies(index):
                out[dep].append(index)
        return out

    def levels(self) -> List[int]:
        """Dependency level per segment: a segment depends on the
        owners of its boundary input lines."""
        levels: List[int] = []
        for index in range(len(self.nodes)):
            deps = self.dependencies(index)
            levels.append(1 + max((levels[d] for d in deps), default=-1))
        return levels

    def boundary_edges(self) -> List[Tuple[int, int, str]]:
        """Cut edges as ``(owner_index, consumer_index, line)`` triples."""
        edges: List[Tuple[int, int, str]] = []
        for index, node in enumerate(self.nodes):
            for line in node.segment.inputs:
                owner = self.owner.get(line)
                if owner is not None and owner != index:
                    edges.append((owner, index, line))
        return edges
