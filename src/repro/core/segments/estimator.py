"""Multiple-BN estimation of large circuits (paper Section 6).

Circuits whose single junction tree would blow the clique budget are cut
into *segments* along the topological order.  Each segment becomes its
own LIDAG/junction tree; the 4-state marginals of the lines crossing a
segment boundary are computed in the upstream segment and handed to the
downstream segment as independent input priors.

This is exactly the paper's "preliminary segmentation scheme":
single-segment circuits are exact, while multi-segment circuits lose the
*joint* correlation of boundary lines (only their marginals cross the
cut), which is the error source the paper reports for its larger
benchmarks.  Two recovery mechanisms narrow that gap:

- ``boundary="tree"`` (default) hands a spanning forest of pairwise
  boundary joints across each cut (:mod:`.boundary`);
- ``refine > 0`` additionally iterates the whole segment graph to a
  fixed point, passing glue-cone joints across cuts no single upstream
  segment covers (:mod:`.refine`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bayesian.propagation import PropagationCounters
from repro.circuits.netlist import Circuit
from repro.core.backend.base import Method
from repro.core.backend.errors import CliqueBudgetExceeded
from repro.core.estimator import SwitchingActivityEstimator, SwitchingEstimate
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import N_STATES
from repro.errors import SegmentBoundaryError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

from repro.core.segments.boundary import (
    FixedMarginalInputs,
    SegmentInputs,
    TreeBoundaryInputs,
)
from repro.core.segments.partition import (
    SegmentGraph,
    SegmentRegistry,
    boundary_forest,
    chunk_levels,
    cone_clustered_order,
    expand_with_lookback,
    partition_by_inputs,
)
from repro.core.segments.refine import (
    BoundaryRefiner,
    augment_boundary_forest,
    run_refinement,
)

__all__ = ["SegmentedEstimator"]


class SegmentedEstimator:
    """Switching-activity estimation with multiple Bayesian networks.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    input_model:
        Primary-input statistics.  Note: across segment boundaries only
        marginals (or, in ``boundary="tree"`` mode, a spanning forest of
        pairwise joints) propagate, so spatial input correlation is
        preserved exactly only within a single segment.
    max_gates_per_segment:
        Initial segment granularity; segments whose junction tree would
        exceed ``max_clique_states`` are split in half recursively.
    max_clique_states:
        Per-segment clique table budget.
    lookback:
        Levels of upstream logic duplicated into each segment.  The
        duplicated cone re-creates reconvergent correlations close to
        the cut, shrinking the boundary-independence error at the cost
        of larger segments.  0 reproduces the naive scheme.
    boundary:
        ``"independent"`` hands only marginals across cuts (the paper's
        preliminary scheme); ``"tree"`` additionally carries a spanning
        forest of pairwise boundary joints (the paper's future-work
        segmentation, our default).
    enum_input_states:
        When a segment's junction tree would blow the clique budget but
        the segment has few *inputs*, fall back to exact support
        enumeration (:class:`~repro.core.enumeration.EnumerationSegment`)
        instead of splitting it -- deterministic CPTs make the segment's
        joint support only ``4^inputs`` large no matter the treewidth.
        This is the budget on that support size; 0 disables the fallback.
    backend:
        ``"auto"`` (default): junction trees with the enumeration
        fallback.  ``"jt"``: junction trees only (the paper's setup).
        ``"enum"``: every segment is enumerated; the partition greedily
        grows segments along the cone order until the *input-count*
        budget, which typically yields far fewer, larger, exact
        segments on high-treewidth circuits.
    parallelism:
        Worker threads for the segment pipeline.  ``0`` or ``1`` keeps
        the serial path.  ``>= 2`` compiles independent chunks
        concurrently and propagates level-by-level over the segment
        ownership DAG; results are bitwise identical to the serial
        path (each segment sees exactly the same upstream inputs).
    refine:
        Iterative boundary-refinement budget.  ``0`` (default) keeps
        the one-pass scheme bit-for-bit.  ``N >= 1`` augments each
        boundary forest with cross-provider *glue* edges at compile
        time and, at estimate time, re-propagates dirty segments up to
        ``N`` times, re-deriving glue joints from the latest beliefs
        each round (see :mod:`repro.core.segments.refine`).  Requires
        ``boundary="tree"``.
    refine_tol:
        Convergence threshold: refinement stops once the largest
        boundary-belief change of an iteration drops below this.
    max_iters:
        Hard cap on refinement iterations (defaults to ``refine``).
        The effective budget is ``min(refine, max_iters)``.
    glue_states:
        Support budget of one glue cone (``4^inputs`` rows); glue
        edges whose cone cannot fit are dropped from the forest.
    """

    def __init__(
        self,
        circuit: Circuit,
        input_model: Optional[InputModel] = None,
        max_gates_per_segment: int = 60,
        max_clique_states: int = 4 ** 9,
        heuristic: str = "min_fill",
        lookback: int = 3,
        boundary: str = "tree",
        enum_input_states: int = 4 ** 9,
        backend: str = "auto",
        parallelism: int = 0,
        kernel: str = "auto",
        refine: int = 0,
        refine_tol: float = 1e-5,
        max_iters: Optional[int] = None,
        glue_states: int = 4 ** 7,
    ):
        if max_gates_per_segment < 1:
            raise ValueError("max_gates_per_segment must be >= 1")
        if kernel not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown kernel mode {kernel!r}")
        if lookback < 0:
            raise ValueError("lookback must be >= 0")
        if boundary not in ("independent", "tree"):
            raise SegmentBoundaryError(f"unknown boundary mode {boundary!r}")
        if backend not in ("auto", "jt", "enum"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "enum" and not enum_input_states:
            raise ValueError("backend='enum' requires enum_input_states > 0")
        if parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        if refine < 0:
            raise ValueError("refine must be >= 0")
        if refine and boundary != "tree":
            raise SegmentBoundaryError(
                f"refine requires boundary='tree', not {boundary!r}"
            )
        if refine_tol <= 0:
            raise ValueError("refine_tol must be > 0")
        if max_iters is not None and max_iters < 1:
            raise ValueError("max_iters must be >= 1")
        if glue_states < N_STATES ** 2:
            raise ValueError("glue_states must allow at least two inputs")
        self.circuit = circuit
        self.input_model = input_model if input_model is not None else IndependentInputs(0.5)
        self.max_gates_per_segment = max_gates_per_segment
        self.max_clique_states = max_clique_states
        self.heuristic = heuristic
        self.lookback = lookback
        self.boundary = boundary
        self.enum_input_states = enum_input_states
        self.backend = backend
        self.parallelism = parallelism
        self.kernel = kernel
        self.refine = refine
        self.refine_tol = refine_tol
        self.max_iters = max_iters
        self.glue_states = glue_states
        #: the compiled segment DAG (None before :meth:`compile`)
        self.graph: Optional[SegmentGraph] = None
        self._refiner: Optional[BoundaryRefiner] = None
        self.compile_seconds = 0.0
        #: (iterations, delta) of the most recent refinement run
        self.last_refine: Tuple[int, float] = (0, 0.0)

    def effective_refine_iters(self) -> int:
        """The actual iteration budget: ``min(refine, max_iters)``."""
        if not self.refine:
            return 0
        if self.max_iters is not None:
            return min(self.refine, self.max_iters)
        return self.refine

    # ------------------------------------------------------------------

    def compile(self) -> "SegmentedEstimator":
        """Partition the circuit and compile one junction tree per segment."""
        if self.graph is not None:
            return self
        with get_tracer().span(
            "segmented.compile",
            circuit=self.circuit.name,
            parallelism=self.parallelism,
            backend="segmented",
        ) as span:
            internal = cone_clustered_order(self.circuit)
            self._position = {
                ln: i for i, ln in enumerate(self.circuit.topological_order())
            }
            self._cone_cache: Dict[str, frozenset] = {}
            if self.backend == "enum":
                chunks = partition_by_inputs(
                    self.circuit, internal, self.enum_input_states
                )
                compile_fn = self._compile_enum_chunk
            else:
                chunks = [
                    internal[i : i + self.max_gates_per_segment]
                    for i in range(0, len(internal), self.max_gates_per_segment)
                ]
                compile_fn = lambda chunk, label, registry: self._compile_chunk(  # noqa: E731
                    chunk, label, self.lookback, registry
                )
            registry = SegmentRegistry()
            if self.parallelism > 1 and len(chunks) > 1:
                records = self._compile_chunks_parallel(chunks, compile_fn, registry)
            else:
                for index, chunk in enumerate(chunks):
                    compile_fn(chunk, f"{index}", registry)
                records = registry.records
            self.graph = SegmentGraph(records)
            if self.refine:
                self._refiner = BoundaryRefiner.build(self)
                span.annotate(glue_edges=len(self._refiner))
            span.annotate(segments=len(self.graph))
            metrics = get_metrics()
            if metrics.enabled:
                metrics.gauge("segmented.segments").set(len(self.graph))
        self.compile_seconds = span.duration
        return self

    def _compile_chunks_parallel(self, chunks, compile_fn, registry):
        """Compile chunks level-by-level with a thread pool.

        Each worker stages its chunk's segments (including any budget
        splits) into a private registry chained to the shared one, so
        sub-chunks of the same chunk see each other exactly as in the
        serial pass.  Staged records merge into the shared registry
        after every level; the final record list is rebuilt in chunk
        order, which reproduces the serial registration order exactly.
        """
        from concurrent.futures import ThreadPoolExecutor

        tracer = get_tracer()
        levels = chunk_levels(self.circuit, chunks, self.lookback)
        staged: List[Optional[SegmentRegistry]] = [None] * len(chunks)
        with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
            for level in range(max(levels) + 1):
                members = [i for i, lv in enumerate(levels) if lv == level]
                with tracer.span(
                    "segmented.compile.level", level=level, chunks=len(members)
                ) as level_span:
                    futures = []
                    for index in members:
                        staged[index] = SegmentRegistry(base=registry)
                        futures.append(
                            pool.submit(
                                self._compile_chunk_traced,
                                compile_fn,
                                chunks[index],
                                f"{index}",
                                staged[index],
                                level_span,
                            )
                        )
                    for future in futures:
                        future.result()
                    for index in members:
                        for node in staged[index].records:
                            registry.add_node(node)
        return [node for reg in staged for node in reg.records]

    def _compile_chunk_traced(self, compile_fn, chunk, label, registry, parent):
        """Run one chunk compile on a worker thread, nesting its spans
        under the level span owned by the coordinating thread."""
        with get_tracer().span("segment.compile", parent=parent, chunk=label):
            compile_fn(chunk, label, registry)

    def _compile_enum_chunk(
        self, chunk: List[str], label: str, registry: SegmentRegistry
    ) -> None:
        """Build an enumeration segment for a chunk.

        Like the junction-tree path, upstream logic is duplicated into
        the segment (``lookback`` levels) to regenerate reconvergent
        correlation near the cut; the lookback shrinks until the
        expanded segment's input count fits the enumeration budget (the
        unexpanded chunk always fits by construction).
        """
        from repro.core.enumeration import EnumerationSegment, SegmentTooWide

        owned = set(chunk)
        for lookback in range(self.lookback, -1, -1):
            expanded = expand_with_lookback(self.circuit, chunk, lookback)
            sources = {
                src for line in expanded for src in self.circuit.driver(line).inputs
            }
            lines = sorted(expanded | sources, key=self._position.__getitem__)
            segment = self.circuit.subcircuit(
                lines, name=f"{self.circuit.name}.seg{label}"
            )
            placeholder, parent_of, glue_children, glue_plans = (
                self._placeholder_inputs(segment, registry)
            )
            try:
                estimator = EnumerationSegment(
                    segment,
                    placeholder,
                    max_input_states=self.enum_input_states,
                    keep_lines=owned,
                )
            except SegmentTooWide:
                continue
            registry.add(
                segment, estimator, owned, parent_of, glue_children, glue_plans
            )
            return
        raise AssertionError("unexpanded enum chunk must fit its own budget")

    def _split_segment_inputs(
        self, segment: Circuit
    ) -> Tuple[List[str], List[str]]:
        """A segment's input lines, split into (primary, boundary).

        Primary lines are primary inputs of the full circuit and keep
        the user model's statistics (including correlation CPDs among
        them); boundary lines are driven by upstream segments and carry
        refreshed upstream marginals/conditionals.
        """
        primary = [
            name for name in segment.inputs if self.circuit.driver(name) is None
        ]
        primary_set = set(primary)
        boundary = [name for name in segment.inputs if name not in primary_set]
        return primary, boundary

    def _placeholder_inputs(
        self, segment: Circuit, registry: SegmentRegistry
    ) -> Tuple[InputModel, Dict[str, str], frozenset, Dict[str, Tuple[str, ...]]]:
        """Compile-time input model of a segment.

        The *structure* (which input-to-input CPD edges exist) is baked
        into the segment's LIDAG here; numbers are refreshed at every
        :meth:`_propagate_segment`.  Primary inputs take their CPDs from
        the user model, boundary lines start uniform.  With
        ``refine > 0`` the boundary forest additionally carries glue
        edges (returned as ``glue_children`` plus their cone plans).
        """
        primary, boundary_lines = self._split_segment_inputs(segment)
        uniform = {name: np.full(N_STATES, 0.25) for name in boundary_lines}
        glue_children: frozenset = frozenset()
        glue_plans: Dict[str, Tuple[str, ...]] = {}
        if self.boundary == "tree":
            if self.refine:
                parent_of, glue_children, glue_plans = augment_boundary_forest(
                    self.circuit,
                    segment.inputs,
                    registry,
                    self._cone_cache,
                    max_input_states=self.glue_states,
                )
            else:
                parent_of = boundary_forest(
                    self.circuit, segment.inputs, registry, self._cone_cache
                )
            inner: InputModel = TreeBoundaryInputs(uniform, parent_of)
        else:
            parent_of = {}
            inner = FixedMarginalInputs(uniform)
        return (
            SegmentInputs(self.input_model, primary, inner),
            parent_of,
            glue_children,
            glue_plans,
        )

    def _compile_chunk(
        self, chunk: List[str], label: str, lookback: int, registry: SegmentRegistry
    ) -> None:
        """Compile a chunk of gate-output lines, splitting on budget misses.

        On a budget miss the chunk is halved first (quarter-cost
        retriangulations, lookback accuracy kept); lookback is shed only
        once the chunk is too small to split usefully.  Finalized
        segments register in topological order so downstream chunks can
        see their owners and junction trees.
        """
        owned = set(chunk)
        expanded = expand_with_lookback(self.circuit, chunk, lookback)
        sources = {
            src
            for line in expanded
            for src in self.circuit.driver(line).inputs
        }
        lines = sorted(expanded | sources, key=self._position.__getitem__)
        segment = self.circuit.subcircuit(lines, name=f"{self.circuit.name}.seg{label}")
        placeholder, parent_of, glue_children, glue_plans = (
            self._placeholder_inputs(segment, registry)
        )
        estimator = SwitchingActivityEstimator(
            segment,
            input_model=placeholder,
            heuristic=self.heuristic,
            max_clique_states=self.max_clique_states,
            kernel=self.kernel,
        )
        try:
            estimator.compile()
        except CliqueBudgetExceeded:
            # High treewidth but few inputs: exploit CPT determinism via
            # exact support enumeration rather than lossy splitting.
            if self.enum_input_states:
                from repro.core.enumeration import EnumerationSegment, SegmentTooWide

                try:
                    enum_estimator = EnumerationSegment(
                        segment,
                        placeholder,
                        max_input_states=self.enum_input_states,
                        keep_lines=owned,
                    )
                    registry.add(
                        segment, enum_estimator, owned, parent_of,
                        glue_children, glue_plans,
                    )
                    return
                except SegmentTooWide:
                    pass
            if len(chunk) > 8:
                mid = len(chunk) // 2
                self._compile_chunk(chunk[:mid], label + "a", lookback, registry)
                self._compile_chunk(chunk[mid:], label + "b", lookback, registry)
                return
            if lookback > 0:
                self._compile_chunk(chunk, label, lookback - 1, registry)
                return
            if len(chunk) == 1:
                raise
            mid = len(chunk) // 2
            self._compile_chunk(chunk[:mid], label + "a", 0, registry)
            self._compile_chunk(chunk[mid:], label + "b", 0, registry)
            return
        registry.add(segment, estimator, owned, parent_of, glue_children, glue_plans)

    def __getstate__(self):
        # The cone cache is a compile-time accelerator that can hold
        # megabytes of frozensets; compiled artifacts never need it.
        state = self.__dict__.copy()
        state.pop("_cone_cache", None)
        return state

    # ------------------------------------------------------------------

    def update_inputs(self, input_model: InputModel) -> None:
        """Swap primary-input statistics without recompiling.

        Segment junction trees are reused as-is; the new statistics
        enter through the boundary refresh at the next :meth:`estimate`
        (only marginals -- and, in tree mode, pairwise joints -- cross
        segment cuts, so input correlation models degrade exactly as
        the paper's segmentation scheme describes).
        """
        self.compile()
        self.input_model = input_model

    def estimate(self) -> SwitchingEstimate:
        """Propagate marginals segment by segment in topological order.

        With ``parallelism >= 2`` the segments propagate level-by-level
        over the ownership DAG: all segments of a level run
        concurrently (their inputs are fully published by lower
        levels), and the published marginals merge between levels.
        Each segment's computation sees exactly the inputs it would see
        serially, so the results are identical.

        With ``refine > 0`` the one-pass sweep is followed by the
        iterative boundary-refinement loop, which re-propagates dirty
        segments until the boundary beliefs converge (see
        :mod:`repro.core.segments.refine`).
        """
        self.compile()
        tracer = get_tracer()
        with tracer.span(
            "segmented.propagate",
            circuit=self.circuit.name,
            segments=len(self.graph),
            backend="segmented",
        ) as span:
            known: Dict[str, np.ndarray] = {
                name: self.input_model.marginal_distribution(name)
                for name in self.circuit.inputs
            }
            if self.parallelism > 1 and len(self.graph) > 1:
                from concurrent.futures import ThreadPoolExecutor

                levels = self.graph.levels()
                with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                    for level in range(max(levels) + 1):
                        members = [
                            i for i, lv in enumerate(levels) if lv == level
                        ]
                        with tracer.span(
                            "segmented.propagate.level",
                            level=level,
                            segments=len(members),
                        ) as level_span:
                            published = pool.map(
                                lambda index: self._propagate_segment(
                                    index, known, parent_span=level_span
                                ),
                                members,
                            )
                            for result in published:
                                known.update(result)
            else:
                for index in range(len(self.graph)):
                    known.update(self._propagate_segment(index, known))
            self.last_refine = run_refinement(self, known)
        return SwitchingEstimate(
            distributions=known,
            compile_seconds=self.compile_seconds,
            propagate_seconds=span.duration,
            method=(
                Method.SEGMENTED.value
                if len(self.graph) > 1
                else Method.SINGLE_BN.value
            ),
            segments=len(self.graph),
            refine_iterations=self.last_refine[0],
            refine_delta=self.last_refine[1],
        )

    def estimate_many(
        self, input_models, dtype: str = "float64", sweep_mode: str = "batched"
    ) -> List[SwitchingEstimate]:
        """Estimate K input-statistics scenarios in one batched sweep.

        Each junction-tree segment propagates all K scenarios in a
        single vectorized pass (:meth:`SwitchingActivityEstimator.
        estimate_many`); enumeration segments loop their (already
        vectorized) support pass per scenario, caching the pair joints
        downstream boundary trees will need.  The published boundary
        marginals flow between segments as ``(K, 4)`` stacks, composing
        with the ``parallelism`` level pipeline exactly like the
        single-scenario path.  Result ``k`` is bitwise-identical to an
        independent :meth:`estimate` with scenario ``k``'s model (same
        caveat as the engine: identical dirty paths, e.g. fresh
        compiles or sweeps updating every input).  ``self.input_model``
        is not modified.

        ``sweep_mode="delta"`` runs the per-segment dedup plan instead:
        scenarios whose *effective* inputs to a segment (primary-input
        CPD digests, boundary priors, boundary conditionals) coincide
        share one batch row, and results scatter back to all K rows --
        a segment outside a sweep's change cone collapses to one
        propagation.  Bitwise parity with the batched sweep follows
        from the engine's batch contract: equal effective inputs mean
        the shared row *is* the row every duplicate would have
        computed.  ``"auto"`` picks delta when the scenario set shows
        reuse (duplicate scenarios, or any input whose statistics never
        change across the sweep).  Delta requires ``refine == 0`` and a
        real multi-segment graph; otherwise it falls back to batched.
        """
        models = list(input_models)
        if not models:
            return []
        if sweep_mode not in ("auto", "batched", "delta"):
            raise ValueError(
                f"unknown sweep_mode {sweep_mode!r} (auto|batched|delta)"
            )
        self.compile()
        if (
            sweep_mode != "batched"
            and len(models) > 1
            and len(self.graph) > 1
            and self.effective_refine_iters() == 0
        ):
            from repro.core.rcache import input_cpd_signatures

            signatures = [
                input_cpd_signatures(self.circuit, m) for m in models
            ]
            if sweep_mode == "delta" or self._delta_profitable(signatures):
                return self._estimate_many_delta(models, signatures, dtype)
        k = len(models)
        tracer = get_tracer()
        with tracer.span(
            "segmented.propagate_many",
            circuit=self.circuit.name,
            segments=len(self.graph),
            scenarios=k,
            backend="segmented",
        ) as span:
            known: Dict[str, np.ndarray] = {
                name: np.stack(
                    [m.marginal_distribution(name) for m in models]
                )
                for name in self.circuit.inputs
            }
            #: (provider index, parent, child) -> (K, 4, 4) pair joints
            #: captured during enumeration segments' per-scenario loops
            enum_joints: Dict[Tuple[int, str, str], np.ndarray] = {}
            needed = self._needed_enum_joints()
            if self.parallelism > 1 and len(self.graph) > 1:
                from concurrent.futures import ThreadPoolExecutor

                levels = self.graph.levels()
                with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                    for level in range(max(levels) + 1):
                        members = [
                            i for i, lv in enumerate(levels) if lv == level
                        ]
                        with tracer.span(
                            "segmented.propagate.level",
                            level=level,
                            segments=len(members),
                        ) as level_span:
                            published = pool.map(
                                lambda index: self._propagate_segment_batch(
                                    index,
                                    known,
                                    models,
                                    needed,
                                    enum_joints,
                                    parent_span=level_span,
                                    dtype=dtype,
                                ),
                                members,
                            )
                            for result in published:
                                known.update(result)
            else:
                for index in range(len(self.graph)):
                    known.update(
                        self._propagate_segment_batch(
                            index, known, models, needed, enum_joints, dtype=dtype
                        )
                    )
            self.last_refine = run_refinement(
                self, known, models=models, needed=needed,
                enum_joints=enum_joints, dtype=dtype,
            )
        per_scenario = span.duration / k
        method = (
            Method.SEGMENTED.value
            if len(self.graph) > 1
            else Method.SINGLE_BN.value
        )
        return [
            SwitchingEstimate(
                distributions={line: known[line][j] for line in known},
                compile_seconds=self.compile_seconds,
                propagate_seconds=per_scenario,
                method=method,
                segments=len(self.graph),
                refine_iterations=self.last_refine[0],
                refine_delta=self.last_refine[1],
            )
            for j in range(k)
        ]

    def _needed_enum_joints(self) -> Dict[int, List[Tuple[str, str]]]:
        """Per enumeration segment, the (parent, child) boundary pairs
        downstream tree boundaries will request.  Junction-tree
        providers answer batched joint queries live and need no cache;
        glue children are excluded -- their conditionals come from the
        refinement loop's glue estimators, never a live provider."""
        from repro.core.enumeration import EnumerationSegment

        needed: Dict[int, List[Tuple[str, str]]] = {}
        for node in self.graph.nodes:
            for child, parent in node.parent_of.items():
                if child in node.glue_children:
                    continue
                provider_index = self.graph.owner.get(child)
                if provider_index is None:
                    continue
                if not isinstance(
                    self.graph[provider_index].estimator, EnumerationSegment
                ):
                    continue
                pairs = needed.setdefault(provider_index, [])
                if (parent, child) not in pairs:
                    pairs.append((parent, child))
        return needed

    def _delta_profitable(self, signatures) -> bool:
        """Auto-mode gate: does the scenario set show per-segment reuse?

        True when any primary input's CPD digest is constant across all
        scenarios (segments outside the change cone then collapse) or
        when whole scenarios repeat.  A sweep that changes every input
        every time gains nothing from dedup and stays batched.
        """
        first = signatures[0]
        rest = signatures[1:]
        for name, sig in first.items():
            if all(other.get(name) == sig for other in rest):
                return True
        keys = [
            tuple(sig[name][0] for name in sorted(sig)) for sig in signatures
        ]
        return len(set(keys)) < len(keys)

    def _estimate_many_delta(
        self, models: List[InputModel], signatures, dtype: str = "float64"
    ) -> List[SwitchingEstimate]:
        """Per-segment dedup sweep (``sweep_mode="delta"``).

        Serial segment order (providers always finish before their
        consumers read boundary joints); each segment batches only its
        unique effective-input representatives and scatters the rows
        back to all K scenarios.  ``scatter_of`` remembers each
        segment's scenario->representative map so downstream consumers
        can expand a provider's representative-sized live batch (its
        ``joint_marginal_batch``) to K rows.
        """
        k = len(models)
        tracer = get_tracer()
        with tracer.span(
            "segmented.propagate_many",
            circuit=self.circuit.name,
            segments=len(self.graph),
            scenarios=k,
            backend="segmented",
            sweep="delta",
        ) as span:
            known: Dict[str, np.ndarray] = {
                name: np.stack(
                    [m.marginal_distribution(name) for m in models]
                )
                for name in self.circuit.inputs
            }
            enum_joints: Dict[Tuple[int, str, str], np.ndarray] = {}
            needed = self._needed_enum_joints()
            scatter_of: Dict[int, np.ndarray] = {}
            for index in range(len(self.graph)):
                known.update(
                    self._propagate_segment_batch_dedup(
                        index, known, models, needed, enum_joints,
                        signatures, scatter_of, dtype=dtype,
                    )
                )
            self.last_refine = (0, 0.0)
        per_scenario = span.duration / k
        method = (
            Method.SEGMENTED.value
            if len(self.graph) > 1
            else Method.SINGLE_BN.value
        )
        return [
            SwitchingEstimate(
                distributions={line: known[line][j] for line in known},
                compile_seconds=self.compile_seconds,
                propagate_seconds=per_scenario,
                method=method,
                segments=len(self.graph),
            )
            for j in range(k)
        ]

    def _primary_closure(self, primary: List[str], signature) -> List[str]:
        """A segment's primary inputs closed over their correlation
        chains: a chained member's induced CPD depends on its
        predecessors' statistics, so the segment signature must cover
        them even when they live outside the segment."""
        seen: set = set()
        stack = list(primary)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            entry = signature.get(name)
            if entry is not None:
                stack.extend(entry[1])
        return sorted(seen)

    def _propagate_segment_batch_dedup(
        self,
        index: int,
        known: Dict[str, np.ndarray],
        models: List[InputModel],
        needed: Dict[int, List[Tuple[str, str]]],
        enum_joints: Dict[Tuple[int, str, str], np.ndarray],
        signatures,
        scatter_of: Dict[int, np.ndarray],
        dtype: str = "float64",
    ) -> Dict[str, np.ndarray]:
        """Dedup counterpart of :meth:`_propagate_segment_batch`.

        Builds a per-scenario *effective input signature* -- primary
        CPD digests (closed over correlation chains), boundary prior
        bytes, boundary conditional bytes -- and propagates only the
        first scenario of each signature class.  Two scenarios with
        equal signatures hand the segment bitwise-identical potentials,
        so by the engine's batch contract the representative's row is
        exactly the row each duplicate would have produced; the scatter
        therefore preserves the batched sweep bitwise.  Returned stacks
        are expanded back to ``(K, 4)``.
        """
        from repro.core.enumeration import EnumerationSegment
        from repro.core.sweep import group_scenarios

        node = self.graph[index]
        segment, estimator, owned = node.segment, node.estimator, node.owned
        k = len(models)
        with get_tracer().span(
            "segment.propagate_many",
            segment=segment.name,
            scenarios=k,
        ) as seg_span:
            primary, boundary_lines = self._split_segment_inputs(segment)
            parent_of = node.parent_of
            conditionals_b: Dict[str, np.ndarray] = {}
            for child, parent in parent_of.items():
                if child in node.glue_children:
                    # delta requires refine == 0, where no glue
                    # children exist; guarded for safety.
                    continue
                conditionals_b[child] = self._boundary_conditional_batch(
                    child, parent, known[child], enum_joints, scatter_of
                )
            closure = self._primary_closure(primary, signatures[0])
            keys = []
            for j in range(k):
                parts: List[bytes] = [
                    signatures[j][name][0] for name in closure
                ]
                parts.extend(
                    known[name][j].tobytes() for name in boundary_lines
                )
                parts.extend(
                    conditionals_b[child][j].tobytes()
                    for child in parent_of
                    if child in conditionals_b
                )
                keys.append(tuple(parts))
            reps, scatter_list = group_scenarios(keys)
            scatter = np.asarray(scatter_list, dtype=np.intp)
            scatter_of[index] = scatter
            seg_span.annotate(unique=len(reps))
            rep_models: List[InputModel] = []
            for j in reps:
                priors = {name: known[name][j] for name in boundary_lines}
                if parent_of:
                    boundary: InputModel = TreeBoundaryInputs(
                        priors,
                        parent_of,
                        {
                            child: conditionals_b[child][j]
                            for child in parent_of
                            if child in conditionals_b
                        },
                    )
                else:
                    boundary = FixedMarginalInputs(priors)
                rep_models.append(SegmentInputs(models[j], primary, boundary))
            published = [
                line for line in segment.internal_lines if line in owned
            ]
            if isinstance(estimator, EnumerationSegment):
                results = []
                pairs = needed.get(index, [])
                for position, scenario in enumerate(rep_models):
                    estimator.update_inputs(scenario)
                    results.append(estimator.estimate())
                    for parent, child in pairs:
                        key = (index, parent, child)
                        buffer = enum_joints.get(key)
                        if buffer is None:
                            buffer = enum_joints[key] = np.empty(
                                (len(rep_models), N_STATES, N_STATES)
                            )
                        buffer[position] = estimator.pair_joint(parent, child)
                return {
                    line: np.stack(
                        [r.distributions[line] for r in results]
                    )[scatter]
                    for line in published
                }
            stacks, _ = estimator.estimate_many_stacked(
                rep_models, published, dtype=dtype
            )
            return {line: stacks[line][scatter] for line in published}

    def _propagate_segment_batch(
        self,
        index: int,
        known: Dict[str, np.ndarray],
        models: List[InputModel],
        needed: Dict[int, List[Tuple[str, str]]],
        enum_joints: Dict[Tuple[int, str, str], np.ndarray],
        parent_span=None,
        dtype: str = "float64",
        glue_tables: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Batched counterpart of :meth:`_propagate_segment`.

        ``known`` maps each published line to a ``(K, 4)`` stack; the
        returned dict adds this segment's owned lines in the same
        layout.  ``enum_joints`` collects per-scenario pair joints while
        an enumeration segment's scenario loop runs, because
        :meth:`EnumerationSegment.pair_joint` only reflects the last
        scenario afterwards.  ``glue_tables`` maps glue children to
        ``(K, 4, 4)`` conditional stacks during refinement; in the base
        pass glue children fall back to their independent placeholder.
        """
        from repro.core.enumeration import EnumerationSegment

        node = self.graph[index]
        segment, estimator, owned = node.segment, node.estimator, node.owned
        k = len(models)
        with get_tracer().span(
            "segment.propagate_many",
            parent=parent_span,
            segment=segment.name,
            scenarios=k,
        ):
            primary, boundary_lines = self._split_segment_inputs(segment)
            parent_of = node.parent_of
            conditionals_b: Dict[str, np.ndarray] = {}
            for child, parent in parent_of.items():
                if child in node.glue_children:
                    if glue_tables is not None and child in glue_tables:
                        conditionals_b[child] = glue_tables[child]
                    continue
                conditionals_b[child] = self._boundary_conditional_batch(
                    child, parent, known[child], enum_joints
                )
            scenario_models: List[InputModel] = []
            for j in range(k):
                priors = {name: known[name][j] for name in boundary_lines}
                if parent_of:
                    boundary: InputModel = TreeBoundaryInputs(
                        priors,
                        parent_of,
                        {
                            child: conditionals_b[child][j]
                            for child in parent_of
                            if child in conditionals_b
                        },
                    )
                else:
                    boundary = FixedMarginalInputs(priors)
                scenario_models.append(
                    SegmentInputs(models[j], primary, boundary)
                )
            published = [
                line for line in segment.internal_lines if line in owned
            ]
            if isinstance(estimator, EnumerationSegment):
                results = []
                pairs = needed.get(index, [])
                for j, scenario in enumerate(scenario_models):
                    estimator.update_inputs(scenario)
                    results.append(estimator.estimate())
                    for parent, child in pairs:
                        key = (index, parent, child)
                        buffer = enum_joints.get(key)
                        if buffer is None:
                            buffer = enum_joints[key] = np.empty(
                                (k, N_STATES, N_STATES)
                            )
                        buffer[j] = estimator.pair_joint(parent, child)
                return {
                    line: np.stack([r.distributions[line] for r in results])
                    for line in published
                }
            # Junction-tree segment: the stacked API returns (K, 4)
            # stacks directly, skipping K per-scenario dicts that would
            # be re-stacked here anyway.  The extraction set matches the
            # single path's restricted ``estimate(lines=published)``
            # exactly -- a different variable set would regroup the per-
            # clique joint reductions and perturb the last float bit.
            stacks, _ = estimator.estimate_many_stacked(
                scenario_models, published, dtype=dtype
            )
            return {line: stacks[line] for line in published}

    def _boundary_conditional_batch(
        self,
        child: str,
        parent: str,
        child_priors: np.ndarray,
        enum_joints: Dict[Tuple[int, str, str], np.ndarray],
        scatter_of: Optional[Dict[int, np.ndarray]] = None,
    ) -> np.ndarray:
        """Batched ``P(child | parent)``: a ``(K, 4, 4)`` stack whose
        slice ``k`` mirrors :meth:`_boundary_conditional` for scenario
        ``k`` bitwise (same division, same near-zero-row fallback to
        the child's prior).  Under a dedup sweep the provider's live
        batch holds one row per unique upstream scenario; its
        ``scatter_of`` entry expands the joint back to K rows (a pure
        row gather, bitwise-transparent) before the division."""
        from repro.core.enumeration import EnumerationSegment

        provider_index = self.graph.owner[child]
        provider = self.graph[provider_index].estimator
        if isinstance(provider, EnumerationSegment):
            joint = enum_joints[(provider_index, parent, child)]
        else:
            joint = provider.junction_tree.joint_marginal_batch([parent, child])
        if scatter_of is not None:
            scatter = scatter_of.get(provider_index)
            if scatter is not None:
                joint = joint[scatter]
        mass = joint.sum(axis=2)
        ok = mass > 1e-15
        safe = np.where(ok, mass, 1.0)
        rows = joint / safe[:, :, None]
        return np.where(ok[:, :, None], rows, child_priors[:, None, :])

    def reset_propagation(self) -> None:
        """Force every segment's next estimate to be a full pass (see
        :meth:`SwitchingActivityEstimator.reset_propagation`)."""
        for node in self.graph.nodes if self.graph is not None else []:
            node.estimator.reset_propagation()

    def _propagate_segment(
        self,
        index: int,
        known: Dict[str, np.ndarray],
        parent_span=None,
        glue_tables: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Refresh one segment's boundary inputs, propagate it, and
        return the distributions of the lines it owns.

        ``known`` is only read (the caller merges the return value), so
        concurrent calls for independent segments are safe.
        ``parent_span`` nests this segment's span under the level span
        when running on a worker thread.  ``glue_tables`` supplies
        refreshed ``P(child | parent)`` tables for glue children during
        refinement; in the base pass (and at ``refine=0``, where no
        glue children exist) they fall back to the independent
        placeholder baked into the LIDAG structure.
        """
        node = self.graph[index]
        segment, estimator, owned = node.segment, node.estimator, node.owned
        with get_tracer().span(
            "segment.propagate", parent=parent_span, segment=segment.name
        ):
            primary, boundary_lines = self._split_segment_inputs(segment)
            priors = {name: known[name] for name in boundary_lines}
            parent_of = node.parent_of
            if parent_of:
                conditionals: Dict[str, np.ndarray] = {}
                for child, parent in parent_of.items():
                    if child in node.glue_children:
                        if glue_tables is not None and child in glue_tables:
                            conditionals[child] = glue_tables[child]
                        continue
                    conditionals[child] = self._boundary_conditional(
                        child, parent, priors[child]
                    )
                boundary: InputModel = TreeBoundaryInputs(
                    priors, parent_of, conditionals
                )
            else:
                boundary = FixedMarginalInputs(priors)
            from repro.core.enumeration import EnumerationSegment

            estimator.update_inputs(
                SegmentInputs(self.input_model, primary, boundary)
            )
            # Only the owned chunk publishes estimates; duplicated
            # lookback gates exist solely to rebuild local correlation.
            # Junction-tree segments extract marginals for exactly the
            # published lines -- anything else would be discarded below.
            published = [
                line for line in segment.internal_lines if line in owned
            ]
            if isinstance(estimator, EnumerationSegment):
                result = estimator.estimate()
            else:
                result = estimator.estimate(lines=published)
        return {line: result.distributions[line] for line in published}

    def _segment_levels(self) -> List[int]:
        """Dependency level per compiled segment (see
        :meth:`SegmentGraph.levels`)."""
        return self.graph.levels()

    def _boundary_conditional(
        self, child: str, parent: str, child_prior: np.ndarray
    ) -> np.ndarray:
        """``P(child | parent)`` from the provider segment; rows with
        (near-)zero parent probability fall back to the child's marginal."""
        from repro.core.enumeration import EnumerationSegment

        provider = self.graph[self.graph.owner[child]].estimator
        if isinstance(provider, EnumerationSegment):
            joint = provider.pair_joint(parent, child)
        else:
            joint = provider.junction_tree.joint_marginal([parent, child]).values
        rows = np.empty((N_STATES, N_STATES))
        for state in range(N_STATES):
            mass = joint[state].sum()
            rows[state] = joint[state] / mass if mass > 1e-15 else child_prior
        return rows

    # ------------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        self.compile()
        return len(self.graph)

    def propagation_counters(self) -> PropagationCounters:
        """Engine work counters summed over every junction-tree segment.

        Enumeration segments do no message passing and contribute
        nothing; before :meth:`compile` the totals are all zero.
        """
        totals = PropagationCounters()
        for node in self.graph.nodes if self.graph is not None else []:
            if isinstance(node.estimator, SwitchingActivityEstimator):
                totals.add(node.estimator.propagation_counters())
        return totals

    def factor_bytes(self) -> int:
        """Preallocated propagation-buffer bytes summed over segments."""
        if self.graph is None:
            return 0
        return sum(
            node.estimator.factor_bytes()
            for node in self.graph.nodes
            if isinstance(node.estimator, SwitchingActivityEstimator)
        )

    def support_stats(self) -> Dict[str, object]:
        """Support-analysis summary aggregated over junction-tree segments.

        Enumeration segments have no clique tables and contribute
        nothing; density is feasible/total over the aggregate.
        """
        self.compile()
        totals = {"cliques": 0, "sparse_cliques": 0, "total_states": 0,
                  "feasible_states": 0}
        for node in self.graph.nodes:
            if not isinstance(node.estimator, SwitchingActivityEstimator):
                continue
            stats = node.estimator.support_stats()
            for key in totals:
                totals[key] += stats[key]
        total = totals["total_states"]
        return {
            "kernel": self.kernel,
            **totals,
            "support_density": (
                totals["feasible_states"] / total if total else 1.0
            ),
        }

    def segment_stats(self) -> List[Dict[str, float]]:
        """Junction-tree statistics per segment (for reports/ablations)."""
        from repro.core.enumeration import EnumerationSegment

        self.compile()
        stats = []
        for node in self.graph.nodes:
            if isinstance(node.estimator, EnumerationSegment):
                entry = dict(node.estimator.stats())
                entry["backend"] = "enumeration"
            else:
                entry = dict(node.estimator.junction_tree.stats())
                entry["backend"] = "junction-tree"
            entry["gates"] = node.segment.num_gates
            entry["owned_gates"] = len(node.owned)
            entry["name"] = node.segment.name
            entry["glue_edges"] = len(node.glue_children)
            stats.append(entry)
        return stats
